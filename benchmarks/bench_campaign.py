"""Benchmark the campaign executor: serial vs process-pool backends.

Runs the acceptance sweep — three applications × four governors, twelve
scenarios — through both backends and checks that the process pool's output
is bit-identical to the serial run (same scenarios, same per-frame records,
byte-equal JSON).  The printed timing shows the wall-clock effect of
fanning the independent simulations out over the cores.
"""

from __future__ import annotations

import time

from repro.campaign import CampaignSpec, FactorySpec, run_campaign

GOVERNORS = {
    "ondemand": FactorySpec.of("ondemand"),
    "multicore-dvfs": FactorySpec.of("multicore-dvfs"),
    "proposed": FactorySpec.of("proposed"),
    "oracle": FactorySpec.of("oracle"),
}


def _acceptance_campaign(num_frames: int) -> CampaignSpec:
    return CampaignSpec.from_grid(
        "backend-equivalence",
        applications={
            "mpeg4": FactorySpec.of("mpeg4", num_frames=num_frames),
            "h264": FactorySpec.of("h264", num_frames=num_frames),
            "fft": FactorySpec.of("fft", num_frames=num_frames),
        },
        governors=GOVERNORS,
        seeds=(11,),
    )


def test_bench_parallel_vs_serial_identical(benchmark, quick_settings):
    campaign = _acceptance_campaign(quick_settings.num_frames)
    assert len(campaign) >= 12

    def run():
        started = time.perf_counter()
        serial = run_campaign(campaign, backend="serial")
        serial_s = time.perf_counter() - started
        started = time.perf_counter()
        parallel = run_campaign(campaign, backend="process")
        parallel_s = time.perf_counter() - started
        return serial, parallel, serial_s, parallel_s

    serial, parallel, serial_s, parallel_s = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print()
    print(
        f"{len(campaign)} scenarios: serial {serial_s:.1f} s, "
        f"process pool {parallel_s:.1f} s ({serial_s / parallel_s:.2f}x)"
    )
    # The parallel run must be indistinguishable from the serial run.
    assert serial.to_json() == parallel.to_json()
    assert list(serial.results()) == campaign.labels


def test_bench_campaign_resume_skips_completed(benchmark, quick_settings):
    """Resuming from a full result store re-runs nothing and is near-instant."""
    campaign = _acceptance_campaign(min(quick_settings.num_frames, 300))
    store = run_campaign(campaign)

    def resume():
        return run_campaign(campaign, resume=store)

    resumed = benchmark.pedantic(resume, rounds=3, iterations=1)
    assert resumed.to_json() == store.to_json()
