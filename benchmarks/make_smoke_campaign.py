"""Generate the small campaign spec used by CI's sharded-campaign smoke job.

The CI workflow runs this grid twice as ``repro-campaign --shard 0/2`` /
``--shard 1/2`` matrix jobs, merges the shard outputs with
``repro-campaign merge``, and asserts the merged store equals an unsharded
run — the end-to-end proof that sharding + merge reconstruct the exact
campaign result.  Generating the spec from the live
:class:`~repro.sim.engine.SimulationConfig` (instead of committing a JSON
file) keeps it from drifting when config fields change.

Usage::

    PYTHONPATH=src python benchmarks/make_smoke_campaign.py --output spec.json
"""

from __future__ import annotations

import argparse

from repro.campaign import CampaignSpec, FactorySpec
from repro.testing.parity.harness import SMOKE_SEED, smoke_applications


def build_smoke_campaign(num_frames: int = 120) -> CampaignSpec:
    """A 2 applications x 2 governors grid — small, fast, deterministic.

    The applications and seed are shared with the parity harness's smoke
    matrix (:func:`repro.testing.parity.harness.smoke_applications`), so the
    parity gate and the sharded-campaign smoke job exercise the same frame
    traces and cannot drift apart.
    """
    return CampaignSpec.from_grid(
        "ci-smoke",
        applications=smoke_applications(num_frames),
        governors={
            "ondemand": FactorySpec.of("ondemand"),
            "oracle": FactorySpec.of("oracle"),
        },
        seeds=(SMOKE_SEED,),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="smoke_campaign.json", help="spec destination")
    parser.add_argument("--frames", type=int, default=120, help="frames per scenario")
    args = parser.parse_args()
    campaign = build_smoke_campaign(num_frames=args.frames)
    campaign.save(args.output)
    print(f"wrote {args.output}: {len(campaign)} scenarios ({', '.join(campaign.labels)})")


if __name__ == "__main__":
    main()
