"""CI bench regression gate: compare a fresh ``BENCH_results.json`` to a baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_fastpath.py --smoke --output BENCH_results.json
    python benchmarks/check_bench_regression.py BENCH_results.json \
        --baseline benchmarks/BENCH_baseline_smoke.json --tolerance 0.30

For every benchmark scenario the gate compares the measured frames/sec
against the committed baseline and **fails (exit 1) if any scenario
regresses by more than the tolerance** (default 30%, sized to absorb CI
runner noise).  Scenarios present in the baseline but missing from the
current run also fail — dropping a scenario must never masquerade as a
speedup.  Faster-than-baseline runs always pass; refresh the baseline by
committing a new smoke-run output when the hardware or the expected
performance changes for a good reason.

The results file's ``metadata`` block (python/numpy versions, CPU count,
git sha) is provenance only: the gate compares nothing outside the
benchmark sections listed in :data:`GATED_METRICS`, so baselines produced
before the block existed — or on a different box — still parse and gate
identically.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple

#: (results section, metric) pairs gated on frames/sec.
GATED_METRICS: Tuple[Tuple[str, str], ...] = (
    ("vectorized_fast_path", "fast_frames_per_s"),
    ("vectorized_fast_path", "scalar_frames_per_s"),
    ("table_closed_loop", "table_frames_per_s"),
    ("table_closed_loop", "cold_table_frames_per_s"),
    ("table_closed_loop", "scalar_frames_per_s"),
    ("thermal_closed_loop", "thermal_frames_per_s"),
    ("thermal_closed_loop", "cold_thermal_frames_per_s"),
    ("thermal_closed_loop", "scalar_frames_per_s"),
    ("jit_closed_loop", "jit_frames_per_s"),
    ("jit_closed_loop", "baseline_frames_per_s"),
    ("tier1_power_cache", "cached_frames_per_s"),
    ("batched_grid", "batched_frames_per_s"),
    ("batched_grid", "per_scenario_frames_per_s"),
    ("result_store_io", "write_outcomes_per_s"),
    ("result_store_io", "checkpoint_events_per_s"),
    ("result_store_io", "summary_queries_per_s"),
    ("result_store_arrow_io", "write_outcomes_per_s"),
    ("result_store_arrow_io", "checkpoint_events_per_s"),
    ("result_store_arrow_io", "summary_queries_per_s"),
)


def _section_skipped(results: Dict, section: str) -> bool:
    """A section deliberately recorded empty with a ``<section>_note``.

    The jit section is skipped-with-a-note on runners without numba, the
    result-store arrow section on runners without pyarrow; a noted skip
    in the *current* results must not count baseline scenarios as
    missing (an optional backend's absence is not a regression).
    """
    return not results.get(section) and bool(results.get(f"{section}_note"))


def _rows_by_scenario(results: Dict, section: str) -> Dict[str, Dict]:
    return {row["scenario"]: row for row in results.get(section, [])}


def compare(current: Dict, baseline: Dict, tolerance: float) -> List[str]:
    """Return one failure message per regressed (or missing) scenario metric.

    A scenario metric regresses when ``current < baseline * (1 - tolerance)``.
    An empty return value means the gate passes.
    """
    failures: List[str] = []
    for section, metric in GATED_METRICS:
        if _section_skipped(current, section):
            continue
        current_rows = _rows_by_scenario(current, section)
        for scenario, base_row in _rows_by_scenario(baseline, section).items():
            base_value = float(base_row[metric])
            row = current_rows.get(scenario)
            if row is None:
                failures.append(
                    f"{section}/{scenario}: scenario missing from current results"
                )
                continue
            value = float(row[metric])
            floor = base_value * (1.0 - tolerance)
            if value < floor:
                failures.append(
                    f"{section}/{scenario}: {metric} {value:.0f} < "
                    f"{floor:.0f} (baseline {base_value:.0f} - {tolerance:.0%})"
                )
    return failures


def summarize(current: Dict, baseline: Dict) -> List[str]:
    """Human-readable current/baseline ratio per gated scenario metric."""
    lines: List[str] = []
    skipped_noted = set()
    for section, metric in GATED_METRICS:
        if _section_skipped(current, section):
            if section not in skipped_noted:
                skipped_noted.add(section)
                lines.append(
                    f"  {section}: SKIPPED ({current.get(f'{section}_note')})"
                )
            continue
        current_rows = _rows_by_scenario(current, section)
        for scenario, base_row in _rows_by_scenario(baseline, section).items():
            row = current_rows.get(scenario)
            if row is None:
                lines.append(f"  {section}/{scenario:28s} {metric}: MISSING")
                continue
            value, base_value = float(row[metric]), float(base_row[metric])
            ratio = value / base_value if base_value else float("inf")
            lines.append(
                f"  {section}/{scenario:28s} {metric}: {value:10.0f} "
                f"vs {base_value:10.0f}  ({ratio:5.2f}x)"
            )
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly generated BENCH_results.json")
    parser.add_argument(
        "--baseline",
        default="benchmarks/BENCH_baseline_smoke.json",
        help="committed baseline to gate against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed frames/sec regression fraction (default 0.30)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error(f"--tolerance must be in [0, 1), got {args.tolerance}")

    with open(args.current, encoding="utf-8") as handle:
        current = json.load(handle)
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)

    print(f"bench gate: {args.current} vs {args.baseline} (tolerance {args.tolerance:.0%})")
    for line in summarize(current, baseline):
        print(line)

    failures = compare(current, baseline, args.tolerance)
    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nPASS: no scenario regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
