"""Benchmark regenerating the paper's Table II (number of explorations).

Prints the reproduced table next to the paper's values and checks the shape:

* for every application, the proposed EPD-guided exploration needs fewer
  explorations (on average) than the UPD baseline of [21];
* the FFT — the least variable workload — needs the fewest explorations of
  the three applications under the proposed approach.
"""

from __future__ import annotations

from repro.experiments import format_table2, run_table2


def test_table2_exploration_counts(benchmark, experiment_settings):
    rows = benchmark.pedantic(
        run_table2, args=(experiment_settings,), rounds=1, iterations=1
    )
    print()
    print(format_table2(rows))

    by_name = {row.application: row for row in rows}
    assert set(by_name) == {"MPEG4 (30 fps)", "H.264 (15 fps)", "FFT (32 fps)"}

    # EPD explores less than UPD for every application (averaged over seeds).
    for row in rows:
        assert row.explorations_ours < row.explorations_upd

    # The FFT's low workload variability makes it the quickest to learn.
    fft = by_name["FFT (32 fps)"]
    assert fft.explorations_ours <= by_name["MPEG4 (30 fps)"].explorations_ours
    assert fft.explorations_ours <= by_name["H.264 (15 fps)"].explorations_ours
