"""Benchmark the simulation engine backends and write ``BENCH_results.json``.

Six measurements, matching the tiers of the performance work:

* **Vectorised fast path**: every static-schedule governor (performance,
  powersave, userspace, oracle) across the paper's application traces,
  scalar engine vs :mod:`repro.sim.fastpath`.  Each pair is also checked
  for numerical equivalence (energy within 1e-9 relative, identical
  deadline-miss sets) so a speedup can never be bought with wrong numbers.
* **Table-driven closed loop**: the closed-loop governors the paper
  actually studies (ondemand, conservative, the Q-learning RTM), scalar
  engine vs :mod:`repro.sim.tablepath` — both with freshly built physics
  tables (a cold single run) and with tables shared across runs, the
  campaign-grid configuration where the executor's per-worker cache
  applies.  Equivalence here additionally demands identical operating-point
  trajectories, exploration counts and final Q-tables.
* **Thermally-coupled closed loop**: the same closed-loop governors on a
  thermally-*enabled* cluster, scalar engine vs
  :mod:`repro.sim.thermalpath` — the scenarios closest to the paper's
  thermally-constrained hardware, which before the thermal engine were
  stuck on the scalar loop.  Equivalence additionally demands per-frame
  temperatures within 1e-9 relative.
* **Compiled JIT closed loop**: the same closed-loop governors against the
  numba-compiled kernel backend (:mod:`repro.sim.jitpath`), isothermal and
  thermal, baselined on the engine the run would take without numba
  (``tablepath``/``thermalpath``) over the same shared tables.  Results
  must be *identical* — bit-identity is the compiled path's contract.  On
  runners without numba the section is recorded empty with a
  ``jit_closed_loop_note`` explaining the skip.
* **Hot-loop power cache** (Tier 1): closed-loop governors with the
  cluster's per-operating-point power cache enabled vs disabled — the win
  the scalar fallback gets even where the table paths do not apply.
* **Batched multi-scenario grid**: a 64-scenario mpeg4 grid (static +
  ondemand + RL seed sweep) stepped simultaneously by
  :mod:`repro.sim.batchpath` vs the same 64 scenarios run one at a time
  on the per-scenario table engine — the campaign batch planner's
  configuration.  The batched results must be *identical* (same
  trajectories, energies and miss sets), not merely close.

The output carries a ``metadata`` block (python/numpy versions, CPU
count, platform, git sha) so archived results are attributable to the
box and tree that produced them; the regression gate never compares it.

Run as a script to (re)generate the tracked perf trajectory::

    PYTHONPATH=src python benchmarks/bench_fastpath.py --smoke --output BENCH_results.json

or through pytest (``pytest benchmarks/bench_fastpath.py``) for the
assertion-bearing smoke versions of the same measurements.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import subprocess
import time
from typing import Callable, Dict, List

from repro.governors.conservative import ConservativeGovernor
from repro.governors.ondemand import OndemandGovernor, OndemandParameters
from repro.governors.oracle import OracleGovernor
from repro.governors.performance import PerformanceGovernor
from repro.governors.powersave import PowersaveGovernor
from repro.governors.userspace import UserspaceGovernor
from repro.platform.odroid_xu3 import build_a15_cluster
from repro.rtm.multicore import MultiCoreRLGovernor
from repro.rtm.rl_governor import RLGovernor, RLGovernorConfig
from repro.sim import batchpath, jitpath, tablepath, thermalpath
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.workload.fft import fft_application
from repro.workload.video import h264_application, mpeg4_application

APPLICATIONS: Dict[str, Callable[..., object]] = {
    "mpeg4": mpeg4_application,
    "h264": h264_application,
    "fft": fft_application,
}

VECTOR_GOVERNORS: Dict[str, Callable[[], object]] = {
    "oracle": OracleGovernor,
    "performance": PerformanceGovernor,
    "powersave": PowersaveGovernor,
    "userspace": lambda: UserspaceGovernor(index=9),
}

TABLE_GOVERNORS: Dict[str, Callable[[], object]] = {
    "ondemand": OndemandGovernor,
    "conservative": ConservativeGovernor,
    "rl": RLGovernor,
}

CLOSED_LOOP_GOVERNORS: Dict[str, Callable[[], object]] = {
    "ondemand": OndemandGovernor,
    "proposed": MultiCoreRLGovernor,
}


def _run_metadata() -> Dict[str, object]:
    """Provenance of a benchmark run: interpreter, numpy, box and tree.

    Purely informational — ``check_bench_regression.py`` compares only the
    benchmark sections, never this block — but it makes an archived
    ``BENCH_results.json`` attributable when numbers shift between runs.
    """
    try:
        import numpy

        numpy_version: object = numpy.__version__
    except ImportError:  # the scalar engine still benchmarks without numpy
        numpy_version = None
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10,
        )
        git_sha = probe.stdout.strip() if probe.returncode == 0 else None
    except (OSError, subprocess.SubprocessError):
        git_sha = None
    return {
        "python_version": platform.python_version(),
        "numpy_version": numpy_version,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "git_sha": git_sha,
    }


def _best_of(callable_, repeats: int) -> float:
    """Best wall-clock of ``repeats`` calls (least-noise point estimate).

    One untimed warm-up call precedes the timed repeats so first-call
    effects — numba JIT compilation on the compiled backend, but also cold
    caches and lazy imports on every other — never pollute the measurement.
    """
    callable_()
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def _check_equivalence(scalar, fast) -> Dict[str, object]:
    """Max relative errors + miss-set identity between the two engines."""
    max_energy_err = 0.0
    max_time_err = 0.0
    for fast_record, scalar_record in zip(fast.records, scalar.records):
        if scalar_record.operating_index != fast_record.operating_index:
            raise AssertionError("fast path chose a different operating point")
        max_energy_err = max(
            max_energy_err,
            abs(fast_record.energy_j - scalar_record.energy_j)
            / abs(scalar_record.energy_j),
        )
        max_time_err = max(
            max_time_err,
            abs(fast_record.interval_s - scalar_record.interval_s)
            / abs(scalar_record.interval_s),
        )
    scalar_misses = [r.index for r in scalar.records if not r.met_deadline]
    fast_misses = [r.index for r in fast.records if not r.met_deadline]
    if scalar_misses != fast_misses:
        raise AssertionError("fast path produced a different deadline-miss set")
    if max_energy_err > 1e-9 or max_time_err > 1e-9:
        raise AssertionError(
            f"fast path diverged: energy rel err {max_energy_err:.2e}, "
            f"time rel err {max_time_err:.2e}"
        )
    return {
        "max_rel_energy_err": max_energy_err,
        "max_rel_time_err": max_time_err,
        "miss_sets_identical": True,
    }


def bench_vectorized(num_frames: int, repeats: int = 3) -> List[Dict[str, object]]:
    """Scalar vs vectorised engine across the static-schedule grid."""
    rows: List[Dict[str, object]] = []
    for app_name, app_factory in APPLICATIONS.items():
        application = app_factory(num_frames=num_frames, seed=11)
        for gov_name, gov_factory in VECTOR_GOVERNORS.items():

            def scalar_run():
                return SimulationEngine(
                    build_a15_cluster(), SimulationConfig(prefer_fast_path=False)
                ).run(application, gov_factory())

            def fast_run():
                engine = SimulationEngine(build_a15_cluster())
                result = engine.run(application, gov_factory())
                if not engine.last_used_fast_path:
                    raise AssertionError(f"{gov_name} did not take the fast path")
                return result

            equivalence = _check_equivalence(scalar_run(), fast_run())
            scalar_s = _best_of(scalar_run, repeats)
            fast_s = _best_of(fast_run, repeats)
            rows.append(
                {
                    "scenario": f"{app_name}/{gov_name}",
                    "application": app_name,
                    "governor": gov_name,
                    "frames": num_frames,
                    "scalar_wall_s": scalar_s,
                    "fast_wall_s": fast_s,
                    "scalar_frames_per_s": num_frames / scalar_s,
                    "fast_frames_per_s": num_frames / fast_s,
                    "speedup": scalar_s / fast_s,
                    **equivalence,
                }
            )
    return rows


def _check_closed_loop_equivalence(scalar_pair, table_pair) -> Dict[str, object]:
    """Strict equivalence for closed-loop runs: trajectory, learning state, 1e-9."""
    scalar, scalar_governor = scalar_pair
    table, table_governor = table_pair
    base = _check_equivalence(scalar, table)
    if scalar.exploration_count != table.exploration_count:
        raise AssertionError("table path produced a different exploration count")
    if scalar.converged_epoch != table.converged_epoch:
        raise AssertionError("table path produced a different convergence epoch")
    # None = the governor has no Q-table to compare (reactive baselines);
    # True is only reported when the tables were actually checked.
    qtables_identical = None
    if hasattr(scalar_governor, "agent"):
        scalar_qtable = scalar_governor.agent.qtable
        table_qtable = table_governor.agent.qtable
        for state in range(scalar_qtable.num_states):
            if scalar_qtable.row(state) != table_qtable.row(state):
                raise AssertionError("table path learnt a different Q-table")
        qtables_identical = True
    return {
        **base,
        "exploration_counts_identical": True,
        "qtables_identical": qtables_identical,
    }


def bench_table_closed_loop(num_frames: int, repeats: int = 3) -> List[Dict[str, object]]:
    """Scalar vs table-driven engine across the closed-loop governors.

    Two table-path timings per scenario: ``cold`` builds the physics tables
    inside the measured run (a standalone simulation), ``shared`` supplies
    prebuilt tables through a provider — the campaign configuration, where
    the executor caches tables across the scenarios of a grid that share an
    application and cluster.  ``speedup`` reports the shared-tables case
    (the configuration the campaign executor actually runs); the cold case
    is recorded alongside as ``speedup_cold_tables``.
    """
    rows: List[Dict[str, object]] = []
    application = mpeg4_application(num_frames=num_frames, seed=11)
    shared_tables = tablepath.precompute_tables(
        build_a15_cluster(), application, SimulationConfig()
    )

    def shared_provider(cluster, app, config):
        return shared_tables

    for gov_name, gov_factory in TABLE_GOVERNORS.items():

        def scalar_run():
            governor = gov_factory()
            engine = SimulationEngine(
                build_a15_cluster(), SimulationConfig(prefer_fast_path=False)
            )
            return engine.run(application, governor), governor

        def table_run(provider=None):
            governor = gov_factory()
            engine = SimulationEngine(
                build_a15_cluster(), SimulationConfig(), table_provider=provider
            )
            result = engine.run(application, governor)
            if not engine.last_used_table_path:
                raise AssertionError(f"{gov_name} did not take the table path")
            return result, governor

        equivalence = _check_closed_loop_equivalence(scalar_run(), table_run())
        scalar_s = _best_of(lambda: scalar_run(), repeats)
        cold_s = _best_of(lambda: table_run(), repeats)
        shared_s = _best_of(lambda: table_run(shared_provider), repeats)
        rows.append(
            {
                "scenario": f"mpeg4/{gov_name}",
                "governor": gov_name,
                "frames": num_frames,
                "scalar_wall_s": scalar_s,
                "table_wall_s": shared_s,
                "cold_table_wall_s": cold_s,
                "scalar_frames_per_s": num_frames / scalar_s,
                "table_frames_per_s": num_frames / shared_s,
                "cold_table_frames_per_s": num_frames / cold_s,
                "speedup": scalar_s / shared_s,
                "speedup_cold_tables": scalar_s / cold_s,
                **equivalence,
            }
        )
    return rows


def _check_thermal_equivalence(scalar_pair, thermal_pair) -> Dict[str, object]:
    """Closed-loop equivalence plus per-frame temperatures within 1e-9."""
    base = _check_closed_loop_equivalence(scalar_pair, thermal_pair)
    scalar, _ = scalar_pair
    thermal, _ = thermal_pair
    max_temperature_err = 0.0
    for thermal_record, scalar_record in zip(thermal.records, scalar.records):
        max_temperature_err = max(
            max_temperature_err,
            abs(thermal_record.temperature_c - scalar_record.temperature_c)
            / abs(scalar_record.temperature_c),
        )
    if max_temperature_err > 1e-9:
        raise AssertionError(
            f"thermal path diverged: temperature rel err {max_temperature_err:.2e}"
        )
    return {**base, "max_rel_temperature_err": max_temperature_err}


def bench_thermal_closed_loop(
    num_frames: int, repeats: int = 3
) -> List[Dict[str, object]]:
    """Scalar vs thermally-coupled engine on a thermally-enabled cluster.

    Same shape as :func:`bench_table_closed_loop` — ``cold`` builds the
    thermal physics tables inside the measured run, ``shared`` supplies
    prebuilt tables through a provider (the campaign configuration, which
    also keeps the lazily-filled temperature power slices warm).
    """
    rows: List[Dict[str, object]] = []
    application = mpeg4_application(num_frames=num_frames, seed=11)

    def thermal_cluster():
        return build_a15_cluster(enable_thermal=True)

    shared_tables = thermalpath.precompute_tables(
        thermal_cluster(), application, SimulationConfig()
    )

    def shared_provider(cluster, app, config):
        return shared_tables

    for gov_name, gov_factory in TABLE_GOVERNORS.items():

        def scalar_run():
            governor = gov_factory()
            engine = SimulationEngine(thermal_cluster(), engine="scalar")
            return engine.run(application, governor), governor

        def thermal_run(provider=None):
            governor = gov_factory()
            engine = SimulationEngine(thermal_cluster(), table_provider=provider)
            result = engine.run(application, governor)
            if result.engine_used != "thermalpath":
                raise AssertionError(f"{gov_name} did not take the thermal path")
            return result, governor

        equivalence = _check_thermal_equivalence(scalar_run(), thermal_run())
        scalar_s = _best_of(lambda: scalar_run(), repeats)
        cold_s = _best_of(lambda: thermal_run(), repeats)
        shared_s = _best_of(lambda: thermal_run(shared_provider), repeats)
        rows.append(
            {
                "scenario": f"mpeg4/{gov_name}",
                "governor": gov_name,
                "frames": num_frames,
                "scalar_wall_s": scalar_s,
                "thermal_wall_s": shared_s,
                "cold_thermal_wall_s": cold_s,
                "scalar_frames_per_s": num_frames / scalar_s,
                "thermal_frames_per_s": num_frames / shared_s,
                "cold_thermal_frames_per_s": num_frames / cold_s,
                "speedup": scalar_s / shared_s,
                "speedup_cold_tables": scalar_s / cold_s,
                **equivalence,
            }
        )
    return rows


def bench_jit_closed_loop(num_frames: int, repeats: int = 3) -> List[Dict[str, object]]:
    """Table engines vs the compiled (numba) kernel backend.

    mpeg4 x {ondemand, conservative, rl} on both the isothermal and the
    thermally-enabled cluster; the baseline is the engine the run would
    take without numba (``tablepath`` / ``thermalpath``), both sides pinned
    and fed the same shared precomputed tables.  Results must be
    *identical* (bit-identity is the compiled path's contract), not merely
    close.  Returns no rows when the compiled path is unavailable — the
    suite records the skip as a note instead of fabricating numbers.
    """
    if not jitpath.available():
        return []
    rows: List[Dict[str, object]] = []
    application = mpeg4_application(num_frames=num_frames, seed=11)
    for thermal in (False, True):

        def cluster_factory(thermal=thermal):
            return build_a15_cluster(enable_thermal=thermal)

        baseline_engine = "thermalpath" if thermal else "tablepath"
        precompute = (
            thermalpath.precompute_tables if thermal else tablepath.precompute_tables
        )
        shared_tables = precompute(cluster_factory(), application, SimulationConfig())

        def shared_provider(cluster, app, config, tables=shared_tables):
            return tables

        for gov_name, gov_factory in TABLE_GOVERNORS.items():

            def baseline_run(
                gov_factory=gov_factory,
                cluster_factory=cluster_factory,
                engine=baseline_engine,
            ):
                governor = gov_factory()
                result = SimulationEngine(
                    cluster_factory(),
                    SimulationConfig(),
                    engine=engine,
                    table_provider=shared_provider,
                ).run(application, governor)
                return result, governor

            def jit_run(gov_factory=gov_factory, cluster_factory=cluster_factory):
                governor = gov_factory()
                result = SimulationEngine(
                    cluster_factory(),
                    SimulationConfig(),
                    engine="jitpath",
                    table_provider=shared_provider,
                ).run(application, governor)
                return result, governor

            baseline_pair = baseline_run()
            jit_pair = jit_run()
            equivalence = _check_closed_loop_equivalence(baseline_pair, jit_pair)
            if [r.energy_j for r in baseline_pair[0].records] != [
                r.energy_j for r in jit_pair[0].records
            ]:
                raise AssertionError("jit kernels produced different energies")
            baseline_s = _best_of(lambda: baseline_run(), repeats)
            jit_s = _best_of(lambda: jit_run(), repeats)
            mode = "thermal" if thermal else "iso"
            rows.append(
                {
                    "scenario": f"mpeg4-{mode}/{gov_name}",
                    "governor": gov_name,
                    "mode": mode,
                    "frames": num_frames,
                    "baseline_engine": baseline_engine,
                    "baseline_wall_s": baseline_s,
                    "jit_wall_s": jit_s,
                    "baseline_frames_per_s": num_frames / baseline_s,
                    "jit_frames_per_s": num_frames / jit_s,
                    "speedup": baseline_s / jit_s,
                    "results_identical": True,
                    **equivalence,
                }
            )
    return rows


#: Note recorded in place of ``jit_closed_loop`` rows on numba-less runners.
JIT_SKIP_NOTE = (
    "skipped: compiled kernels unavailable "
    "(numba not importable — install the 'jit' extra — or REPRO_DISABLE_JIT set)"
)


def bench_power_cache(num_frames: int, repeats: int = 3) -> List[Dict[str, object]]:
    """Closed-loop governors with the Tier-1 power cache on vs off."""
    rows: List[Dict[str, object]] = []
    application = mpeg4_application(num_frames=num_frames, seed=11)
    for gov_name, gov_factory in CLOSED_LOOP_GOVERNORS.items():

        def run(power_cache_size: int):
            return SimulationEngine(
                build_a15_cluster(power_cache_size=power_cache_size),
                SimulationConfig(prefer_fast_path=False),
            ).run(application, gov_factory())

        cached = run(1024)
        uncached = run(0)
        if [r.energy_j for r in cached.records] != [r.energy_j for r in uncached.records]:
            raise AssertionError("power cache changed per-frame energies")
        uncached_s = _best_of(lambda: run(0), repeats)
        cached_s = _best_of(lambda: run(1024), repeats)
        rows.append(
            {
                "scenario": f"mpeg4/{gov_name}",
                "governor": gov_name,
                "frames": num_frames,
                "uncached_wall_s": uncached_s,
                "cached_wall_s": cached_s,
                "cached_frames_per_s": num_frames / cached_s,
                "speedup": uncached_s / cached_s,
                "win_percent": 100.0 * (uncached_s - cached_s) / uncached_s,
            }
        )
    return rows


def _batched_grid_factories(num_points: int) -> List[Callable[[], object]]:
    """The 64-scenario campaign-shaped mpeg4 grid: static + ondemand + rl.

    The composition mirrors a real characterisation sweep over the shared
    physics table: every distinct static operating point (performance,
    powersave and one userspace pin per table entry), a 42-point ondemand
    ``up_threshold`` sweep, and an RL scenario.  The RL member sits below
    the planner's scalar cutoff, demonstrating the cost model routing
    narrow families to the per-scenario engine inside a batched run.
    """
    factories: List[Callable[[], object]] = [PerformanceGovernor, PowersaveGovernor]
    factories += [
        (lambda index=index: UserspaceGovernor(index=index))
        for index in range(num_points)
    ]
    factories += [
        (lambda k=k: OndemandGovernor(OndemandParameters(up_threshold=0.55 + 0.01 * k)))
        for k in range(42)
    ]
    factories += [lambda: RLGovernor(RLGovernorConfig(seed=0))]
    return factories


def bench_batched_grid(num_frames: int, repeats: int = 3) -> List[Dict[str, object]]:
    """Batched multi-scenario engine vs one-at-a-time table-path runs.

    Both sides share one precomputed physics table (the campaign
    configuration): the baseline pins each of the 64 scenarios to the
    per-scenario table engine, the contender steps all 64 through
    :func:`repro.sim.batchpath.run_batch` in a single pass.  Every member's
    trajectory, per-frame energies and miss set must be identical before
    any timing is reported.
    """
    application = mpeg4_application(num_frames=num_frames, seed=11)
    config = SimulationConfig()
    shared_tables = tablepath.precompute_tables(
        build_a15_cluster(), application, config
    )
    factories = _batched_grid_factories(len(build_a15_cluster().vf_table))
    num_scenarios = len(factories)

    def shared_provider(cluster, app, cfg):
        return shared_tables

    def per_scenario_run():
        results = []
        for factory in factories:
            engine = SimulationEngine(
                build_a15_cluster(),
                config,
                engine="tablepath",
                table_provider=shared_provider,
            )
            results.append(engine.run(application, factory()))
        return results

    def batched_run():
        members = [(build_a15_cluster(), factory()) for factory in factories]
        return batchpath.run_batch(
            members,
            application,
            config,
            tables=shared_tables,
            scalar_cutoffs=batchpath.DEFAULT_SCALAR_CUTOFFS,
        )

    for reference, batched in zip(per_scenario_run(), batched_run()):
        _check_equivalence(reference, batched)
        if [r.energy_j for r in reference.records] != [
            r.energy_j for r in batched.records
        ]:
            raise AssertionError("batched engine produced different energies")

    per_scenario_s = _best_of(per_scenario_run, repeats)
    batched_s = _best_of(batched_run, repeats)
    total_frames = num_frames * num_scenarios
    return [
        {
            "scenario": f"mpeg4/{num_scenarios}x-mixed-grid",
            "scenarios": num_scenarios,
            "frames": num_frames,
            "total_frames": total_frames,
            "per_scenario_wall_s": per_scenario_s,
            "batched_wall_s": batched_s,
            "per_scenario_frames_per_s": total_frames / per_scenario_s,
            "batched_frames_per_s": total_frames / batched_s,
            "speedup": per_scenario_s / batched_s,
            "results_identical": True,
        }
    ]


def run_suite(num_frames: int, repeats: int, smoke: bool) -> Dict[str, object]:
    vectorized = bench_vectorized(num_frames, repeats)
    table = bench_table_closed_loop(num_frames, repeats)
    thermal = bench_thermal_closed_loop(num_frames, repeats)
    jit = bench_jit_closed_loop(num_frames, repeats)
    tier1 = bench_power_cache(num_frames, repeats)
    batched = bench_batched_grid(num_frames, repeats)
    speedups = [row["speedup"] for row in vectorized]
    table_speedups = {row["governor"]: row["speedup"] for row in table}
    thermal_speedups = {row["governor"]: row["speedup"] for row in thermal}
    summary = {
        "vectorized_speedup_min": min(speedups),
        "vectorized_speedup_median": statistics.median(speedups),
        "vectorized_speedup_max": max(speedups),
        "table_closed_loop_speedup": table_speedups,
        "table_closed_loop_speedup_min": min(table_speedups.values()),
        "thermal_closed_loop_speedup": thermal_speedups,
        "thermal_closed_loop_speedup_min": min(thermal_speedups.values()),
        "tier1_cache_win_percent": {
            row["governor"]: row["win_percent"] for row in tier1
        },
        "batched_grid_speedup": batched[0]["speedup"],
    }
    if jit:
        jit_speedups = {row["scenario"]: row["speedup"] for row in jit}
        summary["jit_closed_loop_speedup"] = jit_speedups
        summary["jit_closed_loop_speedup_min"] = min(jit_speedups.values())
    results: Dict[str, object] = {
        "generated_by": "benchmarks/bench_fastpath.py",
        "mode": "smoke" if smoke else "full",
        "frames_per_scenario": num_frames,
        "repeats": repeats,
        "metadata": _run_metadata(),
        "vectorized_fast_path": vectorized,
        "table_closed_loop": table,
        "thermal_closed_loop": thermal,
        # Always a list (the regression gate indexes every section by rows);
        # the sibling note marks a deliberate skip, never silent truncation.
        "jit_closed_loop": jit,
        "tier1_power_cache": tier1,
        "batched_grid": batched,
        "summary": summary,
    }
    if not jit:
        results["jit_closed_loop_note"] = JIT_SKIP_NOTE
    return results


# -- pytest entry points (explicit: `pytest benchmarks/bench_fastpath.py`) -----
def test_bench_vectorized_speedup_and_equivalence():
    rows = bench_vectorized(num_frames=600, repeats=2)
    for row in rows:
        assert row["miss_sets_identical"]
        assert row["max_rel_energy_err"] <= 1e-9
    oracle_speedups = [r["speedup"] for r in rows if r["governor"] == "oracle"]
    print()
    for row in rows:
        print(
            f"{row['scenario']:24s} scalar {row['scalar_frames_per_s']:9.0f} f/s  "
            f"fast {row['fast_frames_per_s']:10.0f} f/s  ({row['speedup']:.1f}x)"
        )
    assert min(oracle_speedups) >= 3.0  # conservative floor for noisy CI boxes


def test_bench_table_closed_loop_speedup_and_equivalence():
    rows = bench_table_closed_loop(num_frames=600, repeats=2)
    print()
    for row in rows:
        print(
            f"{row['scenario']:24s} scalar {row['scalar_frames_per_s']:9.0f} f/s  "
            f"table {row['table_frames_per_s']:10.0f} f/s  "
            f"({row['speedup']:.1f}x shared, {row['speedup_cold_tables']:.1f}x cold)"
        )
    for row in rows:
        assert row["miss_sets_identical"]
        assert row["exploration_counts_identical"]
        if row["governor"] == "rl":  # the learning scenario compares Q-tables
            assert row["qtables_identical"] is True
        assert row["max_rel_energy_err"] <= 1e-9
        # Conservative floors for noisy CI boxes; the tracked numbers in
        # BENCH_results.json carry the actual speedups (>= 3x per scenario
        # on the reference box).
        assert row["speedup"] >= 2.0
    reactive = [r["speedup"] for r in rows if r["governor"] in ("ondemand", "conservative")]
    assert min(reactive) >= 3.0


def test_bench_thermal_closed_loop_speedup_and_equivalence():
    rows = bench_thermal_closed_loop(num_frames=600, repeats=2)
    print()
    for row in rows:
        print(
            f"{row['scenario']:24s} scalar {row['scalar_frames_per_s']:9.0f} f/s  "
            f"thermal {row['thermal_frames_per_s']:8.0f} f/s  "
            f"({row['speedup']:.1f}x shared, {row['speedup_cold_tables']:.1f}x cold)"
        )
    for row in rows:
        assert row["miss_sets_identical"]
        assert row["exploration_counts_identical"]
        if row["governor"] == "rl":  # the learning scenario compares Q-tables
            assert row["qtables_identical"] is True
        assert row["max_rel_energy_err"] <= 1e-9
        assert row["max_rel_temperature_err"] <= 1e-9
        # Conservative floors for noisy CI boxes; the tracked numbers in
        # BENCH_results.json carry the actual speedups (>= 3x per scenario
        # on the reference box).
        assert row["speedup"] >= 2.0
    reactive = [r["speedup"] for r in rows if r["governor"] in ("ondemand", "conservative")]
    assert min(reactive) >= 3.0


def test_bench_batched_grid_speedup_and_identity():
    rows = bench_batched_grid(num_frames=600, repeats=2)
    print()
    for row in rows:
        print(
            f"{row['scenario']:24s} per-scenario {row['per_scenario_frames_per_s']:9.0f} f/s  "
            f"batched {row['batched_frames_per_s']:10.0f} f/s  ({row['speedup']:.1f}x)"
        )
    for row in rows:
        assert row["results_identical"]
        # Conservative floor for noisy CI boxes; the tracked numbers in
        # BENCH_results.json carry the actual grid speedup (>= 5x on the
        # reference box at smoke scale and above).
        assert row["speedup"] >= 3.0


def test_bench_jit_closed_loop_speedup_and_identity():
    import pytest

    if not jitpath.available():
        pytest.skip("compiled kernels unavailable (no numba / REPRO_DISABLE_JIT)")
    if not jitpath.compiled():
        pytest.skip("jit kernels running interpreted, no speedup to gate")
    rows = bench_jit_closed_loop(num_frames=600, repeats=2)
    print()
    for row in rows:
        print(
            f"{row['scenario']:24s} {row['baseline_engine']} "
            f"{row['baseline_frames_per_s']:9.0f} f/s  "
            f"jit {row['jit_frames_per_s']:10.0f} f/s  ({row['speedup']:.1f}x)"
        )
    assert rows, "compiled path available but produced no bench rows"
    for row in rows:
        assert row["results_identical"]
        assert row["miss_sets_identical"]
        assert row["exploration_counts_identical"]
        if row["governor"] == "rl":  # the learning scenario compares Q-tables
            assert row["qtables_identical"] is True
        # Acceptance floor: >= 2x over tablepath on the isothermal smoke
        # scenarios (post-warm-up, so compilation is never in the timing);
        # a conservative floor on the thermal rows absorbs CI noise.
        if row["mode"] == "iso":
            assert row["speedup"] >= 2.0
        else:
            assert row["speedup"] >= 1.5


def test_bench_power_cache_win():
    rows = bench_power_cache(num_frames=600, repeats=2)
    print()
    for row in rows:
        print(
            f"{row['scenario']:24s} uncached {row['uncached_wall_s'] * 1e3:7.1f} ms  "
            f"cached {row['cached_wall_s'] * 1e3:7.1f} ms  ({row['win_percent']:+.1f}%)"
        )
    # The cache must never make things slower by more than noise.
    assert all(row["win_percent"] > -5.0 for row in rows)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default="BENCH_results.json", help="where to write the results"
    )
    parser.add_argument(
        "--frames", type=int, default=3000, help="frames per scenario (full mode)"
    )
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    parser.add_argument(
        "--smoke", action="store_true", help="reduced scale for CI (600 frames)"
    )
    args = parser.parse_args()
    num_frames = 600 if args.smoke else args.frames

    results = run_suite(num_frames, args.repeats, args.smoke)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")

    print(f"wrote {args.output}")
    for row in results["vectorized_fast_path"]:
        print(
            f"  {row['scenario']:24s} {row['scalar_frames_per_s']:9.0f} -> "
            f"{row['fast_frames_per_s']:10.0f} frames/s  ({row['speedup']:.1f}x)"
        )
    for row in results["table_closed_loop"]:
        print(
            f"  {row['scenario']:24s} {row['scalar_frames_per_s']:9.0f} -> "
            f"{row['table_frames_per_s']:10.0f} frames/s  "
            f"({row['speedup']:.1f}x shared, {row['speedup_cold_tables']:.1f}x cold)"
        )
    for row in results["thermal_closed_loop"]:
        print(
            f"  thermal/{row['scenario']:16s} {row['scalar_frames_per_s']:9.0f} -> "
            f"{row['thermal_frames_per_s']:10.0f} frames/s  "
            f"({row['speedup']:.1f}x shared, {row['speedup_cold_tables']:.1f}x cold)"
        )
    if results["jit_closed_loop"]:
        for row in results["jit_closed_loop"]:
            print(
                f"  jit/{row['scenario']:20s} {row['baseline_frames_per_s']:9.0f} -> "
                f"{row['jit_frames_per_s']:10.0f} frames/s  "
                f"({row['speedup']:.1f}x over {row['baseline_engine']})"
            )
    else:
        print(f"  jit_closed_loop: {results['jit_closed_loop_note']}")
    for row in results["tier1_power_cache"]:
        print(
            f"  {row['scenario']:24s} power cache win {row['win_percent']:+.1f}% "
            f"({row['speedup']:.2f}x)"
        )
    for row in results["batched_grid"]:
        print(
            f"  {row['scenario']:24s} {row['per_scenario_frames_per_s']:9.0f} -> "
            f"{row['batched_frames_per_s']:10.0f} frames/s  ({row['speedup']:.1f}x batched)"
        )


if __name__ == "__main__":
    main()
