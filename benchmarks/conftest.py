"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures through the
experiment drivers in :mod:`repro.experiments`.  The drivers are run at a
reduced-but-representative scale by default so the whole harness completes
in a couple of minutes; set the environment variable ``REPRO_FULL_SCALE=1``
to run at paper scale (~3000-frame sequences, 5 seeds).

The drivers execute their sweeps as campaigns; set
``REPRO_CAMPAIGN_BACKEND=process`` to fan each sweep out over the machine's
cores (the numbers are identical on either backend).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentSettings


def _full_scale() -> bool:
    return os.environ.get("REPRO_FULL_SCALE", "0") not in ("", "0", "false", "False")


@pytest.fixture(scope="session")
def experiment_settings() -> ExperimentSettings:
    """Experiment scale used by the benchmark harness."""
    if _full_scale():
        return ExperimentSettings(num_frames=3000, num_seeds=5)
    return ExperimentSettings(num_frames=1200, num_seeds=5)


@pytest.fixture(scope="session")
def quick_settings() -> ExperimentSettings:
    """Smaller scale for the per-component ablation benches."""
    return ExperimentSettings(num_frames=600, num_seeds=2)
