"""Micro-benchmarks of the library's hot components.

These are conventional pytest-benchmark timing benches (many rounds) for the
pieces that run once per decision epoch on the real platform, where the
paper's overhead argument (Section III-D) lives: the Q-learning update, the
EWMA prediction, the power-model evaluation and a full simulated decision
epoch.  They document that the per-epoch processing cost of the RTM is tiny
compared to a frame period.
"""

from __future__ import annotations

from repro.campaign import FactorySpec, ScenarioSpec, run_scenario
from repro.platform.odroid_xu3 import A15_VF_TABLE, build_a15_cluster
from repro.platform.power import PowerModel
from repro.rtm.exploration import ExponentialPolicy
from repro.rtm.prediction import EWMAPredictor
from repro.rtm.qlearning import QLearningAgent
from repro.rtm import MultiCoreRLGovernor
from repro.sim import SimulationEngine
from repro.workload.video import h264_football_application

import random


def test_bench_qlearning_update(benchmark):
    agent = QLearningAgent(
        num_states=25,
        num_actions=len(A15_VF_TABLE),
        action_frequencies_hz=A15_VF_TABLE.frequencies_hz,
    )

    def step():
        agent.update(state=7, action=5, reward=0.8, next_state=8)
        agent.select_action(state=8, slack=0.1)

    benchmark(step)


def test_bench_ewma_prediction(benchmark):
    predictor = EWMAPredictor(gamma=0.6)
    values = [2.5e7 + 1e6 * (i % 7) for i in range(64)]

    def step():
        for value in values:
            predictor.observe(value)

    benchmark(step)


def test_bench_power_model(benchmark):
    model = PowerModel()
    points = list(A15_VF_TABLE)

    def step():
        total = 0.0
        for point in points:
            total += model.cluster_power(point, [1.0, 0.7, 0.5, 0.2]).total_w
        return total

    benchmark(step)


def test_bench_epd_sampling(benchmark):
    policy = ExponentialPolicy(beta=12.0)
    rng = random.Random(3)
    frequencies = A15_VF_TABLE.frequencies_hz

    def step():
        return policy.sample(len(frequencies), frequencies, slack=0.2, rng=rng)

    benchmark(step)


def test_bench_full_epoch(benchmark):
    """One complete simulated decision epoch (decide + execute + account)."""
    cluster = build_a15_cluster()
    engine = SimulationEngine(cluster)
    application = h264_football_application(num_frames=64)
    governor = MultiCoreRLGovernor()

    def run():
        return engine.run(application, governor)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_bench_run_scenario(benchmark):
    """Campaign-layer overhead: one scenario built from spec, end to end."""
    scenario = ScenarioSpec(
        label="bench",
        application=FactorySpec.of("h264-football", num_frames=64),
        governor=FactorySpec.of("proposed"),
    )

    def run():
        return run_scenario(scenario)

    benchmark.pedantic(run, rounds=3, iterations=1)
