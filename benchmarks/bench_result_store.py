"""Benchmark the campaign result-store I/O path (``repro.campaign.store``).

Three measurements per store flavor on a synthetic large campaign (one
columnar :class:`~repro.sim.epoch.FrameColumns` result per scenario, no
simulation in the timed region — this benchmarks persistence, not
physics):

* **Write throughput** (``write_outcomes_per_s``): persisting the whole
  store in one go — the legacy monolithic JSON blob vs the columnar
  chunked bulk save.
* **Checkpoint latency** (``checkpoint_events_per_s``): the cost of
  keeping the on-disk checkpoint current while a campaign runs.  The
  legacy blob must atomically *rewrite everything so far* per checkpoint
  event (O(campaign) each), the columnar store *appends one record and
  flushes* (O(1) each) — this row pair is the tentpole's headline number.
* **Summary-query latency** (``summary_queries_per_s``): loading the
  persisted store and summarising every outcome
  (:meth:`ScenarioOutcome.metrics_summary`).  The legacy blob parses and
  re-reduces every frame; the columnar store loads lazily and answers
  from the cached per-record metrics without touching frames.

The ``result_store_io`` section always carries the ``json`` and
``jsonl`` rows (pure stdlib).  The Arrow encoding lives in its own
``result_store_arrow_io`` section, recorded empty with a
``result_store_arrow_io_note`` on pyarrow-less runners — exactly the
optional-dependency pattern of the ``jit_closed_loop`` section.

Run as a script to (re)generate the tracked numbers::

    PYTHONPATH=src python benchmarks/bench_result_store.py --smoke \
        --update BENCH_results.json

(``--update`` merges the sections into an existing results file, e.g.
the one ``bench_fastpath.py`` just wrote; ``--output`` writes a
standalone file.)  Or through pytest
(``pytest benchmarks/bench_result_store.py``) for the assertion-bearing
smoke version.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import random
import tempfile
import time
from typing import Dict, List

from repro.campaign import store as result_store
from repro.campaign.results import CampaignResult, ScenarioOutcome
from repro.campaign.spec import FactorySpec, ScenarioSpec
from repro.sim.epoch import FrameColumns
from repro.sim.results import SimulationResult

#: Scenarios in the synthetic campaign (full / --smoke).
FULL_SCENARIOS = 1000
SMOKE_SCENARIOS = 200

#: Frames per synthetic scenario result.
FRAMES = 40

#: Checkpoint events timed per flavor: the legacy blob rewrite is
#: O(campaign) per event, so a bounded event count keeps the benchmark
#: honest *and* finite; the columnar flavors append per event.
CHECKPOINT_EVENTS = 100

#: Note recorded in place of ``result_store_arrow_io`` rows without pyarrow.
ARROW_SKIP_NOTE = (
    "skipped: Arrow encoding unavailable (pyarrow not importable — install "
    "the 'arrow' extra — or REPRO_DISABLE_ARROW set)"
)


def synthetic_store(num_scenarios: int, seed: int = 7) -> CampaignResult:
    """A campaign result store with deterministic synthetic frame data."""
    rng = random.Random(seed)
    store = CampaignResult(campaign_name=f"synthetic-{num_scenarios}")
    for index in range(num_scenarios):
        frequency = 200.0 + 100.0 * (index % 19)
        frame_time = 0.030 + 0.0001 * (index % 7)
        columns = FrameColumns(
            index=list(range(FRAMES)),
            operating_index=[index % 19 for _ in range(FRAMES)],
            frequency_mhz=[frequency] * FRAMES,
            cycles_per_core=[
                (1e6 * rng.random(), 1e6 * rng.random()) for _ in range(FRAMES)
            ],
            busy_time_s=[frame_time * 0.8] * FRAMES,
            overhead_time_s=[frame_time * 0.01] * FRAMES,
            frame_time_s=[frame_time] * FRAMES,
            interval_s=[max(frame_time, 1 / 30.0)] * FRAMES,
            deadline_s=[1 / 30.0] * FRAMES,
            energy_j=[0.1 + 0.01 * rng.random() for _ in range(FRAMES)],
            average_power_w=[3.0] * FRAMES,
            measured_power_w=[3.1] * FRAMES,
            temperature_c=[55.0] * FRAMES,
            explored=[False] * FRAMES,
        )
        result = SimulationResult(
            governor_name="synthetic",
            application_name="synthetic-app",
            reference_time_s=1 / 30.0,
            columns=columns,
            engine_used="tablepath",
        )
        scenario = ScenarioSpec(
            label=f"synthetic-{index:05d}",
            application=FactorySpec.of("mpeg4", num_frames=FRAMES, seed=index),
            governor=FactorySpec.of("ondemand"),
        )
        store.add(ScenarioOutcome(scenario=scenario, result=result))
    return store


def _write_store(store: CampaignResult, path: str, flavor: str) -> None:
    if flavor == "json":
        store.save(path, store="json")
    else:
        result_store.save_store(store, path, flavor)


def _bench_write(store: CampaignResult, path: str, flavor: str) -> float:
    started = time.perf_counter()
    _write_store(store, path, flavor)
    return time.perf_counter() - started


def _bench_checkpoint(store: CampaignResult, path: str, flavor: str) -> float:
    """Wall-clock of ``CHECKPOINT_EVENTS`` checkpoint events mid-campaign.

    Each event persists one more completed outcome the way the executor
    does for that flavor: the legacy blob atomically rewrites everything
    completed so far, the columnar store appends the one record and
    flushes.  Events are spread across the campaign so the legacy rewrites
    pay the realistic (growing) store size, not just the cheap start.
    """
    outcomes = list(store)
    events = min(CHECKPOINT_EVENTS, len(outcomes))
    stride = len(outcomes) // events
    if flavor == "json":
        partial = CampaignResult(campaign_name=store.campaign_name)
        elapsed = 0.0
        for position, outcome in enumerate(outcomes):
            partial.add(outcome)
            if position % stride == 0:
                started = time.perf_counter()
                partial.save(path, store="json")
                elapsed += time.perf_counter() - started
        return elapsed
    writer = result_store.StoreWriter.create(path, store.campaign_name, flavor)
    elapsed = 0.0
    try:
        for position, outcome in enumerate(outcomes):
            if position % stride == 0:
                started = time.perf_counter()
                writer.append(outcome)
                writer.flush()
                elapsed += time.perf_counter() - started
            else:
                writer.append(outcome)
    finally:
        writer.close()
    return elapsed


def _bench_summary(path: str) -> float:
    """Wall-clock of loading ``path`` and summarising every outcome."""
    started = time.perf_counter()
    loaded = CampaignResult.load(path, lazy=True)
    for outcome in loaded:
        summary = outcome.metrics_summary()
        if summary is None or not math.isfinite(summary.total_energy_j):
            raise AssertionError("summary query produced no usable metrics")
    return time.perf_counter() - started


def bench_flavor(
    store: CampaignResult, flavor: str, workdir: str
) -> Dict[str, object]:
    """All three measurements for one store flavor, with a parity check."""
    path = os.path.join(workdir, f"store-{flavor}.bin")
    write_s = _bench_write(store, path, flavor)
    if CampaignResult.load(path).to_dict() != store.to_dict():
        raise AssertionError(f"{flavor} store did not round-trip")
    summary_s = _bench_summary(path)
    checkpoint_path = os.path.join(workdir, f"ckpt-{flavor}.bin")
    checkpoint_s = _bench_checkpoint(store, checkpoint_path, flavor)
    events = min(CHECKPOINT_EVENTS, len(store))
    return {
        "scenario": f"synthetic-campaign/{flavor}",
        "flavor": flavor,
        "scenarios": len(store),
        "frames_per_scenario": FRAMES,
        "write_wall_s": write_s,
        "checkpoint_wall_s": checkpoint_s,
        "checkpoint_events": events,
        "summary_wall_s": summary_s,
        "write_outcomes_per_s": len(store) / write_s,
        "checkpoint_events_per_s": events / checkpoint_s,
        "summary_queries_per_s": len(store) / summary_s,
        "store_bytes": os.path.getsize(path),
        "round_trip_identical": True,
    }


def run_suite(num_scenarios: int, smoke: bool) -> Dict[str, object]:
    store = synthetic_store(num_scenarios)
    with tempfile.TemporaryDirectory(prefix="bench-result-store-") as workdir:
        io_rows = [
            bench_flavor(store, flavor, workdir)
            for flavor in ("json", result_store.ENCODING_JSONL)
        ]
        arrow_rows: List[Dict[str, object]] = []
        if result_store.arrow_available():
            arrow_rows.append(
                bench_flavor(store, result_store.ENCODING_ARROW, workdir)
            )
    by_flavor = {row["flavor"]: row for row in io_rows + arrow_rows}
    summary = {
        "checkpoint_speedup_jsonl_vs_json": (
            by_flavor["jsonl"]["checkpoint_events_per_s"]
            / by_flavor["json"]["checkpoint_events_per_s"]
        ),
        "summary_speedup_jsonl_vs_json": (
            by_flavor["jsonl"]["summary_queries_per_s"]
            / by_flavor["json"]["summary_queries_per_s"]
        ),
    }
    results: Dict[str, object] = {
        "result_store_mode": "smoke" if smoke else "full",
        "result_store_scenarios": num_scenarios,
        "result_store_io": io_rows,
        # Always a list (the regression gate indexes sections by rows); the
        # sibling note marks a deliberate skip, never silent truncation.
        "result_store_arrow_io": arrow_rows,
        "result_store_summary": summary,
    }
    if not arrow_rows:
        results["result_store_arrow_io_note"] = ARROW_SKIP_NOTE
    return results


# -- pytest entry point (explicit: `pytest benchmarks/bench_result_store.py`) --
def test_bench_result_store_checkpoint_and_parity():
    results = run_suite(SMOKE_SCENARIOS, smoke=True)
    rows = {row["flavor"]: row for row in results["result_store_io"]}
    print()
    for row in results["result_store_io"] + results["result_store_arrow_io"]:
        print(
            f"{row['scenario']:28s} write {row['write_outcomes_per_s']:8.0f}/s  "
            f"ckpt {row['checkpoint_events_per_s']:8.0f}/s  "
            f"summary {row['summary_queries_per_s']:8.0f}/s  "
            f"({row['store_bytes'] / 1e6:.1f} MB)"
        )
    for row in rows.values():
        assert row["round_trip_identical"]
    # The tentpole claim: appending a record is O(1), rewriting the blob is
    # O(campaign) — at 200 scenarios the gap must already be wide (>= 5x;
    # the tracked numbers in BENCH_results.json carry the real ratio).
    assert (
        rows["jsonl"]["checkpoint_events_per_s"]
        >= 5.0 * rows["json"]["checkpoint_events_per_s"]
    )
    # Cached-metrics summaries must never be slower than re-reducing frames.
    assert (
        rows["jsonl"]["summary_queries_per_s"]
        >= rows["json"]["summary_queries_per_s"]
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default=None, help="write a standalone results file here"
    )
    parser.add_argument(
        "--update",
        default=None,
        metavar="RESULTS_JSON",
        help="merge the result-store sections into this existing results file",
    )
    parser.add_argument(
        "--scenarios",
        type=int,
        default=FULL_SCENARIOS,
        help=f"synthetic campaign size (full mode; default {FULL_SCENARIOS})",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"reduced scale for CI ({SMOKE_SCENARIOS} scenarios)",
    )
    args = parser.parse_args()
    if (args.output is None) == (args.update is None):
        parser.error("pass exactly one of --output / --update")
    num_scenarios = SMOKE_SCENARIOS if args.smoke else args.scenarios

    results = run_suite(num_scenarios, args.smoke)
    if args.update:
        with open(args.update, encoding="utf-8") as handle:
            merged = json.load(handle)
        merged.update(results)
        target = args.update
    else:
        merged = {"generated_by": "benchmarks/bench_result_store.py", **results}
        target = args.output
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2)
        handle.write("\n")

    print(f"wrote {target}")
    for row in results["result_store_io"] + results["result_store_arrow_io"]:
        print(
            f"  {row['scenario']:28s} write {row['write_outcomes_per_s']:8.0f}/s  "
            f"ckpt {row['checkpoint_events_per_s']:8.0f}/s  "
            f"summary {row['summary_queries_per_s']:8.0f}/s"
        )
    if not results["result_store_arrow_io"]:
        print(f"  result_store_arrow_io: {results['result_store_arrow_io_note']}")
    summary = results["result_store_summary"]
    print(
        f"  checkpoint speedup (jsonl vs json): "
        f"{summary['checkpoint_speedup_jsonl_vs_json']:.1f}x"
    )


if __name__ == "__main__":
    main()
