"""Benchmark regenerating the paper's Table I (normalised energy / performance).

Prints the reproduced table next to the paper's values and checks the
qualitative shape the paper claims:

* every governor consumes more energy than the Oracle;
* the energy ordering is ondemand > multi-core DVFS control > proposed;
* the proposed approach's normalised performance is the closest to 1;
* the proposed approach saves on the order of 16% energy versus ondemand.
"""

from __future__ import annotations

from repro.experiments import format_table1, run_table1


def test_table1_energy_performance(benchmark, experiment_settings):
    result = benchmark.pedantic(
        run_table1, args=(experiment_settings,), rounds=1, iterations=1
    )
    print()
    print(format_table1(result))

    ondemand = result.row_for("Linux Ondemand [5]")
    multicore = result.row_for("Multi-core DVFS control [20]")
    proposed = result.row_for("Proposed")

    # All approaches cost more energy than the Oracle.
    for row in result.rows:
        assert row.normalized_energy > 1.0

    # Energy ordering matches the paper: ondemand worst, proposed best.
    assert ondemand.normalized_energy > multicore.normalized_energy
    assert multicore.normalized_energy > proposed.normalized_energy

    # The proposed approach tracks the performance requirement most closely.
    others = [ondemand.normalized_performance, multicore.normalized_performance]
    assert all(
        abs(1.0 - proposed.normalized_performance) <= abs(1.0 - other) for other in others
    )

    # Headline claim: double-digit energy saving versus the ondemand baseline.
    assert result.energy_saving_vs_ondemand_percent > 8.0
