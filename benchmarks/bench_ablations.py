"""Ablation benches for the design choices called out in DESIGN.md.

These are not paper tables; they quantify the effect of the main design
choices of the proposed RTM so a user can see *why* each piece is there:

* EPD vs UPD exploration (the paper's Table II mechanism) at equal budget;
* the number of discretisation levels N of the state space;
* the EWMA smoothing factor γ;
* the shared Q-table of the many-core formulation vs the single-agent
  formulation.

Each ablation is a campaign over the football sequence with the design
knob as a governor-spec parameter, run on the settings' backend.
"""

from __future__ import annotations

from repro.campaign.spec import CampaignSpec, FactorySpec


def _run_ablation(settings, name, governors, seed=19):
    """Run one application × the ablation's governor grid, keyed by knob value."""
    campaign = CampaignSpec.from_grid(
        name,
        applications=[FactorySpec.of("h264-football", num_frames=settings.num_frames)],
        governors=governors,
        cluster=settings.cluster_spec(),
        seeds=(seed,),
    )
    return settings.run_campaign(campaign).results()


def test_ablation_state_levels(benchmark, quick_settings):
    """Energy/miss trade-off as the state discretisation N varies (paper uses 5)."""

    def run():
        governors = {
            str(levels): FactorySpec.of(
                "proposed", workload_levels=levels, slack_levels=levels
            )
            for levels in (3, 5, 8)
        }
        results = _run_ablation(quick_settings, "ablation-state-levels", governors)
        return {int(key): result for key, result in results.items()}

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for levels, result in outcomes.items():
        print(
            f"N={levels}: energy={result.total_energy_j:.1f} J, "
            f"perf={result.normalized_performance:.2f}, miss={result.deadline_miss_ratio:.1%}, "
            f"explorations={result.exploration_count}"
        )
    # Every configuration still produces a working governor (meets most deadlines).
    for result in outcomes.values():
        assert result.deadline_miss_ratio < 0.5
    # A coarser table does not explore more than the finest one by an order
    # of magnitude (Q-table size is the learning-overhead knob).
    assert outcomes[3].exploration_count <= outcomes[8].exploration_count * 3


def test_ablation_ewma_gamma(benchmark, quick_settings):
    """Sensitivity of the RTM to the EWMA smoothing factor γ (paper uses 0.6)."""

    def run():
        governors = {
            str(gamma): FactorySpec.of("proposed", ewma_gamma=gamma)
            for gamma in (0.2, 0.6, 1.0)
        }
        results = _run_ablation(quick_settings, "ablation-ewma-gamma", governors)
        return {float(key): result for key, result in results.items()}

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for gamma, result in outcomes.items():
        print(
            f"gamma={gamma}: energy={result.total_energy_j:.1f} J, "
            f"perf={result.normalized_performance:.2f}, miss={result.deadline_miss_ratio:.1%}"
        )
    energies = [r.total_energy_j for r in outcomes.values()]
    # The governor is robust to the smoothing factor: within ~15% energy.
    assert max(energies) <= min(energies) * 1.15


def test_ablation_shared_vs_single_table(benchmark, quick_settings):
    """Many-core (shared-table) formulation vs the single-agent formulation."""

    def run():
        governors = {
            "shared": FactorySpec.of("proposed"),
            "single": FactorySpec.of("proposed-single"),
        }
        results = _run_ablation(quick_settings, "ablation-shared-vs-single", governors)
        return results["shared"], results["single"]

    shared, single = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        f"shared Q-table: energy={shared.total_energy_j:.1f} J, "
        f"explorations={shared.exploration_count}, perf={shared.normalized_performance:.2f}"
    )
    print(
        f"single-agent  : energy={single.total_energy_j:.1f} J, "
        f"explorations={single.exploration_count}, perf={single.normalized_performance:.2f}"
    )
    # Both formulations deliver comparable energy (within 20%)...
    assert abs(shared.total_energy_j - single.total_energy_j) <= 0.2 * single.total_energy_j
    # ...and both meet the requirement reasonably (no pathological behaviour).
    for result in (shared, single):
        assert result.deadline_miss_ratio < 0.5
        assert result.normalized_performance < 1.2


def test_ablation_epd_vs_upd_energy(benchmark, quick_settings):
    """EPD-guided exploration should not cost more energy than UPD exploration."""

    def run():
        governors = {
            "epd": FactorySpec.of("proposed"),
            "upd": FactorySpec.of("proposed", use_exponential_exploration=False),
        }
        results = _run_ablation(quick_settings, "ablation-epd-vs-upd", governors)
        return results["epd"], results["upd"]

    epd, upd = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"EPD: energy={epd.total_energy_j:.1f} J, explorations={epd.exploration_count}")
    print(f"UPD: energy={upd.total_energy_j:.1f} J, explorations={upd.exploration_count}")
    assert epd.total_energy_j <= upd.total_energy_j * 1.1
