"""Benchmark regenerating the paper's Fig. 3 (workload misprediction & slack).

Prints the reproduced summary statistics next to the paper's and checks the
shape of the figure:

* EWMA prediction with γ = 0.6 keeps the steady-state misprediction at the
  few-percent level;
* the misprediction over the first 100 frames (initial transient, scene-cut
  heavy opening, exploration phase) exceeds the steady-state misprediction;
* the average slack ratio settles (small spread) once the exploration phase
  has ended.
"""

from __future__ import annotations

from repro.analysis.stats import population_std
from repro.experiments import format_figure3, run_figure3


def test_figure3_misprediction_and_slack(benchmark, experiment_settings):
    result = benchmark.pedantic(
        run_figure3, args=(experiment_settings,), rounds=1, iterations=1
    )
    print()
    print(format_figure3(result))

    # The regenerated series cover the run.
    assert result.num_frames >= 250
    assert len(result.predicted_cycles) == len(result.actual_cycles)

    # Early (exploration / scene-cut heavy) misprediction exceeds steady state.
    assert result.early_misprediction_percent > result.late_misprediction_percent

    # Both are at the few-percent level the paper reports (not tens of percent).
    assert result.early_misprediction_percent < 15.0
    assert result.late_misprediction_percent < 8.0

    # The EWMA smoothing factor is the paper's experimentally determined 0.6.
    assert abs(result.ewma_gamma - 0.6) < 1e-9

    # The average slack settles after the exploration phase: its spread over
    # the second half of the run is small compared to the first half.
    slack = result.average_slack
    first_half = slack[: len(slack) // 2]
    second_half = slack[len(slack) // 2:]
    assert population_std(second_half) <= population_std(first_half) + 0.05
