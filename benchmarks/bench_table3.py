"""Benchmark regenerating the paper's Table III (worst-case learning overhead).

Prints the reproduced table next to the paper's values and checks the shape:

* the proposed shared-Q-table RTM pays its learning overhead over
  substantially fewer decision epochs than the per-core-table multi-core
  DVFS control baseline (the paper reports roughly a 2x gap: 105 vs 205);
* the proposed RTM's total charged overhead time is also lower.
"""

from __future__ import annotations

from repro.experiments import format_table3, run_table3


def test_table3_learning_overhead(benchmark, experiment_settings):
    result = benchmark.pedantic(
        run_table3, args=(experiment_settings,), rounds=1, iterations=1
    )
    print()
    print(format_table3(result))

    # The shared Q-table needs meaningfully fewer learning epochs.
    assert result.proposed_learning_epochs < result.baseline_learning_epochs
    assert result.epoch_reduction_factor > 1.2

    # And correspondingly less total charged overhead time.
    assert result.proposed_overhead_s < result.baseline_overhead_s

    # Both learn within a few hundred decision epochs (same order as the paper).
    assert result.proposed_learning_epochs < 400
    assert result.baseline_learning_epochs < 800
