"""CI chaos smoke: kill a worker site mid-campaign, assert bit-identity.

Boots the real distributed stack as OS processes — one
``repro-campaign serve`` coordinator and two ``repro-campaign work``
sites over loopback HTTP — then SIGKILLs one worker while the campaign
is in flight.  The coordinator's lease reaper must requeue the dead
worker's scenarios onto the survivor, and the merged result written by
``serve`` must be byte-identical to an unsharded in-process serial run
of the same campaign (the spec comes from
:mod:`benchmarks.make_smoke_campaign`, same as CI's sharding jobs).

Usage::

    PYTHONPATH=src python benchmarks/chaos_smoke.py [--frames 120]

Exits non-zero on any divergence, so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.dirname(__file__))
from make_smoke_campaign import build_smoke_campaign  # noqa: E402

from repro.campaign import run_campaign  # noqa: E402
from repro.campaign.service import HTTPClient  # noqa: E402

#: Hard wall-clock budget for the whole exercise.
DEADLINE_S = 240.0
#: Short lease so the killed worker's scenarios requeue quickly.
LEASE_TIMEOUT_S = 5.0


def _spawn(args, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    return subprocess.Popen(
        [sys.executable, "-m", "repro.campaign.cli", *args],
        env=env,
        text=True,
        **kwargs,
    )


def _drain(stream, sink):
    for line in stream:
        sink.append(line.rstrip("\n"))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=120, help="frames per scenario")
    args = parser.parse_args()

    campaign = build_smoke_campaign(num_frames=args.frames)
    print(f"chaos smoke: {len(campaign)} scenarios, {args.frames} frames each")
    reference = run_campaign(campaign)
    print("serial reference computed")

    workdir = tempfile.mkdtemp(prefix="campaign-chaos-")
    spec_path = os.path.join(workdir, "spec.json")
    output_path = os.path.join(workdir, "service.json")
    journal_path = os.path.join(workdir, "journal.json")
    campaign.save(spec_path)

    deadline = time.monotonic() + DEADLINE_S
    procs = []
    serve_lines: list = []
    try:
        serve = _spawn(
            [
                "serve",
                spec_path,
                "--port", "0",
                "--output", output_path,
                "--journal", journal_path,
                "--lease-timeout", str(LEASE_TIMEOUT_S),
                "--quiet",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
        )
        procs.append(serve)
        # The serve banner carries the resolved address; keep draining the
        # pipe afterwards so the summary print cannot block the server.
        banner = serve.stdout.readline().strip()
        if " at http://" not in banner:
            raise RuntimeError(f"unexpected serve banner: {banner!r}")
        url = banner.rsplit(" at ", 1)[1]
        threading.Thread(
            target=_drain, args=(serve.stdout, serve_lines), daemon=True
        ).start()
        print(f"coordinator serving at {url}")

        workers = [
            _spawn(
                [
                    "work",
                    "--coordinator", url,
                    "--id", f"site-{index}",
                    "--poll", "0.2",
                    "--heartbeat", "1.0",
                    "--quiet",
                ],
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            for index in range(2)
        ]
        procs.extend(workers)

        # Kill worker 1 as soon as the campaign is demonstrably in flight.
        client = HTTPClient(url, timeout_s=5.0)
        while time.monotonic() < deadline:
            status = client.call({"op": "status"})
            if status["done"] >= 1 or status["drained"]:
                break
            time.sleep(0.1)
        victim = workers[1]
        if victim.poll() is None:
            os.kill(victim.pid, signal.SIGKILL)
            print("killed worker site-1 mid-campaign")
        else:
            print("worker site-1 already exited (campaign drained fast)")

        while serve.poll() is None:
            if time.monotonic() > deadline:
                raise RuntimeError("chaos smoke exceeded its deadline")
            time.sleep(0.2)
        if serve.returncode != 0:
            raise RuntimeError(f"serve exited with rc={serve.returncode}")
        survivor_rc = workers[0].wait(timeout=30.0)
        if survivor_rc != 0:
            raise RuntimeError(f"surviving worker exited with rc={survivor_rc}")
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()

    with open(output_path, encoding="utf-8") as handle:
        service_result = json.load(handle)
    if service_result != json.loads(reference.to_json()):
        print("FAIL: service result differs from the unsharded serial run")
        return 1
    print(
        "OK: killed-worker service run is bit-identical to the serial run "
        f"({len(service_result['outcomes'])} scenarios)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
