#!/usr/bin/env python3
"""Soft-real-time video decoding: deadlines, slack and frame drops.

The paper's motivating scenario is an H.264/MPEG-4 decoder that must sustain
its frame rate: frames missing their deadline are dropped and degrade the
viewing experience, while finishing frames early wastes energy.  This example
looks inside a single run of the proposed RTM on the football sequence:

* how the selected operating point evolves as the Q-table is learnt,
* how the average slack ratio settles around its target after the
  exploration phase,
* where deadline misses (dropped frames) occur,
* how the learnt Q-table's greedy policy looks per state.

The run is a one-scenario campaign with the ``rl-policy`` probe attached:
the probe captures the learnt greedy policy inside the worker, so the same
script works unchanged on the process backend (where the governor object
never crosses back into this process).

Run with:  python examples/video_decode_deadlines.py
"""

from repro import CampaignSpec, FactorySpec, ScenarioSpec, run_campaign
from repro.analysis import format_table, windowed_mean
from repro.sim import frequency_histogram


def sparkline(values, buckets=60, symbols=" .:-=+*#%@"):
    """Render a list of values as a coarse text sparkline."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = max(1, len(values) // buckets)
    sampled = [values[i] for i in range(0, len(values), step)]
    return "".join(symbols[int((v - lo) / span * (len(symbols) - 1))] for v in sampled)


def main() -> None:
    scenario = ScenarioSpec(
        label="football",
        application=FactorySpec.of("h264-football", num_frames=1000),
        governor=FactorySpec.of("proposed"),
        probe=FactorySpec.of("rl-policy"),
    )
    campaign = CampaignSpec(name="video-decode-deadlines", scenarios=(scenario,))
    outcome = run_campaign(campaign).outcome("football")
    result = outcome.result

    print(f"Application: {result.application_name}, "
          f"Tref = {result.reference_time_s * 1e3:.0f} ms")
    print(f"Exploration phase: {result.exploration_count} frames; "
          f"policy converged at epoch {result.converged_epoch}")
    print(f"Total energy: {result.total_energy_j:.1f} J, "
          f"average power {result.average_power_w:.2f} W")
    print(f"Normalised performance: {result.normalized_performance:.2f}, "
          f"dropped frames: {result.deadline_miss_ratio:.1%}")
    print()

    frequencies = [record.frequency_mhz for record in result.records]
    slack = [record.slack_ratio for record in result.records]
    print("Selected frequency over time (MHz, low→high):")
    print("  " + sparkline(frequencies))
    print("Per-frame slack ratio over time (negative = dropped frame):")
    print("  " + sparkline(windowed_mean(slack, 10)))
    print()

    histogram = frequency_histogram(result.records)
    rows = [
        (f"{mhz:.0f} MHz", count, f"{100.0 * count / len(result.records):.1f}%")
        for mhz, count in histogram.items()
    ]
    print(format_table(["Operating point", "Frames", "Share"], rows,
                       title="Frequency residency"))
    print()

    # Inspect the learnt policy the probe captured inside the worker.
    policy_rows = [
        (
            f"workload L{entry['workload_level']}",
            f"slack L{entry['slack_level']}",
            f"{entry['frequency_mhz']:.0f} MHz",
        )
        for entry in (outcome.probe or {}).get("greedy_policy", [])
    ]
    print(format_table(["Workload level", "Slack level", "Greedy V-F"], policy_rows,
                       title="Learnt greedy policy (visited states)"))


if __name__ == "__main__":
    main()
