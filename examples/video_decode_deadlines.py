#!/usr/bin/env python3
"""Soft-real-time video decoding: deadlines, slack and frame drops.

The paper's motivating scenario is an H.264/MPEG-4 decoder that must sustain
its frame rate: frames missing their deadline are dropped and degrade the
viewing experience, while finishing frames early wastes energy.  This example
looks inside a single run of the proposed RTM on the football sequence:

* how the selected operating point evolves as the Q-table is learnt,
* how the average slack ratio settles around its target after the
  exploration phase,
* where deadline misses (dropped frames) occur,
* how the learnt Q-table's greedy policy looks per state.

Run with:  python examples/video_decode_deadlines.py
"""

from repro import build_a15_cluster, h264_football_application
from repro.analysis import format_table, windowed_mean
from repro.rtm import MultiCoreRLGovernor
from repro.sim import SimulationEngine, frequency_histogram


def sparkline(values, buckets=60, symbols=" .:-=+*#%@"):
    """Render a list of values as a coarse text sparkline."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = max(1, len(values) // buckets)
    sampled = [values[i] for i in range(0, len(values), step)]
    return "".join(symbols[int((v - lo) / span * (len(symbols) - 1))] for v in sampled)


def main() -> None:
    application = h264_football_application(num_frames=1000)
    governor = MultiCoreRLGovernor()
    engine = SimulationEngine(build_a15_cluster())
    result = engine.run(application, governor)

    print(f"Application: {application.name}, Tref = {application.reference_time_s * 1e3:.0f} ms")
    print(f"Exploration phase: {result.exploration_count} frames; "
          f"policy converged at epoch {result.converged_epoch}")
    print(f"Total energy: {result.total_energy_j:.1f} J, "
          f"average power {result.average_power_w:.2f} W")
    print(f"Normalised performance: {result.normalized_performance:.2f}, "
          f"dropped frames: {result.deadline_miss_ratio:.1%}")
    print()

    frequencies = [record.frequency_mhz for record in result.records]
    slack = [record.slack_ratio for record in result.records]
    print("Selected frequency over time (MHz, low→high):")
    print("  " + sparkline(frequencies))
    print("Per-frame slack ratio over time (negative = dropped frame):")
    print("  " + sparkline(windowed_mean(slack, 10)))
    print()

    histogram = frequency_histogram(result.records)
    rows = [
        (f"{mhz:.0f} MHz", count, f"{100.0 * count / len(result.records):.1f}%")
        for mhz, count in histogram.items()
    ]
    print(format_table(["Operating point", "Frames", "Share"], rows,
                       title="Frequency residency"))
    print()

    # Inspect the learnt policy: greedy operating point per (workload, slack) state.
    agent = governor.agent
    table = agent.qtable
    state_space = governor.state_space
    policy_rows = []
    for state in range(table.num_states):
        workload_level, slack_level = state_space.decompose(state)
        if table.visit_count(state, table.best_action(state)) == 0:
            continue
        point = engine.cluster.vf_table[table.best_action(state)]
        policy_rows.append(
            (f"workload L{workload_level}", f"slack L{slack_level}", f"{point.frequency_mhz:.0f} MHz")
        )
    print(format_table(["Workload level", "Slack level", "Greedy V-F"], policy_rows,
                       title="Learnt greedy policy (visited states)"))


if __name__ == "__main__":
    main()
