#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation section.

Runs the Table I, Table II, Table III and Fig. 3 experiment drivers at
paper-like scale and prints each reproduction next to the values the paper
reports.  This is the long-running "full reproduction" entry point; the
same drivers run at reduced scale inside the pytest-benchmark harness.

Every driver executes its sweep as a campaign, so ``--backend process``
spreads the independent runs over all cores without changing a single
number in the output.

Run with:  python examples/reproduce_paper.py [--quick] [--backend process]
"""

import argparse

from repro.campaign.executor import BACKENDS
from repro.experiments import (
    ExperimentSettings,
    format_figure3,
    format_table1,
    format_table2,
    format_table3,
    run_figure3,
    run_table1,
    run_table2,
    run_table3,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run at reduced scale (600 frames, 2 seeds) for a fast smoke run",
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="process",
        help="campaign backend the drivers run their sweeps on (default: process)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the process backend (default: CPU count)",
    )
    arguments = parser.parse_args()

    if arguments.quick:
        settings = ExperimentSettings(num_frames=600, num_seeds=2)
    else:
        # Paper scale: the football sequence is ~3000 frames and Table II/III
        # report averages over repeated runs.
        settings = ExperimentSettings(num_frames=3000, num_seeds=5)
    settings = ExperimentSettings(
        num_frames=settings.num_frames,
        num_seeds=settings.num_seeds,
        backend=arguments.backend,
        max_workers=arguments.workers,
    )

    print(format_table1(run_table1(settings)))
    print()
    print(format_table2(run_table2(settings)))
    print()
    print(format_table3(run_table3(settings)))
    print()
    print(format_figure3(run_figure3(settings)))


if __name__ == "__main__":
    main()
