#!/usr/bin/env python3
"""Multiple concurrently executing applications (the paper's future work).

The paper closes by noting that extending the RTM to manage several
concurrently executing applications is future work.  The library already has
the pieces: the application-facing API (:class:`repro.rtm.api.RuntimeManagerAPI`)
tracks one performance target per application and exposes the *tightest*
requirement as the effective target of the shared A15 cluster, and the
workload layer can interleave two applications' frames onto the cluster.

This example runs an MPEG-4 decode (24 fps) alongside an FFT stream (32 fps):
the two workloads are merged frame-by-frame (each epoch carries both
applications' work, scheduled across the four cores) and the governor must
satisfy the tighter 32 fps deadline.

Run with:  python examples/multi_application.py
"""

from repro import Application, Frame, PerformanceRequirement, build_a15_cluster
from repro import fft_application, mpeg4_application
from repro.analysis import format_table
from repro.governors import OndemandGovernor
from repro.rtm import MultiCoreRLGovernor, RuntimeManagerAPI
from repro.sim import ExperimentRunner


def merge_applications(first: Application, second: Application, name: str) -> Application:
    """Interleave two applications' thread demands into one frame stream.

    Each merged frame carries both applications' thread demands for the
    corresponding iteration; the deadline is the tighter of the two (which is
    exactly what the RuntimeManagerAPI reports as the effective requirement).
    """
    api = RuntimeManagerAPI()
    api.register(first.name, first.requirement.frames_per_second,
                 first.requirement.reference_time_s)
    api.register(second.name, second.requirement.frames_per_second,
                 second.requirement.reference_time_s)
    effective = api.effective_requirement()

    num_frames = min(first.num_frames, second.num_frames)
    merged = []
    for index in range(num_frames):
        threads = tuple(first[index].thread_cycles) + tuple(second[index].thread_cycles)
        merged.append(
            Frame(
                index=index,
                thread_cycles=threads,
                deadline_s=effective.tref_s,
                kind=f"{first[index].kind}+{second[index].kind}",
            )
        )
    return Application(name=name, frames=merged, requirement=effective,
                       description="merged concurrent applications")


def main() -> None:
    video = mpeg4_application(num_frames=400, frames_per_second=24.0)
    fft = fft_application(num_frames=400, frames_per_second=32.0, mean_frame_cycles=4.0e7)
    merged = merge_applications(video, fft, name="mpeg4+fft")

    print(f"Concurrent applications: {video.name} (24 fps) + {fft.name} (32 fps)")
    print(f"Effective requirement: Tref = {merged.reference_time_s * 1e3:.1f} ms "
          f"(the tighter of the two)")
    print(f"Merged demand: {merged.mean_frame_cycles / 1e6:.1f} Mcycles/frame over "
          f"{merged[0].num_threads} threads")
    print()

    runner = ExperimentRunner(cluster=build_a15_cluster())
    results = runner.run_with_oracle(
        merged,
        {"ondemand": OndemandGovernor, "proposed": MultiCoreRLGovernor},
    )
    oracle = results["oracle"]
    rows = [
        (
            name,
            f"{results[name].normalized_energy(oracle):.2f}",
            f"{results[name].normalized_performance:.2f}",
            f"{results[name].deadline_miss_ratio:.1%}",
        )
        for name in ("ondemand", "proposed")
    ]
    print(format_table(["Governor", "Norm. energy", "Norm. perf", "Misses"], rows,
                       title="Concurrent MPEG-4 + FFT under the shared A15 cluster"))


if __name__ == "__main__":
    main()
