#!/usr/bin/env python3
"""Multiple concurrently executing applications (the paper's future work).

The paper closes by noting that extending the RTM to manage several
concurrently executing applications is future work.  The library already has
the pieces: the application-facing API (:class:`repro.rtm.api.RuntimeManagerAPI`)
tracks one performance target per application and exposes the *tightest*
requirement as the effective target of the shared A15 cluster, and the
workload layer can interleave two applications' frames onto the cluster.

This example runs an MPEG-4 decode (24 fps) alongside an FFT stream (32 fps):
the two workloads are merged frame-by-frame (each epoch carries both
applications' work, scheduled across the four cores) and the governor must
satisfy the tighter 32 fps deadline.  The merged workload is *registered*
as a custom campaign application factory, which makes it sweepable like any
built-in — the campaign below compares ondemand against the proposed RTM on
it, normalised to the Oracle.

Run with:  python examples/multi_application.py
"""

from repro import (
    Application,
    CampaignSpec,
    FactorySpec,
    Frame,
    fft_application,
    mpeg4_application,
    register_application,
    run_campaign,
)
from repro.analysis import format_table
from repro.rtm import RuntimeManagerAPI
from repro.sim.comparison import compare_to_oracle


def merge_applications(first: Application, second: Application, name: str) -> Application:
    """Interleave two applications' thread demands into one frame stream.

    Each merged frame carries both applications' thread demands for the
    corresponding iteration; the deadline is the tighter of the two (which is
    exactly what the RuntimeManagerAPI reports as the effective requirement).
    """
    api = RuntimeManagerAPI()
    api.register(first.name, first.requirement.frames_per_second,
                 first.requirement.reference_time_s)
    api.register(second.name, second.requirement.frames_per_second,
                 second.requirement.reference_time_s)
    effective = api.effective_requirement()

    num_frames = min(first.num_frames, second.num_frames)
    merged = []
    for index in range(num_frames):
        threads = tuple(first[index].thread_cycles) + tuple(second[index].thread_cycles)
        merged.append(
            Frame(
                index=index,
                thread_cycles=threads,
                deadline_s=effective.tref_s,
                kind=f"{first[index].kind}+{second[index].kind}",
            )
        )
    return Application(name=name, frames=merged, requirement=effective,
                       description="merged concurrent applications")


@register_application("mpeg4+fft")
def merged_mpeg4_fft(num_frames: int = 400, seed: int = 7) -> Application:
    """MPEG-4 decode (24 fps) merged with an FFT stream (32 fps)."""
    video = mpeg4_application(num_frames=num_frames, frames_per_second=24.0, seed=seed)
    fft = fft_application(
        num_frames=num_frames, frames_per_second=32.0, mean_frame_cycles=4.0e7, seed=seed
    )
    return merge_applications(video, fft, name="mpeg4+fft")


def main() -> None:
    merged = merged_mpeg4_fft()
    print("Concurrent applications: mpeg4 (24 fps) + fft (32 fps)")
    print(f"Effective requirement: Tref = {merged.reference_time_s * 1e3:.1f} ms "
          f"(the tighter of the two)")
    print(f"Merged demand: {merged.mean_frame_cycles / 1e6:.1f} Mcycles/frame over "
          f"{merged[0].num_threads} threads")
    print()

    campaign = CampaignSpec.from_grid(
        "multi-application",
        applications=[FactorySpec.of("mpeg4+fft", num_frames=400)],
        governors={
            "ondemand": FactorySpec.of("ondemand"),
            "proposed": FactorySpec.of("proposed"),
            "oracle": FactorySpec.of("oracle"),
        },
    )
    results = run_campaign(campaign).results()
    rows = [
        (
            row.methodology,
            f"{row.normalized_energy:.2f}",
            f"{row.normalized_performance:.2f}",
            f"{row.deadline_miss_ratio:.1%}",
        )
        for row in compare_to_oracle(results)
    ]
    print(format_table(["Governor", "Norm. energy", "Norm. perf", "Misses"], rows,
                       title="Concurrent MPEG-4 + FFT under the shared A15 cluster"))


if __name__ == "__main__":
    main()
