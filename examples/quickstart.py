#!/usr/bin/env python3
"""Quickstart: run the proposed Q-learning governor on an H.264 decode.

This is the smallest end-to-end use of the library's public API:

1. build the simulated ODROID-XU3 A15 cluster,
2. generate a frame-based H.264 decode workload (the paper's football
   sequence) with a 25 fps requirement,
3. run it under the proposed run-time manager and under the Linux ondemand
   governor,
4. compare energy, performance and deadline behaviour.

The learning governor pays an exploration cost over the first ~100 frames,
so its advantage shows on sequences long enough to amortise it (the paper's
football clip is ~3000 frames).

Run with:  python examples/quickstart.py
"""

from repro import build_a15_cluster, h264_football_application
from repro.governors import OndemandGovernor, OracleGovernor
from repro.rtm import MultiCoreRLGovernor
from repro.sim import ExperimentRunner
from repro.analysis import format_table


def main() -> None:
    # The application layer: a periodic H.264 decode with a 25 fps deadline.
    application = h264_football_application(num_frames=1200)
    print(
        f"Workload: {application.name}, {application.num_frames} frames, "
        f"Tref = {application.reference_time_s * 1e3:.1f} ms, "
        f"mean demand = {application.mean_frame_cycles / 1e6:.1f} Mcycles/frame"
    )

    # The hardware layer: the XU3's A15 cluster (4 cores, 19 operating points).
    runner = ExperimentRunner(cluster=build_a15_cluster())

    # The run-time layer: the proposed RL governor vs the stock ondemand
    # policy, both normalised against the offline Oracle.
    results = runner.run_with_oracle(
        application,
        {
            "ondemand": OndemandGovernor,
            "proposed": MultiCoreRLGovernor,
        },
    )
    oracle = results["oracle"]

    rows = []
    for name in ("ondemand", "proposed", "oracle"):
        result = results[name]
        rows.append(
            (
                name,
                f"{result.total_energy_j:.1f} J",
                f"{result.normalized_energy(oracle):.2f}",
                f"{result.normalized_performance:.2f}",
                f"{result.deadline_miss_ratio:.1%}",
                f"{result.average_power_w:.2f} W",
            )
        )
    print()
    print(
        format_table(
            headers=["Governor", "Energy", "Norm. energy", "Norm. perf", "Deadline misses", "Avg power"],
            rows=rows,
            title="Proposed RTM vs Linux ondemand (H.264 football decode, 25 fps)",
        )
    )

    proposed = results["proposed"]
    ondemand = results["ondemand"]
    saving = 100.0 * (ondemand.total_energy_j - proposed.total_energy_j) / ondemand.total_energy_j
    print(f"\nEnergy saving of the proposed RTM over ondemand: {saving:.1f}%")
    print(f"Exploration phase: {proposed.exploration_count} decision epochs")


if __name__ == "__main__":
    main()
