#!/usr/bin/env python3
"""Quickstart: run the proposed Q-learning governor on an H.264 decode.

This is the smallest end-to-end use of the library's public API:

1. declare the experiment as a campaign — the paper's H.264 football
   sequence under the proposed run-time manager, the Linux ondemand
   governor and the offline Oracle,
2. run it with a single executor call (swap ``backend="serial"`` for
   ``backend="process"`` to fan the runs out over your cores),
3. compare energy, performance and deadline behaviour.

The learning governor pays an exploration cost over the first ~100 frames,
so its advantage shows on sequences long enough to amortise it (the paper's
football clip is ~3000 frames).

Run with:  python examples/quickstart.py
"""

from repro import CampaignSpec, FactorySpec, run_campaign
from repro.analysis import format_table


def main() -> None:
    # The whole experiment is data: one application spec x three governors.
    campaign = CampaignSpec.from_grid(
        "quickstart",
        applications=[FactorySpec.of("h264-football", num_frames=1200)],
        governors={
            "ondemand": FactorySpec.of("ondemand"),
            "proposed": FactorySpec.of("proposed"),
            "oracle": FactorySpec.of("oracle"),
        },
    )
    results = run_campaign(campaign, backend="serial").results()
    oracle = results["oracle"]

    sample = results["proposed"]
    print(
        f"Workload: {sample.application_name}, {sample.num_frames} frames, "
        f"Tref = {sample.reference_time_s * 1e3:.1f} ms"
    )

    rows = []
    for name in ("ondemand", "proposed", "oracle"):
        result = results[name]
        rows.append(
            (
                name,
                f"{result.total_energy_j:.1f} J",
                f"{result.normalized_energy(oracle):.2f}",
                f"{result.normalized_performance:.2f}",
                f"{result.deadline_miss_ratio:.1%}",
                f"{result.average_power_w:.2f} W",
            )
        )
    print()
    print(
        format_table(
            headers=["Governor", "Energy", "Norm. energy", "Norm. perf", "Deadline misses", "Avg power"],
            rows=rows,
            title="Proposed RTM vs Linux ondemand (H.264 football decode, 25 fps)",
        )
    )

    proposed = results["proposed"]
    ondemand = results["ondemand"]
    saving = 100.0 * (ondemand.total_energy_j - proposed.total_energy_j) / ondemand.total_energy_j
    print(f"\nEnergy saving of the proposed RTM over ondemand: {saving:.1f}%")
    print(f"Exploration phase: {proposed.exploration_count} decision epochs")


if __name__ == "__main__":
    main()
