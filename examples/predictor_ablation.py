#!/usr/bin/env python3
"""Ablation: EWMA vs last-value vs NLMS adaptive-filter workload prediction.

The paper motivates EWMA prediction (eq. 1) against adaptive-filter
predictors, which it argues lag on dynamically changing workloads.  This
example measures all three predictors offline on the library's workload
models, and then sweeps the RTM over each EWMA smoothing factor γ — a
one-line campaign grid, since the RL governor factories accept the flat
config scalars as spec parameters — to show why the paper's experimentally
determined γ = 0.6 is a sensible choice.

Run with:  python examples/predictor_ablation.py
"""

from repro import CampaignSpec, FactorySpec, run_campaign
from repro import h264_football_application, mpeg4_application, fft_application
from repro.analysis import format_table
from repro.rtm import EWMAPredictor, LastValuePredictor, NLMSPredictor

GAMMAS = (0.2, 0.4, 0.6, 0.8, 1.0)


def offline_prediction_error(application, predictor) -> float:
    """Mean absolute relative prediction error of ``predictor`` on the app's critical path."""
    for frame in application:
        predictor.observe(frame.max_thread_cycles)
    return predictor.misprediction_stats().mean_percent


def main() -> None:
    workloads = {
        "mpeg4 (24 fps)": mpeg4_application(num_frames=400),
        "h264-football": h264_football_application(num_frames=400),
        "fft (32 fps)": fft_application(num_frames=400),
    }

    rows = []
    for name, application in workloads.items():
        ewma = offline_prediction_error(application, EWMAPredictor(gamma=0.6))
        last = offline_prediction_error(application, LastValuePredictor())
        nlms = offline_prediction_error(application, NLMSPredictor(order=4))
        rows.append((name, f"{ewma:.1f}%", f"{last:.1f}%", f"{nlms:.1f}%"))
    print(format_table(
        ["Workload", "EWMA (γ=0.6)", "Last value", "NLMS filter"],
        rows,
        title="Mean workload misprediction by predictor",
    ))
    print()

    # Sweep the EWMA smoothing factor inside the full RTM loop: the γ grid
    # is part of the governor spec, so the sweep is a single campaign.
    campaign = CampaignSpec.from_grid(
        "ewma-gamma-sweep",
        applications=[FactorySpec.of("mpeg4", num_frames=400)],
        governors={
            f"gamma={gamma:.1f}": FactorySpec.of("proposed", ewma_gamma=gamma)
            for gamma in GAMMAS
        },
    )
    results = run_campaign(campaign).results()
    sweep_rows = [
        (
            f"γ = {gamma:.1f}",
            f"{results[f'gamma={gamma:.1f}'].total_energy_j:.1f} J",
            f"{results[f'gamma={gamma:.1f}'].normalized_performance:.2f}",
            f"{results[f'gamma={gamma:.1f}'].deadline_miss_ratio:.1%}",
        )
        for gamma in GAMMAS
    ]
    print(format_table(
        ["EWMA smoothing", "Energy", "Norm. perf", "Misses"],
        sweep_rows,
        title="RTM sensitivity to the EWMA smoothing factor (MPEG-4 decode)",
    ))


if __name__ == "__main__":
    main()
