#!/usr/bin/env python3
"""Compare every governor in the library across several benchmark workloads.

This example sweeps the full governor zoo (the proposed RTM, the stock Linux
policies, the learning baselines and the Oracle) over a video decode, an FFT
and PARSEC/SPLASH-2-like benchmarks, and prints a normalised-energy /
normalised-performance matrix — a broader version of the paper's Table I.

Run with:  python examples/governor_comparison.py
"""

from repro import (
    build_a15_cluster,
    fft_application,
    h264_football_application,
    parsec_application,
    splash2_application,
)
from repro.analysis import format_table
from repro.governors import (
    ConservativeGovernor,
    MultiCoreDVFSGovernor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    ShenRLGovernor,
)
from repro.rtm import MultiCoreRLGovernor
from repro.sim import ExperimentRunner

GOVERNORS = {
    "performance": PerformanceGovernor,
    "powersave": PowersaveGovernor,
    "ondemand": OndemandGovernor,
    "conservative": ConservativeGovernor,
    "multicore-dvfs [20]": MultiCoreDVFSGovernor,
    "shen-rl (UPD) [21]": ShenRLGovernor,
    "proposed RTM": MultiCoreRLGovernor,
}

WORKLOADS = {
    "h264-football (25 fps)": lambda: h264_football_application(num_frames=500),
    "fft (32 fps)": lambda: fft_application(num_frames=500),
    "parsec-bodytrack": lambda: parsec_application("bodytrack", num_frames=500),
    "splash2-barnes": lambda: splash2_application("barnes", num_frames=500),
}


def main() -> None:
    runner = ExperimentRunner(cluster=build_a15_cluster())
    for workload_name, build in WORKLOADS.items():
        application = build()
        results = runner.run_with_oracle(application, GOVERNORS)
        oracle = results["oracle"]
        rows = []
        for governor_name in GOVERNORS:
            result = results[governor_name]
            rows.append(
                (
                    governor_name,
                    f"{result.normalized_energy(oracle):.2f}",
                    f"{result.normalized_performance:.2f}",
                    f"{result.deadline_miss_ratio:.1%}",
                )
            )
        print(
            format_table(
                headers=["Governor", "Norm. energy", "Norm. perf", "Misses"],
                rows=rows,
                title=f"Workload: {workload_name} "
                f"(CV = {application.workload_variability():.2f})",
            )
        )
        print()


if __name__ == "__main__":
    main()
