#!/usr/bin/env python3
"""Compare every governor in the library across several benchmark workloads.

This example declares one campaign sweeping the full governor zoo (the
proposed RTM, the stock Linux policies, the learning baselines and the
Oracle) over a video decode, an FFT and PARSEC/SPLASH-2-like benchmarks —
a broader version of the paper's Table I, 32 scenarios in total — and runs
it on the process-pool backend so the sweep saturates the machine's cores.
The parallel run is bit-identical to a serial one; pass ``--serial`` to
check for yourself.

Run with:  python examples/governor_comparison.py [--serial]
"""

import sys

from repro import CampaignSpec, FactorySpec, run_campaign
from repro.analysis import format_table
from repro.sim.comparison import compare_to_oracle

GOVERNORS = {
    "performance": FactorySpec.of("performance"),
    "powersave": FactorySpec.of("powersave"),
    "ondemand": FactorySpec.of("ondemand"),
    "conservative": FactorySpec.of("conservative"),
    "multicore-dvfs [20]": FactorySpec.of("multicore-dvfs"),
    "shen-rl (UPD) [21]": FactorySpec.of("shen-upd"),
    "proposed RTM": FactorySpec.of("proposed"),
    "oracle": FactorySpec.of("oracle"),
}

WORKLOADS = {
    "h264-football (25 fps)": FactorySpec.of("h264-football", num_frames=500),
    "fft (32 fps)": FactorySpec.of("fft", num_frames=500),
    "parsec-bodytrack": FactorySpec.of("parsec", benchmark="bodytrack", num_frames=500),
    "splash2-barnes": FactorySpec.of("splash2", benchmark="barnes", num_frames=500),
}


def main() -> None:
    backend = "serial" if "--serial" in sys.argv[1:] else "process"
    campaign = CampaignSpec.from_grid(
        "governor-comparison", applications=WORKLOADS, governors=GOVERNORS
    )
    print(f"Running {len(campaign)} scenarios on the {backend!r} backend...")
    store = run_campaign(campaign, backend=backend)

    for workload_name in WORKLOADS:
        outcomes = store.select(application_key=workload_name)
        results = {o.scenario.governor_key: o.result for o in outcomes}
        rows = [
            (
                row.methodology,
                f"{row.normalized_energy:.2f}",
                f"{row.normalized_performance:.2f}",
                f"{row.deadline_miss_ratio:.1%}",
            )
            for row in compare_to_oracle(results)
        ]
        print(
            format_table(
                headers=["Governor", "Norm. energy", "Norm. perf", "Misses"],
                rows=rows,
                title=f"Workload: {workload_name}",
            )
        )
        print()


if __name__ == "__main__":
    main()
