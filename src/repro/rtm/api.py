"""Application-facing API of the cross-layer framework.

In the paper's cross-layer view (Fig. 1) the application layer announces its
performance requirements to the run-time layer through an API, and the RTM
in the OS uses those requirements when controlling the hardware knobs.  This
module is that API surface: applications register performance targets
(frames per second or an explicit per-frame deadline), may update them as
their needs change, and the RTM queries the currently active target at each
decision epoch.

It also supports the paper's stated future-work scenario — multiple
concurrently executing applications — by tracking one target per registered
application and exposing the *most demanding* requirement as the effective
target the governor must satisfy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.workload.application import PerformanceRequirement


@dataclass(frozen=True)
class PerformanceTarget:
    """A registered application performance target.

    Attributes
    ----------
    application_name:
        Name of the registering application.
    requirement:
        The declared frames-per-second / reference-time requirement.
    priority:
        Relative importance; among equally demanding targets the higher
        priority wins ties in reporting.
    """

    application_name: str
    requirement: PerformanceRequirement
    priority: int = 0

    @property
    def tref_s(self) -> float:
        """Per-frame reference time of this target."""
        return self.requirement.tref_s


class RuntimeManagerAPI:
    """Registry of application performance targets used by the RTM."""

    def __init__(self) -> None:
        self._targets: Dict[str, PerformanceTarget] = {}
        self._history: List[PerformanceTarget] = []

    # -- registration -------------------------------------------------------------
    def register(
        self,
        application_name: str,
        frames_per_second: float,
        reference_time_s: Optional[float] = None,
        priority: int = 0,
    ) -> PerformanceTarget:
        """Register (or replace) an application's performance target."""
        if not application_name:
            raise ConfigurationError("application_name must be non-empty")
        target = PerformanceTarget(
            application_name=application_name,
            requirement=PerformanceRequirement(
                frames_per_second=frames_per_second,
                reference_time_s=reference_time_s,
            ),
            priority=priority,
        )
        self._targets[application_name] = target
        self._history.append(target)
        return target

    def unregister(self, application_name: str) -> None:
        """Remove an application's target (no error if it was never registered)."""
        self._targets.pop(application_name, None)

    # -- queries -----------------------------------------------------------------------
    @property
    def targets(self) -> List[PerformanceTarget]:
        """All currently registered targets."""
        return list(self._targets.values())

    @property
    def num_applications(self) -> int:
        """Number of applications with an active target."""
        return len(self._targets)

    def target_for(self, application_name: str) -> PerformanceTarget:
        """The target registered by ``application_name``.

        Raises
        ------
        ConfigurationError
            If the application never registered a target.
        """
        try:
            return self._targets[application_name]
        except KeyError as exc:
            raise ConfigurationError(
                f"application {application_name!r} has not registered a performance target"
            ) from exc

    def effective_requirement(self) -> PerformanceRequirement:
        """The requirement the RTM must satisfy right now.

        With several concurrent applications the tightest (smallest)
        reference time wins, because meeting it also meets every looser
        requirement on a shared V-F domain.

        Raises
        ------
        ConfigurationError
            If no application has registered a target.
        """
        if not self._targets:
            raise ConfigurationError("no application has registered a performance target")
        tightest = min(self._targets.values(), key=lambda t: (t.tref_s, -t.priority))
        return tightest.requirement

    @property
    def registration_history(self) -> List[PerformanceTarget]:
        """Every registration ever made, in order (for audit/diagnostics)."""
        return list(self._history)


#: Campaign-layer names re-exported here so application code that programs
#: against the RTM API surface can also declare and run scenario sweeps.
#: Resolved lazily (PEP 562) because :mod:`repro.campaign.registry` imports
#: the RTM governors, which would otherwise be a circular import.
_CAMPAIGN_EXPORTS = (
    "CampaignSpec",
    "ScenarioSpec",
    "FactorySpec",
    "CampaignResult",
    "ScenarioOutcome",
    "CampaignExecutor",
    "run_campaign",
    "register_application",
    "register_governor",
    "register_cluster",
    "register_probe",
)

__all__ = ["PerformanceTarget", "RuntimeManagerAPI", *_CAMPAIGN_EXPORTS]


def __getattr__(name: str):
    if name in _CAMPAIGN_EXPORTS:
        import repro.campaign as campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
