"""Run-time management (RTM): the paper's primary contribution.

This subpackage implements the Q-learning run-time manager of the paper and
all of its building blocks:

* :mod:`repro.rtm.prediction` — EWMA workload prediction (eq. 1) plus
  baseline predictors;
* :mod:`repro.rtm.state` — discretisation of workload and slack into the
  Q-table's state space (N levels each);
* :mod:`repro.rtm.qtable` — the Q-table itself;
* :mod:`repro.rtm.rewards` — the slack-ratio (eq. 5) and reward (eq. 4)
  computations;
* :mod:`repro.rtm.exploration` — EPD (eq. 2) and UPD action selection and
  the ε-decay schedule (eq. 6);
* :mod:`repro.rtm.qlearning` — the Q-learning agent with the Bellman
  update (eq. 3);
* :mod:`repro.rtm.governor` — the governor interface shared with the
  baseline governors in :mod:`repro.governors`;
* :mod:`repro.rtm.rl_governor` — the proposed RTM as a DVFS governor;
* :mod:`repro.rtm.multicore` — the many-core formulation (eq. 7): shared
  Q-table with round-robin per-core updates;
* :mod:`repro.rtm.overhead` — learning/adaptation overhead accounting
  (T_OVH) and convergence measurement;
* :mod:`repro.rtm.api` — the application-facing performance-requirement
  API of the cross-layer framework.
"""

from repro.rtm.governor import (
    Governor,
    PlatformInfo,
    EpochObservation,
    FrameHint,
)
from repro.rtm.prediction import (
    WorkloadPredictor,
    EWMAPredictor,
    LastValuePredictor,
    NLMSPredictor,
    PredictionRecord,
    MispredictionStats,
)
from repro.rtm.state import StateSpace, Discretizer, WorkloadNormalisation
from repro.rtm.qtable import QTable
from repro.rtm.rewards import RewardParameters, SlackTracker, compute_reward
from repro.rtm.exploration import (
    ActionSelectionPolicy,
    ExponentialPolicy,
    UniformPolicy,
    EpsilonSchedule,
)
from repro.rtm.qlearning import QLearningAgent, QLearningParameters
from repro.rtm.rl_governor import RLGovernor, RLGovernorConfig
from repro.rtm.multicore import MultiCoreRLGovernor
from repro.rtm.overhead import OverheadModel, ConvergenceDetector
from repro.rtm.api import RuntimeManagerAPI, PerformanceTarget

__all__ = [
    "Governor",
    "PlatformInfo",
    "EpochObservation",
    "FrameHint",
    "WorkloadPredictor",
    "EWMAPredictor",
    "LastValuePredictor",
    "NLMSPredictor",
    "PredictionRecord",
    "MispredictionStats",
    "StateSpace",
    "Discretizer",
    "WorkloadNormalisation",
    "QTable",
    "RewardParameters",
    "SlackTracker",
    "compute_reward",
    "ActionSelectionPolicy",
    "ExponentialPolicy",
    "UniformPolicy",
    "EpsilonSchedule",
    "QLearningAgent",
    "QLearningParameters",
    "RLGovernor",
    "RLGovernorConfig",
    "MultiCoreRLGovernor",
    "OverheadModel",
    "ConvergenceDetector",
    "RuntimeManagerAPI",
    "PerformanceTarget",
]
