"""Q-table: the look-up table at the heart of the paper's RTM.

The table has one row per discrete system state (workload level x slack
level) and one column per V-F action.  Its size |S| x |A| is deliberately
kept small (the paper discretises into N = 5 levels) because it determines
the learning overhead; the many-core formulation shares a single table
between all cores for the same reason.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.errors import ConfigurationError, StateSpaceError

PathLike = Union[str, Path]


class QTable:
    """A dense table of Q-values over (state, action) pairs."""

    def __init__(self, num_states: int, num_actions: int, initial_value: float = 0.0) -> None:
        if num_states < 1 or num_actions < 1:
            raise ConfigurationError("QTable requires at least one state and one action")
        self._num_states = num_states
        self._num_actions = num_actions
        self._values: List[List[float]] = [
            [initial_value] * num_actions for _ in range(num_states)
        ]
        self._visit_counts: List[List[int]] = [
            [0] * num_actions for _ in range(num_states)
        ]
        # Memoised highest-tie argmax per row (-1 = unknown).  best_action()
        # runs several times per decision epoch; a row's greedy action only
        # changes when the row is written, so writers invalidate (or, when
        # they can derive it, refresh) the entry.
        self._best_action_cache: List[int] = [-1] * num_states

    # -- size ---------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Number of rows (discrete system states)."""
        return self._num_states

    @property
    def num_actions(self) -> int:
        """Number of columns (V-F actions)."""
        return self._num_actions

    @property
    def size(self) -> int:
        """Total number of state-action pairs |S| x |A|."""
        return self._num_states * self._num_actions

    # -- access ----------------------------------------------------------------------
    def _check(self, state: int, action: Optional[int] = None) -> None:
        if not 0 <= state < self._num_states:
            raise StateSpaceError(f"state {state} out of range 0..{self._num_states - 1}")
        if action is not None and not 0 <= action < self._num_actions:
            raise StateSpaceError(f"action {action} out of range 0..{self._num_actions - 1}")

    def get(self, state: int, action: int) -> float:
        """Q-value of (state, action)."""
        self._check(state, action)
        return self._values[state][action]

    def set(self, state: int, action: int, value: float) -> None:
        """Overwrite the Q-value of (state, action)."""
        self._check(state, action)
        self._values[state][action] = value
        self._best_action_cache[state] = -1

    def row(self, state: int) -> Tuple[float, ...]:
        """All action values for ``state``."""
        self._check(state)
        return tuple(self._values[state])

    def max_value(self, state: int) -> float:
        """Largest Q-value in ``state``'s row (the Bellman bootstrap term)."""
        self._check(state)
        return max(self._values[state])

    def best_action(self, state: int, tie_break: str = "highest") -> int:
        """Index of the best action for ``state``.

        Ties are broken towards the highest-index (fastest) action by
        default, which is the performance-safe choice before any learning
        has happened; ``tie_break="lowest"`` picks the slowest instead.

        Runs several times per decision epoch in the RTM's hot loop, so the
        scan is allocation-free (no candidate list is built) and the
        default-tie-break result is memoised until the row is next written.
        """
        self._check(state)
        row = self._values[state]
        if tie_break == "lowest":
            return row.index(max(row))
        cached = self._best_action_cache[state]
        if cached >= 0:
            return cached
        best = max(row)
        for action in range(len(row) - 1, -1, -1):
            if row[action] == best:
                self._best_action_cache[state] = action
                return action
        return 0  # pragma: no cover - max(row) always appears in row

    # -- learning bookkeeping ------------------------------------------------------------
    def record_visit(self, state: int, action: int) -> None:
        """Record that (state, action) was selected (for coverage statistics)."""
        self._check(state, action)
        self._visit_counts[state][action] += 1

    def visit_count(self, state: int, action: int) -> int:
        """How many times (state, action) has been selected."""
        self._check(state, action)
        return self._visit_counts[state][action]

    def visited_state_count(self) -> int:
        """Number of states that have been visited at least once."""
        return sum(1 for counts in self._visit_counts if any(c > 0 for c in counts))

    def visited_pair_count(self) -> int:
        """Number of state-action pairs visited at least once."""
        return sum(1 for counts in self._visit_counts for c in counts if c > 0)

    def update_towards(self, state: int, action: int, target: float, learning_rate: float) -> float:
        """Move Q(state, action) towards ``target`` by ``learning_rate`` and return the new value.

        This implements the incremental form of the paper's eq. (3):
        ``Q <- (1 - alpha) * Q + alpha * target``.
        """
        if not 0.0 < learning_rate <= 1.0:
            raise ConfigurationError(f"learning rate must lie in (0, 1], got {learning_rate}")
        self._check(state, action)
        row = self._values[state]
        new = (1.0 - learning_rate) * row[action] + learning_rate * target
        row[action] = new
        self._best_action_cache[state] = -1
        return new

    # -- greedy policy as a whole ------------------------------------------------------------
    def greedy_policy(self) -> Tuple[int, ...]:
        """The greedy action for every state."""
        return tuple(self.best_action(s) for s in range(self._num_states))

    # -- serialisation --------------------------------------------------------------------------
    def to_json(self, path: PathLike) -> None:
        """Persist the table (values and visit counts) to a JSON file."""
        document = {
            "num_states": self._num_states,
            "num_actions": self._num_actions,
            "values": self._values,
            "visit_counts": self._visit_counts,
        }
        Path(path).write_text(json.dumps(document))

    @classmethod
    def from_json(cls, path: PathLike) -> "QTable":
        """Load a table previously written by :meth:`to_json`."""
        document = json.loads(Path(path).read_text())
        table = cls(document["num_states"], document["num_actions"])
        values = document["values"]
        counts = document["visit_counts"]
        if len(values) != table.num_states or any(
            len(row) != table.num_actions for row in values
        ):
            raise ConfigurationError("Q-table file is inconsistent with its declared shape")
        table._values = [list(map(float, row)) for row in values]
        table._visit_counts = [list(map(int, row)) for row in counts]
        return table

    def copy(self) -> "QTable":
        """Deep copy of the table."""
        clone = QTable(self._num_states, self._num_actions)
        clone._values = [list(row) for row in self._values]
        clone._visit_counts = [list(row) for row in self._visit_counts]
        return clone

    def __repr__(self) -> str:
        return f"QTable({self._num_states} states x {self._num_actions} actions)"
