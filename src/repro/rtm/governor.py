"""Governor interface shared by the proposed RTM and all baseline governors.

A governor is the decision-making component of the paper's run-time layer:
at every decision epoch it is shown what happened during the previous epoch
(cycle counts from the PMU, execution time, energy, the operating point in
force) and must choose the operating-point index for the next epoch.

The same interface is implemented by the paper's proposed RL governor
(:class:`repro.rtm.rl_governor.RLGovernor` and
:class:`repro.rtm.multicore.MultiCoreRLGovernor`) and by every baseline in
:mod:`repro.governors`, so the simulation engine and the experiments treat
them interchangeably.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro._compat import SLOTS
from repro.errors import GovernorError
from repro.platform.vf_table import VFTable
from repro.workload.application import Application, PerformanceRequirement


@dataclass(frozen=True)
class PlatformInfo:
    """Static description of the platform a governor controls.

    Attributes
    ----------
    num_cores:
        Number of cores in the controlled cluster.
    vf_table:
        The cluster's operating-point table (the action space).
    """

    num_cores: int
    vf_table: VFTable

    @property
    def num_actions(self) -> int:
        """Number of selectable operating points."""
        return len(self.vf_table)

    def capacity_cycles(self, reference_time_s: float) -> float:
        """Per-core cycle capacity within ``reference_time_s`` at the fastest point."""
        return self.vf_table.max_point.frequency_hz * reference_time_s


@dataclass(frozen=True, **SLOTS)
class EpochObservation:
    """Everything a governor may observe about the epoch that just finished.

    An observation is valid only for the duration of the ``decide()`` call
    it is passed to: the engines' hot loops reuse one instance and rebuild
    its fields in place between epochs, so a governor must extract the
    values it needs inside ``decide()`` rather than retain the object.

    Attributes
    ----------
    epoch_index:
        Zero-based index of the finished decision epoch (= frame index).
    cycles_per_core:
        Busy cycles executed by each core during the epoch (PMU deltas).
    busy_time_s:
        Execution time of the frame's critical path (the quantity compared
        against ``Tref`` for the performance requirement).
    interval_s:
        Full duration of the epoch including idle padding and DVFS stalls.
    reference_time_s:
        The per-frame performance requirement ``Tref``.
    operating_index:
        Operating-point index that was in force during the epoch.
    energy_j:
        Energy consumed during the epoch (as the governor would compute from
        the power sensor and execution time).
    measured_power_w:
        Power reported by the on-board sensor for the epoch.
    overhead_time_s:
        Governor overhead charged to this epoch (sensor access, processing,
        DVFS transition) — the paper's ``T_OVH`` contribution.
    throttle_events:
        Number of thermal-model steps during the epoch that ended at or
        above the throttle threshold (always 0 with the thermal model
        disabled).  Before this field, a throttling decision taken
        mid-epoch was invisible to the observation and a thermally-aware
        governor could not react to it.
    """

    epoch_index: int
    cycles_per_core: Tuple[float, ...]
    busy_time_s: float
    interval_s: float
    reference_time_s: float
    operating_index: int
    energy_j: float
    measured_power_w: float
    overhead_time_s: float = 0.0
    throttle_events: int = 0

    @property
    def max_cycles(self) -> float:
        """Largest per-core busy cycle count (the epoch's critical-path workload)."""
        return max(self.cycles_per_core)

    @property
    def total_cycles(self) -> float:
        """Total busy cycles summed over all cores."""
        return sum(self.cycles_per_core)

    @property
    def instantaneous_slack(self) -> float:
        """Per-epoch slack ratio ``(Tref - T_i) / Tref`` (positive = finished early)."""
        if self.reference_time_s <= 0:
            return 0.0
        return (self.reference_time_s - self.busy_time_s) / self.reference_time_s

    @property
    def met_deadline(self) -> bool:
        """True when the frame finished within its reference time."""
        return self.busy_time_s <= self.reference_time_s + 1e-12


@dataclass(frozen=True, **SLOTS)
class FrameHint:
    """Perfect knowledge of the upcoming frame.

    Only the Oracle governor uses this; online governors must ignore it.
    The simulation engine always passes it so that the engine code does not
    need to special-case the Oracle.  Like :class:`EpochObservation`, a hint
    is valid only inside the ``decide()`` call it is passed to — the engines
    reuse one instance and rebuild its fields in place between frames.
    """

    cycles_per_core: Tuple[float, ...]
    deadline_s: float

    @property
    def max_cycles(self) -> float:
        """Largest per-core cycle demand of the upcoming frame."""
        return max(self.cycles_per_core)


class Governor(ABC):
    """Abstract DVFS governor driven once per decision epoch."""

    #: Human-readable governor name used in reports and result tables.
    name: str = "governor"

    #: Per-epoch decision-processing time charged as overhead (seconds).
    #: Simple heuristic governors are essentially free; learning governors
    #: override this with their :class:`~repro.rtm.overhead.OverheadModel`.
    processing_overhead_s: float = 0.0

    def __init__(self) -> None:
        self._platform: Optional[PlatformInfo] = None
        self._requirement: Optional[PerformanceRequirement] = None

    # -- lifecycle -------------------------------------------------------------
    def setup(self, platform: PlatformInfo, requirement: PerformanceRequirement) -> None:
        """Bind the governor to a platform and an application requirement.

        Subclasses that override this must call ``super().setup(...)``.
        """
        self._platform = platform
        self._requirement = requirement

    @property
    def platform(self) -> PlatformInfo:
        """The platform this governor controls (raises if :meth:`setup` not called)."""
        if self._platform is None:
            raise GovernorError(f"governor {self.name!r} used before setup()")
        return self._platform

    @property
    def requirement(self) -> PerformanceRequirement:
        """The application requirement (raises if :meth:`setup` not called)."""
        if self._requirement is None:
            raise GovernorError(f"governor {self.name!r} used before setup()")
        return self._requirement

    # -- per-epoch decision -------------------------------------------------------
    @abstractmethod
    def decide(
        self,
        previous: Optional[EpochObservation],
        hint: Optional[FrameHint] = None,
    ) -> int:
        """Choose the operating-point index for the next epoch.

        Parameters
        ----------
        previous:
            Observation of the epoch that just finished, or ``None`` at the
            very first epoch.
        hint:
            Perfect knowledge of the upcoming frame; only the Oracle may use
            it.
        """

    # -- fast-path capability probe -------------------------------------------------
    def static_schedule(self, application: Application) -> Optional[List[int]]:
        """Per-frame operating-point indices, when they are knowable up front.

        A governor whose decisions do not depend on run-time observations
        (the pinned Linux policies, or the Oracle with its perfect per-frame
        knowledge) can compute its entire schedule from the application
        alone.  Returning that schedule lets the simulation engine replace
        the frame-by-frame closed loop with the NumPy-vectorised trace
        engine in :mod:`repro.sim.fastpath`.

        Closed-loop governors must return ``None`` (the default), which
        keeps them on the scalar engine.  Called after :meth:`setup`.
        """
        return None

    # -- optional reporting hooks -------------------------------------------------
    @property
    def exploration_count(self) -> int:
        """Number of explorative decisions taken so far (0 for non-learning governors)."""
        return 0

    @property
    def exploration_frozen(self) -> bool:
        """True once :attr:`exploration_count` can no longer change.

        Engines poll ``exploration_count`` after every ``decide()`` to flag
        explorative epochs in the per-frame records; once this property
        returns True they stop polling for the rest of the run, which takes
        the property-chain read out of the hot loop.  Frozen-ness must be
        monotonic within a run.

        The base implementation is safe by construction: it returns True
        exactly when the governor still uses the base
        :attr:`exploration_count` (pinned at 0), so a learning governor that
        overrides the count without overriding this probe is simply polled
        every frame.  Learning governors may override it to return True once
        their exploration phase has ended for good (see
        :class:`~repro.rtm.rl_governor.RLGovernor`).
        """
        return type(self).exploration_count is Governor.exploration_count

    @property
    def converged_epoch(self) -> Optional[int]:
        """Epoch at which learning converged, if the governor learns and has converged."""
        return None

    def decision_state(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot of the governor's decision-relevant state.

        The parity harness (:mod:`repro.testing.parity`) captures this after
        a run and diffs it across engine backends: two backends that fed the
        governor bit-identical observations must leave it in bit-identical
        state.  The base snapshot covers the reporting hooks every governor
        has; governors with internal decision state (learnt Q-tables,
        threshold hold counters) override this, call ``super()`` first, and
        extend the dict — values must stay JSON scalars / lists / dicts and
        must be deterministic for a deterministic run.
        """
        return {
            "governor": self.name,
            "exploration_count": self.exploration_count,
            "converged_epoch": self.converged_epoch,
        }

    def describe(self) -> str:
        """One-line description used in reports."""
        return self.name
