"""Workload predictors.

The paper predicts the next epoch's CPU cycle count with an Exponential
Weighted Moving Average (eq. 1):

    CC_{i+1} = gamma * actualCC_i + (1 - gamma) * predCC_i

and motivates this choice against adaptive-filter predictors, which lag on
dynamic workloads.  This module provides the EWMA predictor, a last-value
predictor and an NLMS adaptive filter (the baseline the paper argues
against), plus the misprediction statistics reported in Fig. 3.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro._compat import SLOTS
from repro.errors import ConfigurationError


@dataclass(frozen=True, **SLOTS)
class PredictionRecord:
    """One predicted/actual pair, kept for misprediction analysis."""

    epoch_index: int
    predicted: float
    actual: float

    @property
    def error(self) -> float:
        """Signed error (actual minus predicted); positive = under-prediction."""
        return self.actual - self.predicted

    @property
    def absolute_relative_error(self) -> float:
        """``|actual - predicted| / actual`` (0 when actual is 0)."""
        if self.actual == 0:
            return 0.0
        return abs(self.error) / abs(self.actual)

    @property
    def is_underprediction(self) -> bool:
        """True when the actual workload exceeded the prediction (deadline risk)."""
        return self.actual > self.predicted


@dataclass(frozen=True)
class MispredictionStats:
    """Aggregate misprediction statistics over a window of epochs."""

    num_epochs: int
    mean_absolute_relative_error: float
    max_absolute_relative_error: float
    underprediction_fraction: float

    @property
    def mean_percent(self) -> float:
        """Mean absolute relative error as a percentage (the paper's ~8% / ~3%)."""
        return 100.0 * self.mean_absolute_relative_error


def summarize_mispredictions(records: Sequence[PredictionRecord]) -> MispredictionStats:
    """Aggregate a sequence of prediction records into misprediction statistics."""
    if not records:
        return MispredictionStats(
            num_epochs=0,
            mean_absolute_relative_error=0.0,
            max_absolute_relative_error=0.0,
            underprediction_fraction=0.0,
        )
    errors = [r.absolute_relative_error for r in records]
    under = sum(1 for r in records if r.is_underprediction)
    return MispredictionStats(
        num_epochs=len(records),
        mean_absolute_relative_error=sum(errors) / len(errors),
        max_absolute_relative_error=max(errors),
        underprediction_fraction=under / len(records),
    )


class WorkloadPredictor(ABC):
    """Predicts the next epoch's workload from the history of observed workloads."""

    def __init__(self) -> None:
        self._records: List[PredictionRecord] = []
        self._last_prediction: Optional[float] = None
        self._epoch = 0

    @abstractmethod
    def _predict_next(self, actual: float) -> float:
        """Update internal state with ``actual`` and return the next prediction."""

    def observe(self, actual: float) -> float:
        """Record the observed workload for the finished epoch and predict the next.

        Returns the prediction for the *next* epoch.  The predicted/actual
        pair for the finished epoch is recorded for misprediction analysis.
        """
        if actual < 0:
            raise ValueError(f"observed workload must be non-negative, got {actual}")
        if self._last_prediction is not None:
            self._records.append(
                PredictionRecord(
                    epoch_index=self._epoch,
                    predicted=self._last_prediction,
                    actual=actual,
                )
            )
        prediction = self._predict_next(actual)
        self._last_prediction = prediction
        self._epoch += 1
        return prediction

    @property
    def last_prediction(self) -> Optional[float]:
        """The most recent prediction (``None`` before the first observation)."""
        return self._last_prediction

    @property
    def records(self) -> List[PredictionRecord]:
        """All predicted/actual pairs recorded so far."""
        return list(self._records)

    def misprediction_stats(
        self, first_epoch: int = 0, last_epoch: Optional[int] = None
    ) -> MispredictionStats:
        """Misprediction statistics restricted to ``[first_epoch, last_epoch)``."""
        window = [
            r
            for r in self._records
            if r.epoch_index >= first_epoch
            and (last_epoch is None or r.epoch_index < last_epoch)
        ]
        return summarize_mispredictions(window)

    def reset(self) -> None:
        """Forget all history."""
        self._records.clear()
        self._last_prediction = None
        self._epoch = 0


class EWMAPredictor(WorkloadPredictor):
    """Exponential weighted moving average predictor — the paper's eq. (1).

    Parameters
    ----------
    gamma:
        Smoothing factor; the paper determines 0.6 experimentally for the
        MPEG-4 analysis of Fig. 3.
    """

    def __init__(self, gamma: float = 0.6) -> None:
        super().__init__()
        if not 0.0 < gamma <= 1.0:
            raise ConfigurationError(f"EWMA gamma must lie in (0, 1], got {gamma}")
        self.gamma = gamma
        self._one_minus_gamma = 1.0 - gamma
        self._state: Optional[float] = None

    def observe(self, actual: float) -> float:
        """Specialised :meth:`WorkloadPredictor.observe` for the per-epoch hot loop.

        Identical bookkeeping and arithmetic to the generic implementation
        (record the predicted/actual pair, fold ``actual`` into the EWMA
        state, return the next prediction) fused into one call.
        """
        if actual < 0:
            raise ValueError(f"observed workload must be non-negative, got {actual}")
        last = self._last_prediction
        if last is not None:
            self._records.append(
                PredictionRecord(epoch_index=self._epoch, predicted=last, actual=actual)
            )
        state = self._state
        if state is None:
            state = actual
        else:
            state = self.gamma * actual + self._one_minus_gamma * state
        self._state = state
        self._last_prediction = state
        self._epoch += 1
        return state

    def _predict_next(self, actual: float) -> float:
        if self._state is None:
            self._state = actual
        else:
            self._state = self.gamma * actual + (1.0 - self.gamma) * self._state
        return self._state

    def reset(self) -> None:
        super().reset()
        self._state = None


class LastValuePredictor(WorkloadPredictor):
    """Predicts that the next epoch repeats the last observed workload."""

    def _predict_next(self, actual: float) -> float:
        return actual


class NLMSPredictor(WorkloadPredictor):
    """Normalised least-mean-squares adaptive-filter predictor.

    This is the class of predictor the paper argues *against* (Sinha &
    Chandrakasan's adaptive filtering of workload traces): a linear filter
    over the last ``order`` observations whose taps adapt by the NLMS rule.
    It is included as the ablation baseline for the prediction study.

    Parameters
    ----------
    order:
        Number of past observations in the filter window.
    step_size:
        NLMS adaptation step (mu); values in (0, 2) are stable.
    """

    def __init__(self, order: int = 4, step_size: float = 0.5) -> None:
        super().__init__()
        if order < 1:
            raise ConfigurationError(f"filter order must be >= 1, got {order}")
        if not 0.0 < step_size < 2.0:
            raise ConfigurationError(f"step_size must lie in (0, 2), got {step_size}")
        self.order = order
        self.step_size = step_size
        self._weights = [1.0 / order] * order
        self._history: List[float] = []

    def _predict_next(self, actual: float) -> float:
        # Adapt the weights using the error on the prediction we just made
        # (if we had a full window), then slide the window and predict.
        if len(self._history) == self.order and self._last_prediction is not None:
            error = actual - self._last_prediction
            norm = sum(x * x for x in self._history) + 1e-12
            self._weights = [
                w + self.step_size * error * x / norm
                for w, x in zip(self._weights, self._history)
            ]
        self._history.append(actual)
        if len(self._history) > self.order:
            self._history.pop(0)
        if len(self._history) < self.order:
            return actual
        return sum(w * x for w, x in zip(self._weights, self._history))

    def reset(self) -> None:
        super().reset()
        self._weights = [1.0 / self.order] * self.order
        self._history.clear()
