"""Reward and slack-ratio computation (the paper's eqs. 4 and 5).

The RTM's pay-off for an action is a linear function of the *average slack
ratio* L and its change since the previous decision epoch:

    R_i = a * L_i + b * dL          (eq. 4)

where the average slack ratio accumulates the per-epoch slacks since the
application declared its current reference time:

    L_i = 1 / (D * Tref) * sum_{t=0..i} (Tref - T_t - T_OVH)     (eq. 5)

A positive L means the application has been finishing its frames early
(over-performing, wasting energy head-room); a negative L means it has been
missing its budget.  Rewarding increases in L when L is negative and
penalising large positive L pushes the learnt policy towards "just fast
enough".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RewardParameters:
    """Constants of the reward function (the paper's predetermined ``a`` and ``b``).

    Attributes
    ----------
    slack_weight:
        The constant ``a`` scaling the slack-dependent term.
    delta_weight:
        The constant ``b`` multiplying the change in slack dL.
    miss_penalty_weight:
        Multiplier on negative slack (deadline misses); larger values make
        deadline violations dominate the pay-off, which is what steers the
        learnt policy away from too-slow operating points.
    overperformance_penalty:
        Penalty per unit of slack above ``target_slack`` — this is what makes
        running needlessly fast (energy-wasteful) unattractive, so the greedy
        policy settles on the *slowest* deadline-meeting action.
    target_slack:
        The slack level the RTM should converge to; slightly positive so that
        small mispredictions do not immediately cause deadline misses.
    """

    slack_weight: float = 1.0
    delta_weight: float = 0.3
    miss_penalty_weight: float = 3.0
    overperformance_penalty: float = 5.0
    target_slack: float = 0.08

    def __post_init__(self) -> None:
        if self.overperformance_penalty < 0:
            raise ConfigurationError("overperformance_penalty must be non-negative")
        if self.miss_penalty_weight < 0:
            raise ConfigurationError("miss_penalty_weight must be non-negative")


def compute_reward(
    average_slack: float,
    slack_delta: float,
    parameters: RewardParameters = RewardParameters(),
    instantaneous_slack: Optional[float] = None,
) -> float:
    """Compute the pay-off R_i for a decision epoch (eq. 4, shaped).

    The pay-off follows the paper's form ``R = a * f(L) + b * dL`` with a
    piecewise slack term ``f(L)``:

    * ``L < 0`` (deadline budget exceeded): strongly negative,
      ``-miss_penalty_weight * |L|`` — actions causing misses are penalised;
    * ``L >= 0`` (budget met): positive, peaking at ``target_slack`` and
      decreasing by ``overperformance_penalty`` per unit of excess slack —
      actions that merely meet the requirement beat actions that race ahead.

    When the epoch's own (instantaneous) slack is supplied and is negative —
    the frame itself missed its deadline even though the running average is
    still healthy — the miss penalty is applied to that deficit as well.
    This is the paper's observation that under-prediction "results in a
    deadline miss by the frames" which video decoders punish by dropping the
    frame: an action must not rely on accumulated slack to excuse a missed
    frame.

    The positive/negative sign of the pay-off is what the ε schedule
    (eq. 6) keys its decay on: epochs whose actions met the requirement are
    learning progress.
    """
    p = parameters
    if average_slack < 0.0:
        slack_term = -p.miss_penalty_weight * (-average_slack)
    else:
        excess = max(0.0, average_slack - p.target_slack)
        slack_term = p.slack_weight * (1.0 - p.overperformance_penalty * excess)
    reward = slack_term + p.delta_weight * slack_delta
    if instantaneous_slack is not None and instantaneous_slack < 0.0:
        reward -= p.miss_penalty_weight * (-instantaneous_slack)
    return reward


class SlackTracker:
    """Maintains the running average slack ratio L of eq. (5).

    The tracker is fed the per-epoch execution time ``T_i`` (critical-path
    time of the frame) and the overhead ``T_OVH`` charged to the epoch, and
    maintains both the instantaneous and the running-average slack ratios.

    Parameters
    ----------
    reference_time_s:
        The per-frame reference time ``Tref``.
    window:
        Number of most recent epochs the average runs over.  ``None``
        reproduces eq. (5) literally (average since the application start);
        a finite window keeps L responsive to the governor's recent actions,
        which is what gives the Q-learning update a usable per-action credit
        signal on long runs (see DESIGN.md, "deviations").
    """

    def __init__(self, reference_time_s: float, window: Optional[int] = None) -> None:
        if reference_time_s <= 0:
            raise ConfigurationError("reference_time_s must be positive")
        if window is not None and window < 1:
            raise ConfigurationError("window must be >= 1 when given")
        self.reference_time_s = reference_time_s
        self.window = window
        # Windowed mode keeps only the last `window` slacks (deque, so the
        # per-epoch average needs no slice allocation); cumulative mode
        # (window=None, eq. 5 literally) maintains a running left-to-right
        # sum, which is bit-identical to re-summing the full history while
        # avoiding the O(epochs) rescan every update.
        self._slacks_s: "deque[float]" = deque(maxlen=window)
        self._running_sum = 0.0
        self._epochs = 0
        self._history: List[float] = []
        self._last_average = 0.0

    # -- updates -------------------------------------------------------------------
    def update(self, execution_time_s: float, overhead_time_s: float = 0.0) -> float:
        """Add one epoch's observation and return the new average slack ratio L_i."""
        if execution_time_s < 0 or overhead_time_s < 0:
            raise ValueError("times must be non-negative")
        reference = self.reference_time_s
        slack = reference - execution_time_s - overhead_time_s
        slacks = self._slacks_s
        slacks.append(slack)
        epochs = self._epochs + 1
        self._epochs = epochs
        if self.window is None:
            self._running_sum += slack
            average = self._running_sum / (epochs * reference)
        else:
            average = sum(slacks) / (len(slacks) * reference)
        self._history.append(average)
        self._last_average = average
        return average

    # -- reads -----------------------------------------------------------------------
    @property
    def epochs(self) -> int:
        """Number of epochs observed since the last reset (the ``D`` of eq. 5)."""
        return self._epochs

    @property
    def last_instantaneous_slack(self) -> float:
        """Slack ratio of the most recent epoch alone (0 before any update)."""
        if not self._slacks_s:
            return 0.0
        return self._slacks_s[-1] / self.reference_time_s

    @property
    def average_slack(self) -> float:
        """The current average slack ratio L (0 before any update)."""
        return self._last_average

    @property
    def slack_delta(self) -> float:
        """Change in the average slack ratio over the last epoch (the dL of eq. 4)."""
        if len(self._history) < 2:
            return self._history[-1] if self._history else 0.0
        return self._history[-1] - self._history[-2]

    @property
    def history(self) -> List[float]:
        """Average slack ratio after each epoch (used for the Fig. 3 series)."""
        return list(self._history)

    def reset(self, reference_time_s: float = 0.0) -> None:
        """Clear the history; optionally change the reference time."""
        if reference_time_s > 0:
            self.reference_time_s = reference_time_s
        self._slacks_s.clear()
        self._running_sum = 0.0
        self._epochs = 0
        self._history.clear()
        self._last_average = 0.0
