"""Q-learning agent implementing the paper's learning rule (eq. 3).

The agent owns the Q-table, the exploration policy and the ε schedule, and
exposes exactly the two operations the RTM performs at each decision epoch:

* :meth:`QLearningAgent.update` — apply the Bellman optimality update for
  the previous state-action pair given the observed pay-off and the
  predicted next state;
* :meth:`QLearningAgent.select_action` — choose the action for the next
  epoch, either by exploiting the greedy policy or by sampling the
  exploration policy (EPD or UPD).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.rtm.exploration import (
    ActionSelectionPolicy,
    EpsilonSchedule,
    ExponentialPolicy,
)
from repro.rtm.qtable import QTable


@dataclass
class QLearningParameters:
    """Hyper-parameters of the Q-learning agent.

    Attributes
    ----------
    learning_rate:
        The alpha of eq. (3): how far each update moves the Q-value towards
        its target.
    discount:
        The gamma of eq. (3): weight of the bootstrapped next-state value.
    initial_epsilon / epsilon_alpha / minimum_epsilon:
        Parameters of the ε schedule (eq. 6).
    epsilon_decay_on_any_reward:
        If True the schedule decays every epoch (conventional behaviour,
        used by the UPD baseline); if False it decays only on positive
        pay-offs (the reward-coupled behaviour of the proposed approach).
    initial_q_value:
        Optimistic initial Q-value; zero by default.
    """

    learning_rate: float = 0.5
    discount: float = 0.4
    initial_epsilon: float = 0.9
    epsilon_alpha: float = 0.25
    minimum_epsilon: float = 0.02
    epsilon_decay_on_any_reward: bool = False
    initial_q_value: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.learning_rate <= 1.0:
            raise ConfigurationError("learning_rate must lie in (0, 1]")
        if not 0.0 <= self.discount < 1.0:
            raise ConfigurationError("discount must lie in [0, 1)")

    def make_schedule(self) -> EpsilonSchedule:
        """Build the ε schedule described by these parameters."""
        return EpsilonSchedule(
            initial_epsilon=self.initial_epsilon,
            alpha=self.epsilon_alpha,
            minimum_epsilon=self.minimum_epsilon,
            decay_on_any_reward=self.epsilon_decay_on_any_reward,
        )


class QLearningAgent:
    """Tabular Q-learning with pluggable exploration policy."""

    def __init__(
        self,
        num_states: int,
        num_actions: int,
        action_frequencies_hz: Sequence[float],
        parameters: Optional[QLearningParameters] = None,
        policy: Optional[ActionSelectionPolicy] = None,
        seed: int = 0,
        qtable: Optional[QTable] = None,
    ) -> None:
        if len(action_frequencies_hz) != num_actions:
            raise ConfigurationError(
                "action_frequencies_hz must contain one frequency per action"
            )
        self.parameters = parameters or QLearningParameters()
        self.policy = policy or ExponentialPolicy()
        self.qtable = qtable or QTable(
            num_states, num_actions, initial_value=self.parameters.initial_q_value
        )
        if self.qtable.num_states != num_states or self.qtable.num_actions != num_actions:
            raise ConfigurationError("provided Q-table does not match the state/action sizes")
        self.action_frequencies_hz = list(action_frequencies_hz)
        self.epsilon_schedule = self.parameters.make_schedule()
        self._rng = random.Random(seed)
        self._exploration_draws = 0
        self._update_count = 0
        self._selection_count = 0
        self._exploitation_start: Optional[int] = None
        self._last_update_changed_policy = False

    # -- statistics -----------------------------------------------------------------
    @property
    def exploration_draws(self) -> int:
        """Number of explorative (policy-sampled) action selections so far."""
        return self._exploration_draws

    @property
    def exploration_phase_length(self) -> int:
        """Number of decision epochs spent in the exploration phase.

        The exploration phase is the paper's learning period: the epochs
        before the ε schedule has decayed to its floor and the RTM switches
        to pure exploitation.  While the phase is still running this returns
        the number of epochs elapsed so far.
        """
        if self._exploitation_start is None:
            return self._selection_count
        return self._exploitation_start

    @property
    def update_count(self) -> int:
        """Number of Bellman updates applied so far."""
        return self._update_count

    @property
    def last_update_changed_policy(self) -> bool:
        """True if the most recent Bellman update changed its state's greedy action."""
        return self._last_update_changed_policy

    @property
    def epsilon(self) -> float:
        """Current exploration probability."""
        return self.epsilon_schedule.epsilon

    @property
    def is_exploiting(self) -> bool:
        """True once the ε schedule has fully decayed."""
        return self.epsilon_schedule.is_exploiting

    # -- learning -----------------------------------------------------------------------
    def update(
        self,
        state: int,
        action: int,
        reward: float,
        next_state: int,
        progress_reward: Optional[float] = None,
    ) -> float:
        """Apply the Bellman optimality update of eq. (3) and decay ε.

        The ε decay (eq. 6) is gated on the epoch having *confirmed* the
        learnt policy: the pay-off was positive and the action agreed (within
        one table step) with the state's greedy action — see
        :class:`~repro.rtm.exploration.EpsilonSchedule`.

        Parameters
        ----------
        reward:
            Pay-off used for the Bellman update (may include per-frame miss
            penalties).
        progress_reward:
            Pay-off used to gate the ε decay; defaults to ``reward``.  The
            RTM passes the average-slack pay-off here so that a single
            mispredicted frame does not stall the exploration schedule while
            still being punished in the Q-values.

        Returns the new Q-value of (state, action).
        """
        greedy_before = self.qtable.best_action(state)
        confirmed = abs(action - greedy_before) <= 1
        target = reward + self.parameters.discount * self.qtable.max_value(next_state)
        new_value = self.qtable.update_towards(
            state, action, target, self.parameters.learning_rate
        )
        self._last_update_changed_policy = self.qtable.best_action(state) != greedy_before
        self._update_count += 1
        gate_reward = reward if progress_reward is None else progress_reward
        self.epsilon_schedule.update(gate_reward, confirmed=confirmed)
        return new_value

    # -- action selection ------------------------------------------------------------------
    def select_action(self, state: int, slack: float) -> Tuple[int, bool]:
        """Choose the action for ``state`` given the current slack.

        Returns ``(action_index, explored)`` where ``explored`` is True when
        the action came from the exploration policy rather than the greedy
        Q-table lookup.
        """
        if self._exploitation_start is None and self.epsilon_schedule.is_exploiting:
            self._exploitation_start = self._selection_count
        self._selection_count += 1
        explore = self.epsilon_schedule.should_explore(self._rng)
        if explore:
            action = self.policy.sample(
                self.qtable.num_actions,
                self.action_frequencies_hz,
                slack,
                self._rng,
            )
            self._exploration_draws += 1
        else:
            action = self.qtable.best_action(state)
        self.qtable.record_visit(state, action)
        return action, explore

    def update_and_select(
        self,
        state: int,
        action: int,
        reward: float,
        next_state: int,
        slack: float,
        progress_reward: Optional[float] = None,
    ) -> Tuple[int, bool, bool]:
        """Fused :meth:`update` of (state, action) then :meth:`select_action` for ``next_state``.

        Returns ``(next_action, explored, exploiting)``.  Semantically
        identical to the two calls in sequence — the same IEEE operations
        in the same order, the same rng draws — but the RTM's per-epoch hot
        path pays one method dispatch instead of two, the ε schedule is
        inlined, and the Q-table rows are scanned less:

        * the greedy action after the Bellman update is derived from the
          single changed cell when possible (the argmax can only move *to*
          a written cell, or away from a written greedy cell that dropped);
        * when exploiting, the greedy action of ``next_state`` comes from
          the memoised per-row argmax or the row maximum already computed
          for the bootstrap term.
        """
        qtable = self.qtable
        values = qtable._values
        best_cache = qtable._best_action_cache
        parameters = self.parameters
        row = values[state]
        next_row = values[next_state]

        # -- Bellman update (exactly :meth:`update`) ---------------------------
        greedy_before = best_cache[state]
        if greedy_before < 0:
            greedy_before = qtable.best_action(state)
        confirmed = abs(action - greedy_before) <= 1
        next_best_value = max(next_row)
        target = reward + parameters.discount * next_best_value
        learning_rate = parameters.learning_rate
        old_value = row[action]
        new_value = (1.0 - learning_rate) * old_value + learning_rate * target
        row[action] = new_value
        if action == greedy_before:
            if new_value >= old_value:
                # The greedy cell did not decrease: every other cell is
                # still <= it, and no higher-index tie can appear (the
                # greedy was already the highest-index maximum).
                greedy_after = greedy_before
            else:
                # The greedy cell itself dropped; the argmax may have moved.
                best_cache[state] = -1
                greedy_after = qtable.best_action(state)
        else:
            best_value = row[greedy_before]
            if new_value > best_value or (
                new_value == best_value and action > greedy_before
            ):
                greedy_after = action
            else:
                greedy_after = greedy_before
        best_cache[state] = greedy_after
        self._last_update_changed_policy = greedy_after != greedy_before
        self._update_count += 1
        gate_reward = reward if progress_reward is None else progress_reward

        # -- ε decay (exactly EpsilonSchedule.update) --------------------------
        schedule = self.epsilon_schedule
        epsilon = schedule._epsilon
        if schedule.decay_on_any_reward or (gate_reward > 0.0 and confirmed):
            minimum = schedule.minimum_epsilon
            decayed = epsilon * math.exp(-schedule.alpha * (1.0 - epsilon))
            epsilon = decayed if decayed > minimum else minimum
            schedule._epsilon = epsilon

        # -- action selection (exactly :meth:`select_action`) ------------------
        exploiting = epsilon <= schedule.minimum_epsilon
        if exploiting and self._exploitation_start is None:
            self._exploitation_start = self._selection_count
        self._selection_count += 1
        explore = (not exploiting) and self._rng.random() < epsilon
        if explore:
            next_action = self.policy.sample(
                qtable.num_actions,
                self.action_frequencies_hz,
                slack,
                self._rng,
            )
            self._exploration_draws += 1
        elif state == next_state:
            # The update wrote into this row; the pre-update maximum is
            # stale, but the greedy action was just re-derived above.
            next_action = greedy_after
        else:
            next_action = best_cache[next_state]
            if next_action < 0:
                best = next_best_value
                next_action = 0
                for candidate in range(len(next_row) - 1, -1, -1):
                    if next_row[candidate] == best:
                        next_action = candidate
                        break
                best_cache[next_state] = next_action
        qtable._visit_counts[next_state][next_action] += 1
        return next_action, explore, exploiting

    def greedy_action(self, state: int) -> int:
        """The current greedy action for ``state`` (no exploration, no bookkeeping)."""
        return self.qtable.best_action(state)

    def reset_learning_state(self) -> None:
        """Reset ε and the exploration counters but keep the learnt Q-values.

        This supports the learning-transfer scenario of the paper's
        reference [12]: a table learnt for one application can be reused for
        another while restarting the exploration schedule.
        """
        self.epsilon_schedule.reset()
        self._exploration_draws = 0
        self._update_count = 0
        self._selection_count = 0
        self._exploitation_start = None
        self._last_update_changed_policy = False
