"""Learning/adaptation overhead accounting and convergence detection.

The paper identifies three overhead components of the RTM (Section III-D):
sensor sampling (performance-counter register accesses), processing (the
prediction, reward and Q-table computations) and V-F transitions.  Their sum
per decision epoch is the ``T_OVH`` term of the slack equation (eq. 5), and
the *number of decision epochs* a learning governor needs before its policy
settles is the quantity compared in Table III.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class OverheadModel:
    """Per-epoch time overhead of a learning governor.

    Attributes
    ----------
    sensor_sampling_s:
        Time to read the performance counters and power sensor each epoch.
    learning_processing_s:
        Processing time per epoch while the governor is still learning
        (prediction + reward + Q-table update + action selection).
    exploitation_processing_s:
        Processing time per epoch once the governor only exploits (a table
        lookup).
    """

    sensor_sampling_s: float = 8.0e-5
    learning_processing_s: float = 6.0e-4
    exploitation_processing_s: float = 1.5e-4

    def __post_init__(self) -> None:
        for name in ("sensor_sampling_s", "learning_processing_s", "exploitation_processing_s"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    def epoch_overhead_s(self, learning: bool, transition_latency_s: float = 0.0) -> float:
        """Total overhead charged to one decision epoch."""
        if transition_latency_s < 0:
            raise ValueError("transition_latency_s must be non-negative")
        processing = self.learning_processing_s if learning else self.exploitation_processing_s
        return self.sensor_sampling_s + processing + transition_latency_s


class ConvergenceDetector:
    """Detects when a learning governor's policy has settled.

    The detector is fed, each epoch, whether the epoch belonged to the
    learning/exploration phase, which action was chosen and (optionally)
    whether the epoch's table update changed the greedy policy.  Convergence
    is declared at the first epoch after which ``window`` consecutive epochs
    were all

    * non-explorative (the governor was exploiting its learnt knowledge),
    * policy-stable (no table update changed a greedy action), and
    * — when ``track_action_range`` is enabled — within ``tolerance`` table
      steps of each other (the criterion used by the workload-bin baselines
      whose decisions should settle on essentially one operating point).

    The epoch number reported by :attr:`converged_epoch` is the Table III
    quantity: the number of decision epochs of learning overhead incurred
    before convergence.
    """

    def __init__(self, window: int = 20, tolerance: int = 1, track_action_range: bool = True) -> None:
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        if tolerance < 0:
            raise ConfigurationError("tolerance must be >= 0")
        self.window = window
        self.tolerance = tolerance
        self.track_action_range = track_action_range
        # A window of consecutive stable epochs ends at epoch `e` iff the
        # most recent unstable (explored or policy-changing) epoch is at
        # most `e - window`, so two scalars replace the per-epoch scans of
        # the history.  The bounded action deque (no O(window) pop(0) list
        # shift) is only needed for the optional action-range criterion.
        self._recent_actions: "deque[int]" = deque(maxlen=window)
        self._last_unstable_epoch = 0
        self._epoch = 0
        self._converged_epoch: Optional[int] = None

    @property
    def converged_epoch(self) -> Optional[int]:
        """Epoch at which convergence was declared, or ``None`` if not yet converged."""
        return self._converged_epoch

    @property
    def has_converged(self) -> bool:
        """True once convergence has been declared."""
        return self._converged_epoch is not None

    def observe(self, action: int, explored: bool, policy_changed: bool = False) -> None:
        """Record one epoch's decision."""
        epoch = self._epoch + 1
        self._epoch = epoch
        if self._converged_epoch is not None:
            return
        if explored or policy_changed:
            self._last_unstable_epoch = epoch
            return
        if epoch < self.window or epoch - self._last_unstable_epoch < self.window:
            if self.track_action_range:
                self._recent_actions.append(action)
            return
        if self.track_action_range:
            self._recent_actions.append(action)
            if max(self._recent_actions) - min(self._recent_actions) > self.tolerance:
                return
        # Converged `window` epochs ago; report the epoch at which the
        # stable stretch began, i.e. the learning overhead actually paid.
        self._converged_epoch = epoch - self.window

    def reset(self) -> None:
        """Forget all history."""
        self._recent_actions.clear()
        self._last_unstable_epoch = 0
        self._epoch = 0
        self._converged_epoch = None
