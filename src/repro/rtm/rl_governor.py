"""The proposed run-time manager as a DVFS governor (single-cluster formulation).

This is the paper's contribution wired together: at each decision epoch the
governor

1. computes the pay-off for the epoch that just finished (eqs. 4 and 5),
2. updates the Q-table entry of the previous state-action pair (eq. 3),
3. predicts the next epoch's workload with the EWMA filter (eq. 1),
4. maps the prediction and the current average slack into a discrete state,
5. selects the next V-F action — explorative (EPD, eq. 2) or greedy —
   according to the ε schedule (eq. 6).

The many-core variant with the shared Q-table and per-core round-robin
updates lives in :mod:`repro.rtm.multicore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.rtm.exploration import ActionSelectionPolicy, ExponentialPolicy, UniformPolicy
from repro.rtm.governor import EpochObservation, FrameHint, Governor, PlatformInfo
from repro.rtm.overhead import ConvergenceDetector, OverheadModel
from repro.rtm.prediction import EWMAPredictor, WorkloadPredictor
from repro.rtm.qlearning import QLearningAgent, QLearningParameters
from repro.rtm.rewards import RewardParameters, SlackTracker, compute_reward
from repro.rtm.state import StateSpace, WorkloadNormalisation, WorkloadRangeTracker
from repro.workload.application import PerformanceRequirement


@dataclass
class RLGovernorConfig:
    """Configuration of the proposed RL governor.

    The defaults follow the paper: N = 5 discretisation levels for both the
    workload and the slack, EWMA smoothing factor 0.6, EPD exploration and
    confirmation-gated ε decay.

    Attributes
    ----------
    slack_window:
        Number of recent epochs the average slack ratio L runs over.
        ``None`` reproduces eq. (5) literally (cumulative average since the
        application start); the default of 8 keeps L responsive enough for
        per-action credit assignment on multi-thousand-frame runs (see
        DESIGN.md, "deviations").
    use_total_share_normalisation:
        Many-core formulation only: if True, normalise each core's predicted
        workload by the *total* predicted workload (the paper's eq. 7);
        if False (default), normalise the cluster's critical-path prediction
        by the per-core cycle capacity, which preserves the absolute load
        information a single shared V-F domain needs.
    """

    workload_levels: int = 5
    slack_levels: int = 5
    ewma_gamma: float = 0.6
    slack_window: Optional[int] = 8
    learning: QLearningParameters = field(default_factory=QLearningParameters)
    reward: RewardParameters = field(default_factory=RewardParameters)
    exploration_beta: float = 12.0
    use_exponential_exploration: bool = True
    use_total_share_normalisation: bool = False
    overhead: OverheadModel = field(default_factory=OverheadModel)
    convergence_window: int = 20
    seed: int = 0

    def make_policy(self) -> ActionSelectionPolicy:
        """Build the configured exploration policy (EPD by default, UPD otherwise)."""
        if self.use_exponential_exploration:
            return ExponentialPolicy(beta=self.exploration_beta)
        return UniformPolicy()


class RLGovernor(Governor):
    """The paper's Q-learning run-time manager for a single shared V-F domain."""

    name = "proposed-rl"

    def __init__(self, config: Optional[RLGovernorConfig] = None) -> None:
        super().__init__()
        self.config = config or RLGovernorConfig()
        if not self.config.use_exponential_exploration:
            self.name = f"{self.name}-upd"
        # Learning machinery is created in setup() because it needs the
        # platform's action space and the application's reference time.
        self._agent: Optional[QLearningAgent] = None
        self._predictor: Optional[WorkloadPredictor] = None
        self._slack_tracker: Optional[SlackTracker] = None
        self._state_space: Optional[StateSpace] = None
        self._range_tracker = WorkloadRangeTracker()
        self._convergence = ConvergenceDetector(
            window=self.config.convergence_window, track_action_range=False
        )
        self._pending_state: Optional[int] = None
        self._pending_action: Optional[int] = None
        self._last_overhead_s = 0.0
        self._reward_history: List[float] = []
        self._overhead_learning_s = self.config.overhead.epoch_overhead_s(learning=True)
        self._overhead_exploiting_s = self.config.overhead.epoch_overhead_s(learning=False)

    # -- lifecycle ------------------------------------------------------------------
    def setup(self, platform: PlatformInfo, requirement: PerformanceRequirement) -> None:
        super().setup(platform, requirement)
        config = self.config
        self._state_space = self._make_state_space()
        self._agent = QLearningAgent(
            num_states=self._state_space.num_states,
            num_actions=platform.num_actions,
            action_frequencies_hz=platform.vf_table.frequencies_hz,
            parameters=config.learning,
            policy=config.make_policy(),
            seed=config.seed,
        )
        self._predictor = EWMAPredictor(gamma=config.ewma_gamma)
        self._slack_tracker = SlackTracker(requirement.tref_s, window=config.slack_window)
        self._range_tracker = WorkloadRangeTracker()
        self._convergence = ConvergenceDetector(
            window=config.convergence_window, track_action_range=False
        )
        self._pending_state = None
        self._pending_action = None
        self._last_overhead_s = 0.0
        self._reward_history = []
        # The per-epoch overheads are constants of the overhead model; the
        # hot loop picks one of the two instead of re-deriving them.
        self._overhead_learning_s = config.overhead.epoch_overhead_s(learning=True)
        self._overhead_exploiting_s = config.overhead.epoch_overhead_s(learning=False)

    def _make_state_space(self) -> StateSpace:
        """State space used by the single-cluster formulation (capacity normalisation)."""
        return StateSpace(
            workload_levels=self.config.workload_levels,
            slack_levels=self.config.slack_levels,
            normalisation=WorkloadNormalisation.CAPACITY,
        )

    # -- introspection -----------------------------------------------------------------
    @property
    def agent(self) -> QLearningAgent:
        """The underlying Q-learning agent (raises before setup)."""
        if self._agent is None:
            raise ConfigurationError("RLGovernor used before setup()")
        return self._agent

    @property
    def predictor(self) -> WorkloadPredictor:
        """The workload predictor (raises before setup)."""
        if self._predictor is None:
            raise ConfigurationError("RLGovernor used before setup()")
        return self._predictor

    @property
    def slack_tracker(self) -> SlackTracker:
        """The average-slack tracker (raises before setup)."""
        if self._slack_tracker is None:
            raise ConfigurationError("RLGovernor used before setup()")
        return self._slack_tracker

    @property
    def state_space(self) -> StateSpace:
        """The discretised state space (raises before setup)."""
        if self._state_space is None:
            raise ConfigurationError("RLGovernor used before setup()")
        return self._state_space

    @property
    def exploration_count(self) -> int:
        """Number of decision epochs spent in the exploration phase (Table II quantity).

        The exploration phase is the learning period before the ε schedule
        (eq. 6) decays to its floor and the RTM switches to pure
        exploitation; the paper's Table II compares how many such epochs the
        EPD- and UPD-guided learners need.
        """
        return self.agent.exploration_phase_length if self._agent else 0

    @property
    def exploration_draw_count(self) -> int:
        """Number of epochs whose action was sampled from the exploration policy."""
        return self.agent.exploration_draws if self._agent else 0

    @property
    def exploration_frozen(self) -> bool:
        """True once the ε schedule has decayed for good (pure exploitation).

        ε never rises within a run, so once the agent is exploiting the
        exploration phase length is final and engines may stop polling
        :attr:`exploration_count`.
        """
        return self._agent is not None and self._agent.is_exploiting

    @property
    def converged_epoch(self) -> Optional[int]:
        """Epoch at which the learnt policy settled (Table III quantity)."""
        return self._convergence.converged_epoch

    @property
    def processing_overhead_s(self) -> float:
        """Per-epoch decision overhead charged to the application (T_OVH component)."""
        return self._last_overhead_s

    @property
    def reward_history(self) -> List[float]:
        """Pay-off computed at each decision epoch."""
        return list(self._reward_history)

    def decision_state(self) -> Dict[str, Any]:
        """Base snapshot plus the learnt state the parity harness must diff.

        Two engine backends only count as equivalent for a learning governor
        if they leave the *learnt policy* identical, not just the decision
        trajectory — so the snapshot includes the full Q-table (values and
        visit counts), the exploration bookkeeping and the reward history
        length.
        """
        state = super().decision_state()
        agent = self._agent
        if agent is not None:
            table = agent.qtable
            state["qtable_values"] = [
                list(table.row(row)) for row in range(table.num_states)
            ]
            state["qtable_visit_counts"] = [
                [table.visit_count(row, col) for col in range(table.num_actions)]
                for row in range(table.num_states)
            ]
            state["exploration_draws"] = agent.exploration_draws
            state["update_count"] = agent.update_count
            state["epsilon"] = agent.epsilon
            state["reward_count"] = len(self._reward_history)
        return state

    # -- workload observation hooks (overridden by the many-core formulation) -----------
    def _observed_workload(self, observation: EpochObservation) -> float:
        """Raw workload measure extracted from the epoch observation.

        The single-cluster formulation tracks the critical-path (largest
        per-core) cycle count, since that is what determines whether the
        shared V-F domain meets the frame deadline.
        """
        return observation.max_cycles

    def _normalised_prediction(self, predicted_cycles: float) -> float:
        """Normalise a predicted cycle count into [0, 1] for state mapping.

        Normalisation is relative to the application's characterised
        workload range (the paper's pre-characterisation step, performed
        online by :class:`~repro.rtm.state.WorkloadRangeTracker`), so the N
        workload levels resolve the range the application actually spans.
        """
        return self._range_tracker.normalise(predicted_cycles)

    # -- the per-epoch decision ------------------------------------------------------------
    def decide(
        self,
        previous: Optional[EpochObservation],
        hint: Optional[FrameHint] = None,
    ) -> int:
        agent = self._agent
        if agent is None:
            raise ConfigurationError("RLGovernor used before setup()")
        if previous is None:
            # First epoch: nothing has been observed yet.  Start from the
            # fastest operating point (performance-safe) and remember the
            # state-action pair so it can be credited once the first
            # observation arrives.
            initial_state = self.state_space.state_index(1.0, 0.0)
            initial_action = self.platform.num_actions - 1
            agent.qtable.record_visit(initial_state, initial_action)
            self._pending_state = initial_state
            self._pending_action = initial_action
            self._last_overhead_s = self._overhead_learning_s
            return initial_action

        # (1) Pay-off for the epoch that just finished (eqs. 4 and 5).  The
        # full pay-off differs from the progress pay-off only by the
        # per-frame miss penalty, so one evaluation serves both.
        tracker = self._slack_tracker
        reward_params = self.config.reward
        average_slack = tracker.update(previous.busy_time_s, previous.overhead_time_s)
        slack_delta = tracker.slack_delta
        progress_reward = compute_reward(average_slack, slack_delta, reward_params)
        reward = progress_reward
        instantaneous_slack = tracker.last_instantaneous_slack
        if instantaneous_slack < 0.0:
            reward -= reward_params.miss_penalty_weight * (-instantaneous_slack)
        self._reward_history.append(reward)

        # (3) Predict the next epoch's workload (eq. 1) and map to a state.
        actual_workload = self._observed_workload(previous)
        self._range_tracker.observe(actual_workload)
        predicted_workload = self._predictor.observe(actual_workload)
        next_state = self._state_space.state_index(
            self._normalised_prediction(predicted_workload), average_slack
        )

        # (2) Update the Q-table entry for the previous state-action (eq. 3)
        # and select the action for the next epoch, in one fused agent call.
        if self._pending_state is not None and self._pending_action is not None:
            action, _sampled, exploiting = agent.update_and_select(
                self._pending_state,
                self._pending_action,
                reward,
                next_state,
                average_slack,
                progress_reward=progress_reward,
            )
        else:  # pragma: no cover - pending pair always exists after epoch 0
            action, _sampled = agent.select_action(next_state, average_slack)
            exploiting = agent.is_exploiting
        self._convergence.observe(
            action,
            explored=not exploiting,
            policy_changed=agent.last_update_changed_policy,
        )
        self._pending_state = next_state
        self._pending_action = action
        self._last_overhead_s = (
            self._overhead_exploiting_s if exploiting else self._overhead_learning_s
        )
        return action

    def describe(self) -> str:
        policy = "EPD" if self.config.use_exponential_exploration else "UPD"
        return (
            f"{self.name}: Q-learning RTM ({self.state_space.workload_levels}x"
            f"{self.state_space.slack_levels} states, {policy} exploration)"
        )
