"""Discretised state space of the Q-learning run-time manager.

The paper's Q-table rows are system states formed from the *predicted
workload* (CPU cycle count) and the *current performance* (average slack
ratio L), each discretised into N levels (N = 5 after design-space
exploration).  The many-core formulation (eq. 7) normalises the per-core
predicted workload by the total predicted workload before discretisation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import ConfigurationError, StateSpaceError


class WorkloadNormalisation(enum.Enum):
    """How a raw predicted cycle count is normalised before discretisation.

    CAPACITY
        Divide by the per-core cycle capacity within ``Tref`` at the fastest
        operating point, giving an absolute load fraction in [0, 1].  This is
        the natural choice for single-agent control of one shared V-F domain.
    TOTAL_SHARE
        Divide by the *total* predicted workload over all cores (the paper's
        eq. 7), giving each core's share of the cluster's work.  This is what
        the paper's many-core formulation uses together with the shared
        Q-table and round-robin updates.
    """

    CAPACITY = "capacity"
    TOTAL_SHARE = "total_share"


@dataclass(frozen=True)
class Discretizer:
    """Maps a bounded continuous value to one of ``levels`` integer levels.

    Values outside ``[lower, upper]`` are clamped to the boundary levels,
    mirroring how a real governor saturates its observation range.
    """

    lower: float
    upper: float
    levels: int

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ConfigurationError(f"levels must be >= 1, got {self.levels}")
        if not self.upper > self.lower:
            raise ConfigurationError(
                f"upper bound must exceed lower bound, got [{self.lower}, {self.upper}]"
            )

    def level(self, value: float) -> int:
        """Return the level index (0-based) for ``value``."""
        if value != value:  # NaN guard
            raise StateSpaceError("cannot discretise NaN")
        span = self.upper - self.lower
        fraction = (value - self.lower) / span
        index = int(fraction * self.levels)
        return max(0, min(self.levels - 1, index))

    def midpoint(self, level: int) -> float:
        """Return the representative (mid-range) value of ``level``."""
        if not 0 <= level < self.levels:
            raise StateSpaceError(f"level {level} out of range 0..{self.levels - 1}")
        step = (self.upper - self.lower) / self.levels
        return self.lower + (level + 0.5) * step


class WorkloadRangeTracker:
    """Running pre-characterisation of an application's workload range.

    The paper sizes its Q-table by "discretising the range of workloads ...
    into N levels" based on a pre-characterisation (design-space
    exploration) of each application.  We perform that characterisation
    online: the tracker records the smallest and largest workloads observed
    so far and maps new values onto the resulting range, so the N workload
    levels always span the application's actual dynamic range rather than
    the platform's full capacity.

    Parameters
    ----------
    margin:
        Fractional head-room added above/below the observed extremes so that
        values slightly outside the seen range still map inside [0, 1].
    """

    def __init__(self, margin: float = 0.05) -> None:
        if margin < 0:
            raise ConfigurationError("margin must be non-negative")
        self.margin = margin
        self._low: float = float("inf")
        self._high: float = float("-inf")
        self._cached_bounds: Optional[Tuple[float, float]] = None

    @property
    def has_observations(self) -> bool:
        """True once at least one workload value has been recorded."""
        return self._low <= self._high

    @property
    def bounds(self) -> Tuple[float, float]:
        """The (low, high) bounds of the characterised range including margin.

        Recomputed only when an observation widened the range: the tracker
        is read every decision epoch but the extremes settle within the
        first few, so the margin arithmetic is cached.
        """
        cached = self._cached_bounds
        if cached is not None:
            return cached
        if not self.has_observations:
            return (0.0, 1.0)
        span = max(self._high - self._low, 1e-9)
        bounds = (self._low - self.margin * span, self._high + self.margin * span)
        self._cached_bounds = bounds
        return bounds

    def observe(self, value: float) -> None:
        """Record one observed workload value."""
        if value < 0:
            raise StateSpaceError("workload values must be non-negative")
        if value < self._low:
            self._low = value
            self._cached_bounds = None
        if value > self._high:
            self._high = value
            self._cached_bounds = None

    def normalise(self, value: float) -> float:
        """Map ``value`` onto [0, 1] relative to the characterised range.

        Before any observation has been recorded (and whenever the range has
        collapsed to a point) every value maps to the middle of the range.
        """
        if not self.has_observations:
            return 0.5
        low, high = self.bounds
        if high <= low:
            return 0.5
        fraction = (value - low) / (high - low)
        return max(0.0, min(1.0, fraction))

    def reset(self) -> None:
        """Forget the characterised range."""
        self._low = float("inf")
        self._high = float("-inf")
        self._cached_bounds = None


class StateSpace:
    """The (workload level, slack level) state space of the Q-table.

    Parameters
    ----------
    workload_levels:
        Number of discretisation levels N for the (normalised) predicted
        cycle count; the paper uses 5.
    slack_levels:
        Number of discretisation levels for the average slack ratio L; the
        paper uses the same N.
    slack_bounds:
        Saturation range for the slack ratio.  A slack of -0.5 means frames
        are overrunning their budget by 50%; +0.5 means they finish in half
        the budget.
    normalisation:
        How raw predicted cycle counts are normalised (see
        :class:`WorkloadNormalisation`).
    """

    def __init__(
        self,
        workload_levels: int = 5,
        slack_levels: int = 5,
        slack_bounds: Tuple[float, float] = (-0.5, 0.5),
        normalisation: WorkloadNormalisation = WorkloadNormalisation.CAPACITY,
    ) -> None:
        self.workload_discretizer = Discretizer(0.0, 1.0, workload_levels)
        self.slack_discretizer = Discretizer(slack_bounds[0], slack_bounds[1], slack_levels)
        self.normalisation = normalisation
        # state_index() runs once per decision epoch; the discretizer
        # constants are hoisted so the mapping is pure local arithmetic
        # (same subtraction/division/int truncation as Discretizer.level).
        self._slack_levels = self.slack_discretizer.levels
        self._w_lower = self.workload_discretizer.lower
        self._w_span = self.workload_discretizer.upper - self.workload_discretizer.lower
        self._w_levels = self.workload_discretizer.levels
        self._s_lower = self.slack_discretizer.lower
        self._s_span = self.slack_discretizer.upper - self.slack_discretizer.lower
        self._s_levels = self.slack_discretizer.levels

    # -- size ----------------------------------------------------------------------
    @property
    def workload_levels(self) -> int:
        """Number of workload discretisation levels."""
        return self.workload_discretizer.levels

    @property
    def slack_levels(self) -> int:
        """Number of slack discretisation levels."""
        return self.slack_discretizer.levels

    @property
    def num_states(self) -> int:
        """Total number of discrete states (Q-table rows)."""
        return self.workload_levels * self.slack_levels

    # -- normalisation -----------------------------------------------------------------
    def normalise_workload(
        self,
        predicted_cycles: float,
        capacity_cycles: float,
        all_core_predictions: Sequence[float] = (),
    ) -> float:
        """Normalise a raw predicted cycle count into [0, 1].

        Parameters
        ----------
        predicted_cycles:
            Predicted cycle count of the core being controlled this epoch.
        capacity_cycles:
            Per-core cycle capacity within ``Tref`` at the fastest operating
            point (used by CAPACITY normalisation).
        all_core_predictions:
            Predicted cycle counts of every core (used by TOTAL_SHARE
            normalisation, eq. 7).
        """
        if predicted_cycles < 0:
            raise StateSpaceError("predicted cycles must be non-negative")
        if self.normalisation is WorkloadNormalisation.CAPACITY:
            if capacity_cycles <= 0:
                raise StateSpaceError("capacity_cycles must be positive for CAPACITY normalisation")
            return min(1.0, predicted_cycles / capacity_cycles)
        total = sum(all_core_predictions)
        if total <= 0:
            return 0.0
        return min(1.0, predicted_cycles / total)

    # -- state indexing -----------------------------------------------------------------
    def state_index(self, normalised_workload: float, slack: float) -> int:
        """Map (normalised workload, slack ratio) to a Q-table row index.

        Inlines :meth:`Discretizer.level` for both axes (identical
        arithmetic, hoisted constants) — this runs once per decision epoch.
        """
        if normalised_workload != normalised_workload or slack != slack:  # NaN guard
            raise StateSpaceError("cannot discretise NaN")
        workload_level = int(
            (normalised_workload - self._w_lower) / self._w_span * self._w_levels
        )
        if workload_level < 0:
            workload_level = 0
        elif workload_level >= self._w_levels:
            workload_level = self._w_levels - 1
        slack_level = int((slack - self._s_lower) / self._s_span * self._s_levels)
        if slack_level < 0:
            slack_level = 0
        elif slack_level >= self._s_levels:
            slack_level = self._s_levels - 1
        return workload_level * self._slack_levels + slack_level

    def decompose(self, state_index: int) -> Tuple[int, int]:
        """Inverse of :meth:`state_index`: return (workload level, slack level)."""
        if not 0 <= state_index < self.num_states:
            raise StateSpaceError(
                f"state index {state_index} out of range 0..{self.num_states - 1}"
            )
        return divmod(state_index, self.slack_levels)

    def __repr__(self) -> str:
        return (
            f"StateSpace({self.workload_levels}x{self.slack_levels} levels, "
            f"normalisation={self.normalisation.value})"
        )
