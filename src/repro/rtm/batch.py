"""Batch-axis Q-table operations for the batched simulation engine.

:class:`BatchedAgents` lifts the per-epoch hot path of
:meth:`~repro.rtm.qlearning.QLearningAgent.update_and_select` onto a leading
*scenario* axis: S agents that are stepped in lock-step (every agent makes
exactly one fused update-and-select per decision epoch) share one
``(S, num_states, num_actions)`` Q-value array, one visit-count array and
one memoised per-row argmax cache, so the Bellman update, the greedy-action
repair and the ε-greedy selection of a whole scenario batch cost a handful
of NumPy operations instead of S Python method calls.

Bit-identity contract — the reason this class exists at all: every float
produced here is the result of the *same IEEE operation on the same
operands* as the scalar agent's, so a batched run reproduces S scalar runs
exactly (same Q-values, same greedy actions, same ε trajectories, same RNG
draw sequences).  The parts of the scalar path whose results depend on
``math.exp`` (the ε decay of eq. 6 and the exploration policy's sample)
stay scalar islands: the decay is evaluated per agent with ``math.exp`` and
memoised per distinct ``(ε, α)`` pair, and explorative draws call each
agent's own ``random.Random`` and policy object in the scalar call order.
Two provable shortcuts keep those islands small:

* an agent whose ε already sits at its floor is skipped by the decay loop —
  the scalar schedule clamps the decayed value back to the floor, so ε
  cannot change again;
* an exploiting agent never touches its RNG — the scalar expression
  ``(not exploiting) and rng.random() < epsilon`` short-circuits — so once
  a batch has converged its epochs are fully vectorised.

The class operates on *live* :class:`~repro.rtm.qlearning.QLearningAgent`
instances: their hyper-parameters are packed into per-agent arrays on entry
(agents in one batch may differ in learning rate, discount, reward gating
or exploration policy), their RNGs are used in place, and
:meth:`write_back` restores every piece of scalar agent state — Q-values,
visit counts, argmax cache, ε, draw/update/selection counters and the
exploitation-start marker — so probes and reports read the agents exactly
as if each had run alone.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.rtm.qlearning import QLearningAgent


class BatchedAgents:
    """Lock-step batch of Q-learning agents sharing batched table storage.

    Parameters
    ----------
    agents:
        The live agents, one per batched scenario.  All must share the same
        state/action space shape (their tables are stacked into one array);
        every other hyper-parameter may vary per agent.
    np_module:
        The imported NumPy module (injected so the batched engine's import
        seam controls this class too).
    """

    def __init__(self, agents: Sequence[QLearningAgent], np_module) -> None:
        if not agents:
            raise ConfigurationError("BatchedAgents needs at least one agent")
        np = np_module
        self._np = np
        self.agents = list(agents)
        first = agents[0].qtable
        num_states, num_actions = first.num_states, first.num_actions
        for agent in agents:
            if (
                agent.qtable.num_states != num_states
                or agent.qtable.num_actions != num_actions
            ):
                raise ConfigurationError(
                    "all agents in a batch must share the Q-table shape"
                )
        self.num_states = num_states
        self.num_actions = num_actions
        size = len(self.agents)
        self.size = size
        self._rows = np.arange(size)

        # Batched table storage (float64 / int64 / intp mirror the scalar
        # list-of-lists contents exactly; stacking copies, never aliases).
        self.values = np.array(
            [agent.qtable._values for agent in agents], dtype=float
        )
        self.visits = np.array(
            [agent.qtable._visit_counts for agent in agents], dtype=np.int64
        )
        self.best_cache = np.array(
            [agent.qtable._best_action_cache for agent in agents], dtype=np.intp
        )

        # Per-agent hyper-parameters as arrays (heterogeneous batches are
        # vectorised for free).
        self.learning_rate = np.array(
            [agent.parameters.learning_rate for agent in agents]
        )
        self._retention = 1.0 - self.learning_rate
        self.discount = np.array([agent.parameters.discount for agent in agents])
        schedules = [agent.epsilon_schedule for agent in agents]
        self.epsilon = np.array([schedule._epsilon for schedule in schedules])
        self.minimum_epsilon = np.array(
            [schedule.minimum_epsilon for schedule in schedules]
        )
        self.alpha = np.array([schedule.alpha for schedule in schedules])
        self.decay_on_any_reward = np.array(
            [schedule.decay_on_any_reward for schedule in schedules], dtype=bool
        )

        # Scalar islands: RNG streams and exploration policies, per agent.
        self._rngs = [agent._rng for agent in agents]
        self._policies = [agent.policy for agent in agents]
        self._frequencies = [agent.action_frequencies_hz for agent in agents]

        # Bookkeeping counters.  The selection/update counters are
        # batch-invariant (every agent performs one fused call per epoch),
        # so two Python ints carry them; the rest are per-agent arrays.
        self._initial_selection_count = agents[0]._selection_count
        for agent in agents:
            if agent._selection_count != self._initial_selection_count:
                raise ConfigurationError(
                    "agents in a batch must have equal selection counts"
                )
        self._selection_count = self._initial_selection_count
        self._fused_calls = 0
        self.exploration_draws = np.array(
            [agent._exploration_draws for agent in agents], dtype=np.int64
        )
        self.exploitation_start = np.array(
            [
                -1 if agent._exploitation_start is None else agent._exploitation_start
                for agent in agents
            ],
            dtype=np.int64,
        )
        self.last_update_changed_policy = np.zeros(size, dtype=bool)
        self._decay_cache: dict = {}
        # Fast-path flag: once every ε sits at its floor the decay loop,
        # the RNG islands and the freeze bookkeeping are provably no-ops
        # (the scalar schedule clamps a floored ε forever), so converged
        # epochs skip straight to the greedy tail.
        self._all_at_floor = bool((self.epsilon <= self.minimum_epsilon).all())
        self._ones = np.ones(size, dtype=bool)
        self._false = np.zeros(size, dtype=bool)

    # -- derived flags -------------------------------------------------------------
    @property
    def selection_count(self) -> int:
        """Batch-invariant number of action selections performed so far."""
        return self._selection_count

    def is_exploiting(self):
        """Boolean array: agents whose ε has decayed to (or below) its floor."""
        return self.epsilon <= self.minimum_epsilon

    def record_visit(self, state: int, action: int) -> None:
        """Credit one (state, action) visit to every agent in the batch."""
        self.visits[:, state, action] += 1

    def _recompute_greedy(self, member_rows, states):
        """Highest-index argmax of ``values[member, state]`` for each pair.

        The scalar :meth:`QTable.best_action` scans the row from the top and
        returns the first index attaining the maximum; on a reversed row
        that is exactly ``num_actions - 1 - argmax``.
        """
        np = self._np
        rows = self.values[member_rows, states]
        return self.num_actions - 1 - np.argmax(rows[:, ::-1], axis=1)

    # -- the fused per-epoch step -------------------------------------------------
    def update_and_select(
        self,
        state,
        action,
        reward,
        next_state,
        slack,
        progress_reward,
    ) -> Tuple["object", "object", "object"]:
        """Batched :meth:`QLearningAgent.update_and_select` — one epoch, S agents.

        All arguments are ``(S,)`` arrays.  Returns ``(next_action,
        explored, exploiting)`` arrays with the scalar method's semantics.
        """
        np = self._np
        rows = self._rows
        values = self.values
        best_cache = self.best_cache
        num_actions = self.num_actions

        # -- Bellman update (exactly QLearningAgent.update_and_select) ------
        greedy_before = best_cache[rows, state]
        missing = greedy_before < 0
        if missing.any():
            miss_rows = np.nonzero(missing)[0]
            recomputed = self._recompute_greedy(miss_rows, state[miss_rows])
            greedy_before[miss_rows] = recomputed
            best_cache[miss_rows, state[miss_rows]] = recomputed
        confirmed = np.abs(action - greedy_before) <= 1
        next_best_value = values[rows, next_state].max(axis=1)
        target = reward + self.discount * next_best_value
        learning_rate = self.learning_rate
        old_value = values[rows, state, action]
        new_value = self._retention * old_value + learning_rate * target
        values[rows, state, action] = new_value

        on_greedy = action == greedy_before
        # Off-greedy write: the greedy cell is untouched, so the argmax can
        # only move *to* the written cell (ties break towards the higher
        # index, as in the scalar reverse scan).
        best_value = values[rows, state, greedy_before]
        takes_over = (new_value > best_value) | (
            (new_value == best_value) & (action > greedy_before)
        )
        greedy_after = np.where(
            on_greedy, greedy_before, np.where(takes_over, action, greedy_before)
        )
        # On-greedy write that *lowered* the cell: the argmax may have moved
        # anywhere — recompute those rows from the updated values.
        dropped = on_greedy & (new_value < old_value)
        if dropped.any():
            drop_rows = np.nonzero(dropped)[0]
            greedy_after[drop_rows] = self._recompute_greedy(
                drop_rows, state[drop_rows]
            )
        best_cache[rows, state] = greedy_after
        self.last_update_changed_policy = greedy_after != greedy_before
        self._fused_calls += 1

        next_action = np.empty(self.size, dtype=np.intp)
        if self._all_at_floor:
            # Every ε is clamped at its floor: no decay, no freeze, no RNG
            # touch — the scalar path would no-op all three.
            exploiting = self._ones
            explored = self._false
            self._selection_count += 1
            pick_rows = rows
        else:
            # -- ε decay (eq. 6), scalar math.exp island --------------------
            gated = self.decay_on_any_reward | ((progress_reward > 0.0) & confirmed)
            pending = np.nonzero(gated & (self.epsilon > self.minimum_epsilon))[0]
            if pending.size:
                epsilon = self.epsilon
                minimum = self.minimum_epsilon
                alpha = self.alpha
                cache = self._decay_cache
                for member in pending:
                    eps = float(epsilon[member])
                    a = float(alpha[member])
                    key = (eps, a)
                    decayed = cache.get(key)
                    if decayed is None:
                        decayed = eps * math.exp(-a * (1.0 - eps))
                        cache[key] = decayed
                    floor = minimum[member]
                    epsilon[member] = decayed if decayed > floor else floor

            # -- action selection (exactly the scalar tail) ------------------
            exploiting = self.epsilon <= self.minimum_epsilon
            freezing = exploiting & (self.exploitation_start < 0)
            if freezing.any():
                self.exploitation_start[freezing] = self._selection_count
            self._selection_count += 1

            explored = np.zeros(self.size, dtype=bool)
            learners = np.nonzero(~exploiting)[0]
            if learners.size:
                epsilon = self.epsilon
                rngs = self._rngs
                policies = self._policies
                frequencies = self._frequencies
                for member in learners:
                    rng = rngs[member]
                    if rng.random() < epsilon[member]:
                        next_action[member] = policies[member].sample(
                            num_actions,
                            frequencies[member],
                            float(slack[member]),
                            rng,
                        )
                        explored[member] = True
                        self.exploration_draws[member] += 1
            else:
                self._all_at_floor = True
            pick_rows = np.nonzero(~explored)[0]

        # Greedy pick from the next-state cache.  Members whose state did
        # not change read the entry written by the Bellman update above
        # (== ``greedy_after``), so one gather serves both cases.
        if pick_rows.size:
            pick_states = next_state[pick_rows]
            cached = best_cache[pick_rows, pick_states]
            stale = cached < 0
            if stale.any():
                stale_rows = pick_rows[stale]
                recomputed = self._recompute_greedy(
                    stale_rows, next_state[stale_rows]
                )
                cached[stale] = recomputed
                best_cache[stale_rows, next_state[stale_rows]] = recomputed
            next_action[pick_rows] = cached

        self.visits[rows, next_state, next_action] += 1
        return next_action, explored, exploiting

    # -- state restoration ----------------------------------------------------------
    def write_back(self) -> None:
        """Restore every agent's scalar state from the batched arrays.

        After this call each agent is indistinguishable from one that ran
        the same epochs alone: Q-values, visit counts, argmax cache, ε,
        draw/update/selection counters and the exploitation-start marker
        all match bit for bit.
        """
        values = self.values
        visits = self.visits
        best_cache = self.best_cache
        for member, agent in enumerate(self.agents):
            qtable = agent.qtable
            qtable._values = values[member].tolist()
            qtable._visit_counts = visits[member].tolist()
            qtable._best_action_cache = best_cache[member].tolist()
            agent.epsilon_schedule._epsilon = float(self.epsilon[member])
            agent._exploration_draws = int(self.exploration_draws[member])
            agent._update_count += self._fused_calls
            agent._selection_count = self._selection_count
            start = int(self.exploitation_start[member])
            agent._exploitation_start = None if start < 0 else start
            agent._last_update_changed_policy = bool(
                self.last_update_changed_policy[member]
            )


def stack_agents(
    governors: Sequence[object], np_module
) -> Tuple[BatchedAgents, List[QLearningAgent]]:
    """Build a :class:`BatchedAgents` from RL governors' live agents."""
    agents = [governor.agent for governor in governors]
    return BatchedAgents(agents, np_module), agents
