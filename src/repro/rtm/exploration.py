"""Action-selection policies and the exploration/exploitation schedule.

Two exploration policies are provided:

* :class:`UniformPolicy` — the conventional uniform random selection (UPD)
  used by the baseline RL power managers the paper compares against
  (Shen et al., TODAES'13);
* :class:`ExponentialPolicy` — the paper's Exponential Probability
  Distribution (EPD, eq. 2), which biases the random draw towards operating
  points that are sensible for the *current slack*: with positive slack
  (over-performing) lower frequencies are favoured, with negative slack
  (missing the budget) higher frequencies are favoured, and with slack near
  zero the distribution is nearly uniform.

The transition from exploration to exploitation is governed by the greedy
parameter ε, decayed according to the paper's eq. (6); the decay is applied
on epochs that produced a positive pay-off, which is what lets the
EPD-guided learner (whose informed draws earn positive pay-offs sooner)
reach the exploitation phase in fewer explorations — the effect measured in
Table II.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ConfigurationError


class ActionSelectionPolicy(ABC):
    """Samples an exploratory action index given the current slack."""

    name: str = "policy"

    @abstractmethod
    def probabilities(self, num_actions: int, frequencies_hz: Sequence[float], slack: float) -> List[float]:
        """Return the selection probability of every action (sums to 1)."""

    def sample(
        self,
        num_actions: int,
        frequencies_hz: Sequence[float],
        slack: float,
        rng: random.Random,
    ) -> int:
        """Draw an action index from :meth:`probabilities`."""
        probabilities = self.probabilities(num_actions, frequencies_hz, slack)
        draw = rng.random()
        cumulative = 0.0
        for action, probability in enumerate(probabilities):
            cumulative += probability
            if draw <= cumulative:
                return action
        return num_actions - 1


class UniformPolicy(ActionSelectionPolicy):
    """Uniform probability distribution over actions (the UPD baseline)."""

    name = "upd"

    def probabilities(self, num_actions: int, frequencies_hz: Sequence[float], slack: float) -> List[float]:
        if num_actions < 1:
            raise ConfigurationError("num_actions must be >= 1")
        return [1.0 / num_actions] * num_actions


class ExponentialPolicy(ActionSelectionPolicy):
    """The paper's Exponential Probability Distribution (eq. 2).

    The probability of action ``a`` with (normalised) frequency ``F_a`` is

        p(a)  proportional to  lambda * exp(-beta * F_a * L)

    so that the sign of the slack L steers the draw: positive slack
    (over-performing) concentrates probability on low frequencies, negative
    slack on high frequencies, and L ≈ 0 recovers an (almost) uniform
    distribution governed by ``lambda`` alone.

    Parameters
    ----------
    beta:
        Sensitivity of the distribution to the slack; larger values
        concentrate the draw more sharply.
    """

    name = "epd"

    def __init__(self, beta: float = 6.0) -> None:
        if beta < 0:
            raise ConfigurationError(f"beta must be non-negative, got {beta}")
        self.beta = beta

    def probabilities(self, num_actions: int, frequencies_hz: Sequence[float], slack: float) -> List[float]:
        if num_actions < 1:
            raise ConfigurationError("num_actions must be >= 1")
        if len(frequencies_hz) != num_actions:
            raise ConfigurationError("frequencies_hz must have one entry per action")
        f_max = max(frequencies_hz)
        if f_max <= 0:
            raise ConfigurationError("frequencies must be positive")
        weights = [
            math.exp(-self.beta * (f / f_max) * slack) for f in frequencies_hz
        ]
        total = sum(weights)
        return [w / total for w in weights]


@dataclass
class EpsilonSchedule:
    """Greedy-parameter schedule controlling exploration vs. exploitation.

    ε is the probability of taking an explorative (policy-sampled) action;
    ``1 - ε`` is the probability of exploiting the greedy Q-table action.
    The decay follows the paper's eq. (6),

        ε_{i+1} = ε_i * exp(-alpha * (1 - ε_i)),

    applied on epochs whose decision *confirmed the learnt knowledge*: the
    pay-off was positive (the performance requirement was met) and the
    action taken agreed with the state's current greedy action.  Epochs with
    negative pay-off, or whose explorative action contradicts what the table
    currently believes is best, leave ε unchanged — the learner still has
    something to find out.

    This gating is what produces the paper's Table II effect: the
    slack-informed EPD concentrates its explorative draws on the actions
    that are (close to) best for the current state, so its explorations keep
    confirming the table and ε decays quickly; uniform (UPD) exploration
    scatters its draws over all 19 operating points, rarely confirms, and
    therefore needs substantially more explorative epochs before it reaches
    pure exploitation.

    Attributes
    ----------
    initial_epsilon:
        Starting exploration probability.
    alpha:
        The learning factor of eq. (6).
    minimum_epsilon:
        Floor below which ε is considered fully decayed (pure exploitation).
    decay_on_any_reward:
        If True, decay on every epoch regardless of the pay-off sign or
        confirmation (the conventional unconditional schedule, available for
        ablations).
    """

    initial_epsilon: float = 0.9
    alpha: float = 0.25
    minimum_epsilon: float = 0.01
    decay_on_any_reward: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.initial_epsilon <= 1.0:
            raise ConfigurationError("initial_epsilon must lie in [0, 1]")
        if self.alpha <= 0:
            raise ConfigurationError("alpha must be positive")
        if not 0.0 <= self.minimum_epsilon <= self.initial_epsilon:
            raise ConfigurationError("minimum_epsilon must lie in [0, initial_epsilon]")
        self._epsilon = self.initial_epsilon

    @property
    def epsilon(self) -> float:
        """Current exploration probability."""
        return self._epsilon

    @property
    def is_exploiting(self) -> bool:
        """True once ε has decayed to (or below) its floor."""
        return self._epsilon <= self.minimum_epsilon

    def should_explore(self, rng: random.Random) -> bool:
        """Draw the explore-vs-exploit decision for this epoch."""
        if self.is_exploiting:
            return False
        return rng.random() < self._epsilon

    def update(self, reward: float, confirmed: bool = True) -> float:
        """Decay ε according to eq. (6) and return the new value.

        Parameters
        ----------
        reward:
            The pay-off of the finished epoch.
        confirmed:
            True when the epoch's action agreed with the state's current
            greedy action (learnt knowledge was confirmed rather than
            contradicted).
        """
        if self.decay_on_any_reward or (reward > 0.0 and confirmed):
            decayed = self._epsilon * math.exp(-self.alpha * (1.0 - self._epsilon))
            self._epsilon = max(self.minimum_epsilon, decayed)
        return self._epsilon

    def reset(self) -> None:
        """Return ε to its initial value."""
        self._epsilon = self.initial_epsilon
