"""Many-core formulation of the proposed RTM (the paper's Section II-D).

The many-core adaptation makes three changes relative to the single-agent
formulation:

1. each core has its own workload predictor, and the predicted workload of
   the core under consideration is *normalised by the total predicted
   workload of all cores* (eq. 7);
2. a single Q-table is *shared* by all cores, so every core's experience
   improves the same policy;
3. only **one** core's state-action entry is updated per decision epoch, in
   round-robin order, which keeps the Q-table size independent of the number
   of cores (as opposed to enumerating joint V-F combinations).

Because the A15 cluster has a single V-F domain, the selected action still
applies to the whole cluster; what rotates is which core's observed and
predicted workload defines the state being learnt.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigurationError
from repro.rtm.governor import EpochObservation, FrameHint, PlatformInfo
from repro.rtm.prediction import EWMAPredictor, WorkloadPredictor
from repro.rtm.rewards import compute_reward
from repro.rtm.rl_governor import RLGovernor, RLGovernorConfig
from repro.rtm.state import StateSpace, WorkloadNormalisation
from repro.workload.application import PerformanceRequirement


class MultiCoreRLGovernor(RLGovernor):
    """Shared-Q-table, round-robin many-core variant of the proposed RTM."""

    name = "proposed-rl-multicore"

    def __init__(self, config: Optional[RLGovernorConfig] = None) -> None:
        super().__init__(config)
        self._core_predictors: List[WorkloadPredictor] = []
        self._round_robin_core = 0

    # -- lifecycle ---------------------------------------------------------------------
    def setup(self, platform: PlatformInfo, requirement: PerformanceRequirement) -> None:
        super().setup(platform, requirement)
        self._core_predictors = [
            EWMAPredictor(gamma=self.config.ewma_gamma) for _ in range(platform.num_cores)
        ]
        self._round_robin_core = 0

    def _make_state_space(self) -> StateSpace:
        """Many-core state space.

        With ``use_total_share_normalisation`` the per-core predicted
        workload is normalised by the total predicted workload (the paper's
        eq. 7); otherwise the cluster's critical-path prediction is
        normalised by the per-core cycle capacity, which keeps the absolute
        load information the shared V-F domain needs (see DESIGN.md,
        "deviations").
        """
        normalisation = (
            WorkloadNormalisation.TOTAL_SHARE
            if self.config.use_total_share_normalisation
            else WorkloadNormalisation.CAPACITY
        )
        return StateSpace(
            workload_levels=self.config.workload_levels,
            slack_levels=self.config.slack_levels,
            normalisation=normalisation,
        )

    # -- introspection ---------------------------------------------------------------------
    @property
    def core_predictors(self) -> List[WorkloadPredictor]:
        """Per-core workload predictors (raises before setup)."""
        if not self._core_predictors:
            raise ConfigurationError("MultiCoreRLGovernor used before setup()")
        return self._core_predictors

    @property
    def round_robin_core(self) -> int:
        """Index of the core whose state-action entry will be updated next."""
        return self._round_robin_core

    # -- per-epoch decision ---------------------------------------------------------------------
    def decide(
        self,
        previous: Optional[EpochObservation],
        hint: Optional[FrameHint] = None,
    ) -> int:
        agent = self._agent
        if agent is None:
            raise ConfigurationError("MultiCoreRLGovernor used before setup()")
        if previous is None:
            initial_state = self.state_space.state_index(1.0 / max(1, self.platform.num_cores), 0.0)
            initial_action = self.platform.num_actions - 1
            agent.qtable.record_visit(initial_state, initial_action)
            self._pending_state = initial_state
            self._pending_action = initial_action
            self._last_overhead_s = self._overhead_learning_s
            return initial_action

        # (1) Pay-off for the finished epoch — shared across cores because
        # the frame deadline is a property of the whole cluster.  The full
        # pay-off differs from the progress pay-off only by the per-frame
        # miss penalty, so one evaluation serves both.
        tracker = self._slack_tracker
        reward_params = self.config.reward
        average_slack = tracker.update(previous.busy_time_s, previous.overhead_time_s)
        slack_delta = tracker.slack_delta
        progress_reward = compute_reward(average_slack, slack_delta, reward_params)
        reward = progress_reward
        instantaneous_slack = tracker.last_instantaneous_slack
        if instantaneous_slack < 0.0:
            reward -= reward_params.miss_penalty_weight * (-instantaneous_slack)
        self._reward_history.append(reward)

        # (2) Per-core workload prediction.  In eq.-7 mode the round-robin
        # core's normalised share defines the state; in the default capacity
        # mode the cluster's predicted critical path (the largest per-core
        # prediction) does, since that is what the shared V-F domain must
        # accommodate.
        cycles = previous.cycles_per_core
        num_observed = len(cycles)
        predictions = [
            predictor.observe(cycles[core_index] if core_index < num_observed else 0.0)
            for core_index, predictor in enumerate(self._core_predictors)
        ]
        focus_core = self._round_robin_core
        if self.config.use_total_share_normalisation:
            normalised = self._state_space.normalise_workload(
                predictions[focus_core],
                capacity_cycles=self.platform.capacity_cycles(self.requirement.tref_s),
                all_core_predictions=predictions,
            )
        else:
            # Critical-path prediction mapped onto the application's
            # characterised workload range (online pre-characterisation).
            self._range_tracker.observe(previous.max_cycles)
            normalised = self._range_tracker.normalise(max(predictions))
        next_state = self._state_space.state_index(normalised, average_slack)

        # (3) Bellman update of the previous state-action pair in the shared
        # table, fused with (4) the selection of the next action.
        if self._pending_state is not None and self._pending_action is not None:
            action, _sampled, exploiting = agent.update_and_select(
                self._pending_state,
                self._pending_action,
                reward,
                next_state,
                average_slack,
                progress_reward=progress_reward,
            )
        else:  # pragma: no cover - pending pair always exists after epoch 0
            action, _sampled = agent.select_action(next_state, average_slack)
            exploiting = agent.is_exploiting
        self._convergence.observe(
            action,
            explored=not exploiting,
            policy_changed=agent.last_update_changed_policy,
        )
        self._pending_state = next_state
        self._pending_action = action
        self._round_robin_core = (focus_core + 1) % self.platform.num_cores
        self._last_overhead_s = (
            self._overhead_exploiting_s if exploiting else self._overhead_learning_s
        )
        return action

    def describe(self) -> str:
        return (
            f"{self.name}: shared Q-table, round-robin updates over "
            f"{self.platform.num_cores} cores"
        )
