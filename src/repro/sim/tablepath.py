"""Table-driven closed-loop engine — O(1) physics per frame.

The vectorised engine in :mod:`repro.sim.fastpath` eliminates the per-frame
loop entirely, but only for governors whose schedule is knowable up front.
The paper's actual contribution — the closed-loop Q-learning RTM — and its
Linux baselines (ondemand, conservative) cannot be vectorised: frame *i*'s
operating point depends on what the governor observed during frame *i - 1*.

What *can* be precomputed is the physics.  With the thermal model disabled
(the paper's setting) every quantity :meth:`Cluster.execute_workload
<repro.platform.cluster.Cluster.execute_workload>` derives is a pure
function of ``(frame, operating_index)`` plus two transition constants.
:func:`simulate_closed_loop` therefore asks the cluster for its
:class:`~repro.platform.cluster.WorkloadTable` — busy time, interval and
energy for every (frame, operating point) pair, built with the scalar
engine's exact IEEE operations — and the per-frame loop collapses to the
governor's ``decide()`` plus a handful of list lookups: no core model, no
power model, no ``FrameRecord`` allocation (results are columnar, see
:class:`~repro.sim.epoch.FrameColumns`).

Because every observed quantity (busy time, interval, energy, measured
power, overhead) is bit-identical to the scalar engine's — and the stateful
power sensor is *driven*, not re-implemented — any deterministic governor
makes the identical decision sequence, so results match the scalar engine
frame by frame: 1e-9 relative tolerance on every float, identical
deadline-miss sets, identical exploration counts and final Q-tables
(``tests/test_tablepath.py`` enforces all of this).

Eligibility mirrors the vectorised fast path: NumPy importable, thermal
model disabled.  Thermally-enabled clusters negotiate to the
thermally-coupled engine in :mod:`repro.sim.thermalpath`; the scalar
engine remains the universal fallback (see :mod:`repro.sim.backends`).
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

try:  # NumPy is optional: without it every run takes the scalar engine.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None  # type: ignore[assignment]

from repro.errors import InvalidOperatingPointError, SimulationError
from repro.platform.cluster import WorkloadTable
from repro.platform.dvfs import DVFSTransition
from repro.rtm.governor import EpochObservation, FrameHint
from repro.sim import fastpath
from repro.sim.epoch import FrameColumns
from repro.sim.results import SimulationResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import Cluster
    from repro.rtm.governor import Governor
    from repro.sim.engine import SimulationConfig
    from repro.workload.application import Application

#: Signature of a table provider: builds (or fetches from a cache) the
#: precomputed :class:`WorkloadTable` for one (cluster, application, config).
TableProvider = Callable[["Cluster", "Application", "SimulationConfig"], "WorkloadTable"]


def table_path_eligible(cluster: "Cluster") -> bool:
    """True when :func:`simulate_closed_loop` reproduces the scalar engine here.

    Same probe as :func:`repro.sim.fastpath.fast_path_eligible`: NumPy must
    be importable and the cluster's thermal model disabled (constant
    junction temperature, hence per-operating-point physics constant over
    the trace).
    """
    return _np is not None and not cluster.thermal_model.enabled


def precompute_tables(
    cluster: "Cluster", application: "Application", config: "SimulationConfig"
) -> "WorkloadTable":
    """Precompute the (frame, operating point) physics tables for one run.

    Thin wrapper over :meth:`Cluster.execute_workload_table` that extracts
    the frame trace from ``application``.  The returned table depends only
    on the application's trace, the cluster's physical constants and
    ``config.idle_until_deadline`` — it is reusable across runs (and across
    governors) sharing those, which is what the campaign executor's
    per-worker table cache exploits.
    """
    num_cores = cluster.num_cores
    cycles = [frame.cycles_per_core(num_cores) for frame in application]
    deadlines = [frame.deadline_s for frame in application]
    return cluster.execute_workload_table(
        cycles, deadlines, idle_until_deadline=config.idle_until_deadline
    )


def simulate_closed_loop(
    cluster: "Cluster",
    application: "Application",
    governor: "Governor",
    config: "SimulationConfig",
    tables: Optional["WorkloadTable"] = None,
) -> SimulationResult:
    """Run the closed governor loop with table-driven physics.

    The cluster is used as-is (the caller resets it first, exactly as the
    scalar engine does) and is left in scalar-equivalent aggregate state:
    clock advanced, energy meter and PMUs credited, power sensor stepped
    through every frame, DVFS actuator holding the same transition history.

    ``tables`` may be supplied by a caller that cached them (see
    :func:`precompute_tables`); they are validated against the cluster's
    physics before use and rebuilt on mismatch.
    """
    np = _np
    if np is None:
        raise SimulationError("the table-driven closed-loop engine requires numpy")
    if cluster.thermal_model.enabled:
        raise SimulationError(
            "the table-driven closed-loop engine requires a disabled thermal "
            "model (temperature-dependent leakage needs the scalar engine)"
        )
    num_frames = application.num_frames
    if num_frames == 0:
        raise SimulationError("cannot simulate an application with no frames")
    if (
        tables is None
        or not isinstance(tables, WorkloadTable)
        or tables.num_frames != num_frames
        or not tables.matches(cluster, config.idle_until_deadline)
    ):
        tables = precompute_tables(cluster, application, config)

    num_points = tables.num_points
    cycles_tuples = tables.cycles_tuples
    deadlines = tables.deadlines_s.tolist()
    max_cycles = tables.max_cycles
    seconds_per_cycle = tables.seconds_per_cycle
    energy_rows = tables.energy_rows
    temperature_c = tables.temperature_c
    pad_to_deadline = tables.idle_until_deadline

    dvfs = cluster.dvfs
    latency_s = dvfs.transition_latency_s
    transition_energy_j = dvfs.transition_energy_j
    sensor_measure = cluster.power_sensor.measure_w
    charge_overhead = config.charge_governor_overhead
    decide = governor.decide

    # Hoist the governor's processing overhead when it is a plain class
    # attribute (every non-learning governor); learning governors expose it
    # as a property whose value changes per epoch and are read per frame.
    static_overhead = static_processing_overhead(governor)

    # One reusable FrameHint: frozen, but rebuilt in place each frame via
    # object.__setattr__.  Safe because the hint is documented as valid only
    # inside decide() — no governor retains it (the Oracle, the only reader,
    # consumes it immediately).
    hint = FrameHint(cycles_per_core=cycles_tuples[0], deadline_s=deadlines[0])
    set_hint = object.__setattr__

    initial_index = cluster.current_index
    current = initial_index
    initial_time_s = cluster.time_s
    time_s = initial_time_s
    previous: Optional[EpochObservation] = None
    previous_exploration = governor.exploration_count
    exploration_frozen = governor.exploration_frozen
    transitions: List[DVFSTransition] = []

    # Column accumulators (lists of native scalars; see FrameColumns).
    col_opp: List[int] = []
    col_busy: List[float] = []
    col_overhead: List[float] = []
    col_duration: List[float] = []
    col_energy: List[float] = []
    col_power: List[float] = []
    col_measured: List[float] = []
    col_explored: List[bool] = []
    opp_append = col_opp.append
    busy_append = col_busy.append
    overhead_append = col_overhead.append
    duration_append = col_duration.append
    energy_append = col_energy.append
    power_append = col_power.append
    measured_append = col_measured.append
    explored_append = col_explored.append

    frame_rows = zip(cycles_tuples, max_cycles, deadlines, energy_rows)
    for frame_index, (cycles, frame_max_cycles, deadline, energy_row) in enumerate(
        frame_rows
    ):
        set_hint(hint, "cycles_per_core", cycles)
        set_hint(hint, "deadline_s", deadline)

        index = decide(previous, hint)
        if index != current:
            if not 0 <= index < num_points:
                raise InvalidOperatingPointError(
                    f"operating-point index {index} out of range (0..{num_points - 1})"
                )
            transitions.append(
                DVFSTransition(time_s, current, index, latency_s, transition_energy_j)
            )
            current = index
            transition_latency = latency_s
            energy = energy_row[index] + transition_energy_j
        else:
            transition_latency = 0.0
            energy = energy_row[index] + 0.0

        # Same two operations the scalar engine performs per frame: one
        # multiply by the hoisted reciprocal, one max against the deadline.
        busy = frame_max_cycles * seconds_per_cycle[index]
        if pad_to_deadline and deadline > busy:
            duration = deadline + transition_latency
        else:
            duration = busy + transition_latency
        power = energy / duration if duration > 0 else 0.0
        time_s += duration
        measured = sensor_measure(power, time_s)

        if charge_overhead:
            if static_overhead is None:
                overhead = governor.processing_overhead_s + transition_latency
            else:
                overhead = static_overhead + transition_latency
        else:
            overhead = 0.0

        if exploration_frozen:
            explored = False
        else:
            exploration = governor.exploration_count
            explored = exploration > previous_exploration
            previous_exploration = exploration
            exploration_frozen = governor.exploration_frozen

        # One reusable observation, rebuilt in place (same rationale as the
        # hint: observations are valid only inside the next decide(); no
        # governor retains them).
        if previous is None:
            previous = EpochObservation(
                frame_index,
                cycles,
                busy,
                duration,
                deadline,
                index,
                energy,
                measured,
                overhead,
            )
        else:
            set_hint(previous, "epoch_index", frame_index)
            set_hint(previous, "cycles_per_core", cycles)
            set_hint(previous, "busy_time_s", busy)
            set_hint(previous, "interval_s", duration)
            set_hint(previous, "reference_time_s", deadline)
            set_hint(previous, "operating_index", index)
            set_hint(previous, "energy_j", energy)
            set_hint(previous, "measured_power_w", measured)
            set_hint(previous, "overhead_time_s", overhead)
        opp_append(index)
        busy_append(busy)
        overhead_append(overhead)
        duration_append(duration)
        energy_append(energy)
        power_append(power)
        measured_append(measured)
        explored_append(explored)

    # -- columnar result (records materialise lazily) --------------------------
    indices = np.asarray(col_opp, dtype=np.intp)
    rows = np.arange(num_frames)
    busy_arr = np.asarray(col_busy)
    overhead_arr = np.asarray(col_overhead)
    frequencies_mhz = np.asarray(tables.frequencies_mhz)
    columns = FrameColumns(
        index=list(range(num_frames)),
        operating_index=col_opp,
        frequency_mhz=frequencies_mhz[indices].tolist(),
        cycles_per_core=cycles_tuples,
        busy_time_s=col_busy,
        overhead_time_s=col_overhead,
        frame_time_s=(busy_arr + overhead_arr).tolist(),
        interval_s=col_duration,
        deadline_s=deadlines,
        energy_j=col_energy,
        average_power_w=col_power,
        measured_power_w=col_measured,
        temperature_c=[temperature_c] * num_frames,
        explored=col_explored,
    )
    result = SimulationResult(
        governor_name=governor.name,
        application_name=application.name,
        reference_time_s=application.reference_time_s,
        columns=columns,
    )

    # -- leave the cluster in scalar-equivalent aggregate state ----------------
    cycles_arr = tables.cycles
    spc = np.asarray(tables.seconds_per_cycle)
    busy_times = cycles_arr * spc[indices][:, None]
    intervals = tables.interval[rows, indices]
    idle_times = intervals[:, None] - busy_times
    core_uncore_energy = tables.energy[rows, indices]
    previous_indices = np.empty_like(indices)
    previous_indices[0] = initial_index
    previous_indices[1:] = indices[:-1]
    changed = indices != previous_indices
    transition_energy = np.where(changed, transition_energy_j, 0.0)
    # The loop accumulated the clock sequentially, exactly as the scalar
    # engine does; advancing by (final - initial) leaves the cluster clock
    # bit-identical to a scalar run whenever the run started at time 0.
    fastpath._sync_cluster(
        cluster,
        np,
        cycles=cycles_arr,
        busy_times=busy_times,
        idle_times=idle_times,
        frequencies_hz=np.asarray(tables.frequencies_hz),
        indices=indices,
        intervals=intervals,
        core_uncore_energy=core_uncore_energy,
        transition_energy=transition_energy,
        transitions=transitions,
        total_duration=time_s - initial_time_s,
    )

    result.exploration_count = governor.exploration_count
    result.converged_epoch = governor.converged_epoch
    return result


def static_processing_overhead(governor: "Governor") -> Optional[float]:
    """The governor's per-epoch overhead when hoistable, else ``None``.

    Hoisting is safe exactly when ``processing_overhead_s`` resolves to a
    plain float class attribute that is not shadowed on the instance —
    learning governors override it as a property (its value changes per
    epoch) and must be read every frame.
    """
    descriptor = getattr(type(governor), "processing_overhead_s", None)
    if not isinstance(descriptor, float):
        return None
    instance_dict = getattr(governor, "__dict__", None)
    if instance_dict is not None and "processing_overhead_s" in instance_dict:
        return None
    return descriptor
