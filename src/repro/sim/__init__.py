"""Simulation engine: closed-loop application / governor / platform runs.

The engine steps a frame-based application through the platform model one
decision epoch at a time, exactly mirroring the paper's closed-loop RTM
operation (Fig. 2a): at each epoch the governor observes the previous
epoch's PMU and sensor data, chooses a V-F operating point, the platform
executes the frame at that point, and the resulting time/energy feed the
next decision.

Execution strategies are pluggable backends selected per run by capability
negotiation (see :mod:`repro.sim.backends`): the NumPy-vectorised trace
engine in :mod:`repro.sim.fastpath` for static-schedule governors, the
isothermal table-driven closed loop in :mod:`repro.sim.tablepath`, the
thermally-coupled table-driven closed loop in :mod:`repro.sim.thermalpath`,
and the universal scalar reference loop in :mod:`repro.sim.scalarpath`.
"""

from repro.sim.epoch import FrameColumns, FrameRecord
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.sim.backends import (
    BackendCapabilities,
    EngineBackend,
    EngineRequest,
    backend_names,
    capability_matrix,
    negotiate,
    register_backend,
    unregister_backend,
)
from repro.sim.fastpath import fast_path_eligible, simulate_schedule
from repro.sim.tablepath import (
    precompute_tables,
    simulate_closed_loop,
    table_path_eligible,
)
from repro.sim.thermalpath import thermal_path_eligible
from repro.sim.results import SimulationResult
from repro.sim.metrics import (
    MetricsSummary,
    summarize_records,
    summarize_result,
    frequency_histogram,
)
from repro.sim.runner import ExperimentRunner, GovernorFactory
from repro.sim.comparison import ComparisonRow, compare_to_oracle

__all__ = [
    "FrameColumns",
    "FrameRecord",
    "SimulationConfig",
    "SimulationEngine",
    "SimulationResult",
    "BackendCapabilities",
    "EngineBackend",
    "EngineRequest",
    "backend_names",
    "capability_matrix",
    "negotiate",
    "register_backend",
    "unregister_backend",
    "thermal_path_eligible",
    "fast_path_eligible",
    "simulate_schedule",
    "precompute_tables",
    "simulate_closed_loop",
    "table_path_eligible",
    "MetricsSummary",
    "summarize_records",
    "summarize_result",
    "frequency_histogram",
    "ExperimentRunner",
    "GovernorFactory",
    "ComparisonRow",
    "compare_to_oracle",
]
