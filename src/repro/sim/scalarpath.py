"""Frame-by-frame scalar simulation loop — the reference engine.

This is the universal fallback every fast engine is validated against: one
:meth:`Cluster.execute_workload <repro.platform.cluster.Cluster.execute_workload>`
call per frame, no precomputation, no NumPy requirement, correct for every
(cluster, governor, config) combination including thermally-coupled runs.
It used to live inside :class:`~repro.sim.engine.SimulationEngine`; with
engine selection moved to the backend registry in :mod:`repro.sim.backends`
the loop is a plain module-level function like its fast siblings.
"""

from __future__ import annotations

from typing import Optional, Sequence, TYPE_CHECKING, Tuple

from repro.rtm.governor import EpochObservation, FrameHint
from repro.sim.epoch import FrameRecord
from repro.sim.results import SimulationResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import Cluster
    from repro.rtm.governor import Governor
    from repro.sim.engine import SimulationConfig
    from repro.workload.application import Application


def _epoch_outputs(
    frame_index: int,
    per_core: Sequence[float],
    execution,
    deadline_s: float,
    overhead_s: float,
    explored: bool,
) -> Tuple[FrameRecord, EpochObservation]:
    """Build the epoch's record and the governor's observation from one snapshot.

    The two views share every measured quantity; deriving both from a single
    call keeps them from drifting apart.
    """
    busy_time_s = max(core_result.busy_time_s for core_result in execution.core_results)
    cycles = tuple(per_core)
    record = FrameRecord(
        index=frame_index,
        operating_index=execution.operating_index,
        frequency_mhz=execution.operating_point.frequency_mhz,
        cycles_per_core=cycles,
        busy_time_s=busy_time_s,
        overhead_time_s=overhead_s,
        frame_time_s=busy_time_s + overhead_s,
        interval_s=execution.duration_s,
        deadline_s=deadline_s,
        energy_j=execution.energy_j,
        average_power_w=execution.average_power_w,
        measured_power_w=execution.measured_power_w,
        temperature_c=execution.temperature_c,
        explored=explored,
    )
    observation = EpochObservation(
        epoch_index=frame_index,
        cycles_per_core=cycles,
        busy_time_s=busy_time_s,
        interval_s=execution.duration_s,
        reference_time_s=deadline_s,
        operating_index=execution.operating_index,
        energy_j=execution.energy_j,
        measured_power_w=execution.measured_power_w,
        overhead_time_s=overhead_s,
        throttle_events=execution.throttle_events,
    )
    return record, observation


def simulate_scalar(
    cluster: "Cluster",
    application: "Application",
    governor: "Governor",
    config: "SimulationConfig",
) -> SimulationResult:
    """Run the closed governor loop one frame at a time on the live cluster.

    The caller resets the cluster and sets the governor up first, exactly as
    for the fast engines.
    """
    from repro.sim import tablepath

    result = SimulationResult(
        governor_name=governor.name,
        application_name=application.name,
        reference_time_s=application.reference_time_s,
    )
    previous_observation: Optional[EpochObservation] = None
    previous_exploration_count = governor.exploration_count
    exploration_frozen = governor.exploration_frozen
    charge_overhead = config.charge_governor_overhead
    idle_until_deadline = config.idle_until_deadline
    # Hoisted per-frame constants: the processing overhead when it is a
    # plain class attribute (non-learning governors), and one reusable
    # FrameHint rebuilt in place (no governor retains hints beyond
    # decide(); the Oracle, the only reader, consumes it immediately).
    static_overhead = tablepath.static_processing_overhead(governor)
    hint: Optional[FrameHint] = None
    set_hint = object.__setattr__
    records_append = result.records.append

    for frame in application:
        per_core = frame.cycles_per_core(cluster.num_cores)
        if hint is None:
            hint = FrameHint(cycles_per_core=per_core, deadline_s=frame.deadline_s)
        else:
            set_hint(hint, "cycles_per_core", per_core)
            set_hint(hint, "deadline_s", frame.deadline_s)

        operating_index = governor.decide(previous_observation, hint)
        transition = cluster.set_operating_index(operating_index)

        minimum_interval = frame.deadline_s if idle_until_deadline else 0.0
        execution = cluster.execute_workload(
            per_core,
            minimum_interval_s=minimum_interval,
            pending_transition=transition,
        )

        overhead = 0.0
        if charge_overhead:
            if static_overhead is None:
                overhead = governor.processing_overhead_s + transition.latency_s
            else:
                overhead = static_overhead + transition.latency_s

        if exploration_frozen:
            explored = False
        else:
            exploration_count = governor.exploration_count
            explored = exploration_count > previous_exploration_count
            previous_exploration_count = exploration_count
            exploration_frozen = governor.exploration_frozen

        record, previous_observation = _epoch_outputs(
            frame_index=frame.index,
            per_core=per_core,
            execution=execution,
            deadline_s=frame.deadline_s,
            overhead_s=overhead,
            explored=explored,
        )
        records_append(record)

    result.exploration_count = governor.exploration_count
    result.converged_epoch = governor.converged_epoch
    return result
