"""Engine backend protocol, capability negotiation and registry.

Engine selection used to be an if/elif ladder inside
:class:`~repro.sim.engine.SimulationEngine` with per-engine eligibility
checks duplicated across the engine modules.  This module replaces that
with the job-matching shape used by batch schedulers: every execution
strategy is an :class:`EngineBackend` that *declares* its capabilities, and
:func:`negotiate` matches those declarations against the concrete
(scenario, cluster, governor) triple — so adding a backend is one
``register_backend`` call, with no engine edits.

Built-in backends, in negotiation order (highest priority first):

=========== ======== ================ ====== ===== ===== ===========================
name        thermal  static schedule  tables numpy batch module
=========== ======== ================ ====== ===== ===== ===========================
fastpath    no       required         no     yes   no    :mod:`repro.sim.fastpath`
jitpath     yes      no               yes    yes   yes   :mod:`repro.sim.jitpath`
tablepath   no       no               yes    yes   no    :mod:`repro.sim.tablepath`
thermalpath yes      no               yes    yes   no    :mod:`repro.sim.thermalpath`
scalar      yes      no               no     no    no    :mod:`repro.sim.scalarpath`
batchpath   yes      no               yes    yes   yes   :mod:`repro.sim.batchpath`
=========== ======== ================ ====== ===== ===== ===========================

``jitpath`` only negotiates when numba is importable (the ``jit`` packaging
extra) and the ``REPRO_DISABLE_JIT`` kill-switch is unset; without numba the
registry behaves exactly as if the backend did not exist.

``scalar`` is the reference implementation every other backend is
validated against; it accepts every request.  ``auto`` negotiation walks
the registry in priority order and picks the first backend whose
capabilities admit the request; an explicitly requested backend is instead
*validated* against the request and the mismatch reported as a clear
:class:`~repro.errors.SimulationError`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.errors import SimulationError
from repro.sim import batchpath, fastpath, jitpath, scalarpath, tablepath, thermalpath
from repro.sim.results import SimulationResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import Cluster
    from repro.rtm.governor import Governor
    from repro.sim.engine import SimulationConfig
    from repro.workload.application import Application

#: Name of the reference backend (and the target of the deprecated
#: ``SimulationConfig.prefer_fast_path=False`` switch).
SCALAR = "scalar"
FASTPATH = "fastpath"
JITPATH = "jitpath"
TABLEPATH = "tablepath"
THERMALPATH = "thermalpath"
BATCHPATH = "batchpath"

#: The wildcard engine request: negotiate the fastest eligible backend.
AUTO = "auto"


@dataclass(frozen=True)
class BackendCapabilities:
    """What an :class:`EngineBackend` can (or must) work with.

    Attributes
    ----------
    supports_thermal:
        The backend reproduces the scalar engine on clusters whose RC
        thermal model is enabled (temperature-dependent leakage).
    requires_static_schedule:
        The backend only handles governors whose complete operating-point
        schedule is knowable up front (probed once per negotiation with
        :meth:`~repro.rtm.governor.Governor.static_schedule`).
    requires_numpy:
        The backend needs NumPy importable.
    supports_tables:
        The backend consumes precomputed physics tables and will call the
        engine's table provider (the campaign executor's per-worker cache
        hook) when one is supplied.
    supports_batch:
        The backend can step multiple compatible scenarios simultaneously
        (a batch axis over scenarios sharing an application trace, cluster
        physics and thermal mode).  The campaign batch planner only
        dispatches scenario groups to backends declaring this flag.
    supports_trace_capture:
        The backend records a complete, deterministic decision trace on its
        results: per-frame operating points and timing/energy columns on
        the :class:`~repro.sim.results.SimulationResult`, DVFS transitions
        on the cluster's actuator, and governor state reachable through
        :meth:`~repro.rtm.governor.Governor.decision_state`.  The parity
        harness (:mod:`repro.testing.parity`) only replays through backends
        declaring this flag; it defaults to False so third-party backends
        opt in deliberately rather than silently joining the bit-identity
        contract.
    """

    supports_thermal: bool = False
    requires_static_schedule: bool = False
    requires_numpy: bool = False
    supports_tables: bool = False
    supports_batch: bool = False
    supports_trace_capture: bool = False


_SCHEDULE_UNPROBED = object()


@dataclass
class EngineRequest:
    """One concrete run to place on a backend.

    Bundles the (cluster, application, governor, config) quadruple plus the
    optional table provider.  The governor's static schedule is probed at
    most once per request (the probe can be as expensive as the Oracle's
    full per-frame optimisation) and memoised for the winning backend.
    """

    cluster: "Cluster"
    application: "Application"
    governor: "Governor"
    config: "SimulationConfig"
    table_provider: Optional[object] = None
    _schedule: object = field(default=_SCHEDULE_UNPROBED, repr=False)

    def static_schedule(self) -> Optional[Sequence[int]]:
        """The governor's precomputed schedule, or ``None`` (memoised)."""
        if self._schedule is _SCHEDULE_UNPROBED:
            self._schedule = self.governor.static_schedule(self.application)
        return self._schedule

    def tables(self) -> Optional[object]:
        """Tables from the request's provider, or ``None`` to build fresh.

        Providers are invoked lazily — only when a table-consuming backend
        actually won the negotiation — and their return value is always
        re-validated by the consuming engine, so a stale cache entry
        degrades to a rebuild, never to wrong numbers.
        """
        if self.table_provider is None:
            return None
        return self.table_provider(self.cluster, self.application, self.config)


class EngineBackend(ABC):
    """One execution strategy for a simulation run.

    Subclasses declare a unique ``name``, their ``capabilities`` and a
    ``priority`` (higher wins during ``auto`` negotiation), and implement
    :meth:`run`.  :meth:`rejection_reason` derives eligibility from the
    declared capabilities; backends with constraints the capability flags
    cannot express may extend it (call ``super()`` first and keep returning
    a human-readable reason, never raising).
    """

    #: Unique registry name (also the ``--engine`` CLI value).
    name: str = "backend"
    #: Declared capabilities, negotiated against each request.
    capabilities: BackendCapabilities = BackendCapabilities()
    #: Negotiation rank: higher-priority backends are preferred by ``auto``.
    priority: int = 0

    def numpy_available(self) -> bool:
        """Whether this backend's array module is importable.

        Built-in backends read their own engine module's import slot so the
        per-module test seam (monkeypatching e.g. ``fastpath._np``) governs
        exactly that backend's negotiation and no other's.  Third-party
        backends inherit a plain importability probe.
        """
        try:
            import numpy  # noqa: F401
        except ImportError:  # pragma: no cover - numpy-less installs
            return False
        return True

    def rejection_reason(self, request: EngineRequest) -> Optional[str]:
        """Why this backend cannot run ``request``, or ``None`` if it can."""
        capabilities = self.capabilities
        if capabilities.requires_numpy and not self.numpy_available():
            return "requires numpy, which is not importable"
        if (
            not capabilities.supports_thermal
            and request.cluster.thermal_model.enabled
        ):
            return (
                "does not support thermally-enabled clusters "
                "(temperature-dependent leakage)"
            )
        if (
            capabilities.requires_static_schedule
            and request.static_schedule() is None
        ):
            return (
                f"requires a static schedule, which governor "
                f"{request.governor.name!r} does not expose"
            )
        return None

    @abstractmethod
    def run(self, request: EngineRequest) -> SimulationResult:
        """Execute the request and return its result."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, priority={self.priority})"


# ---------------------------------------------------------------------------
# Built-in backends.
# ---------------------------------------------------------------------------
class ScalarBackend(EngineBackend):
    """The frame-by-frame reference loop; accepts every request."""

    name = SCALAR
    capabilities = BackendCapabilities(
        supports_thermal=True, supports_trace_capture=True
    )
    priority = 0

    def run(self, request: EngineRequest) -> SimulationResult:
        return scalarpath.simulate_scalar(
            request.cluster, request.application, request.governor, request.config
        )


class FastPathBackend(EngineBackend):
    """NumPy-vectorised trace evaluation for static-schedule governors."""

    name = FASTPATH
    capabilities = BackendCapabilities(
        requires_static_schedule=True,
        requires_numpy=True,
        supports_trace_capture=True,
    )
    priority = 30

    def numpy_available(self) -> bool:
        return fastpath._np is not None

    def run(self, request: EngineRequest) -> SimulationResult:
        schedule = request.static_schedule()
        if schedule is None:
            raise SimulationError(
                f"governor {request.governor.name!r} exposes no static schedule"
            )
        return fastpath.simulate_schedule(
            request.cluster,
            request.application,
            request.governor,
            request.config,
            schedule,
        )


class JitPathBackend(EngineBackend):
    """Compiled (numba) closed-loop kernels over precomputed physics tables.

    Out-prioritises ``tablepath``/``thermalpath`` so ``auto`` negotiation
    takes the compiled frame loop whenever numba is importable and the
    request is one the kernels replicate bit for bit: exactly the three
    paper governors (ondemand, conservative, RL — subclasses fall through,
    since they may override hooks the kernel inlines), noiseless
    non-recording sensors, and exact-mode thermal leakage.  Everything else
    — and every run on a machine without numba, or with the
    ``REPRO_DISABLE_JIT`` kill-switch set — negotiates exactly as if this
    backend did not exist.
    """

    name = JITPATH
    capabilities = BackendCapabilities(
        supports_thermal=True,
        requires_numpy=True,
        supports_tables=True,
        supports_batch=True,
        supports_trace_capture=True,
    )
    priority = 25

    def numpy_available(self) -> bool:
        return jitpath._np is not None

    def rejection_reason(self, request: EngineRequest) -> Optional[str]:
        reason = super().rejection_reason(request)
        if reason is not None:
            return reason
        if not jitpath.available():
            return (
                "the compiled kernel path is unavailable "
                "(numba not importable, or REPRO_DISABLE_JIT set)"
            )
        return jitpath.unsupported_reason(request.cluster, request.governor)

    def run(self, request: EngineRequest) -> SimulationResult:
        return jitpath.simulate_closed_loop(
            request.cluster,
            request.application,
            request.governor,
            request.config,
            tables=request.tables(),
        )


class TablePathBackend(EngineBackend):
    """Isothermal table-driven closed loop (O(1) physics per frame)."""

    name = TABLEPATH
    capabilities = BackendCapabilities(
        requires_numpy=True, supports_tables=True, supports_trace_capture=True
    )
    priority = 20

    def numpy_available(self) -> bool:
        return tablepath._np is not None

    def run(self, request: EngineRequest) -> SimulationResult:
        return tablepath.simulate_closed_loop(
            request.cluster,
            request.application,
            request.governor,
            request.config,
            tables=request.tables(),
        )


class ThermalPathBackend(EngineBackend):
    """Thermally-coupled table-driven closed loop (live RC state)."""

    name = THERMALPATH
    capabilities = BackendCapabilities(
        supports_thermal=True,
        requires_numpy=True,
        supports_tables=True,
        supports_trace_capture=True,
    )
    priority = 10

    def numpy_available(self) -> bool:
        return thermalpath._np is not None

    def run(self, request: EngineRequest) -> SimulationResult:
        return thermalpath.simulate_closed_loop(
            request.cluster,
            request.application,
            request.governor,
            request.config,
            tables=request.tables(),
        )


class BatchPathBackend(EngineBackend):
    """Batched multi-scenario engine (batch axis over compatible scenarios).

    On a single request it degrades to a batch of one, which is strictly
    slower than ``tablepath``/``thermalpath`` (same per-frame maths, plus
    the batch bookkeeping) — hence the negative priority: ``auto`` never
    selects it.  It earns its keep when the campaign batch planner hands a
    *group* of compatible scenarios to :func:`repro.sim.batchpath.run_batch`
    directly, amortising one frame loop across the whole group.
    """

    name = BATCHPATH
    capabilities = BackendCapabilities(
        supports_thermal=True,
        requires_numpy=True,
        supports_tables=True,
        supports_batch=True,
        supports_trace_capture=True,
    )
    priority = -10

    def numpy_available(self) -> bool:
        return batchpath._np is not None

    def run(self, request: EngineRequest) -> SimulationResult:
        return batchpath.simulate_batch(
            [(request.cluster, request.governor)],
            request.application,
            request.config,
            tables=request.tables(),
        )[0]


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------
_BACKENDS: Dict[str, EngineBackend] = {}


def register_backend(backend: EngineBackend, replace: bool = False) -> EngineBackend:
    """Register ``backend`` under its name; returns it for chaining.

    Third-party strategies register here (typically at import time of an
    importable module, so process-pool campaign workers resolve them too)
    and immediately participate in ``auto`` negotiation by priority — no
    engine edits required.
    """
    name = backend.name
    if not name or name == AUTO:
        raise SimulationError(f"invalid engine backend name {name!r}")
    if name in _BACKENDS and not replace:
        raise SimulationError(
            f"engine backend {name!r} is already registered "
            f"(pass replace=True to override)"
        )
    _BACKENDS[name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a registered backend (primarily for tests and extensions)."""
    if name not in _BACKENDS:
        raise SimulationError(f"no engine backend named {name!r} is registered")
    del _BACKENDS[name]


def backend(name: str) -> EngineBackend:
    """The registered backend called ``name``."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise SimulationError(
            f"unknown engine backend {name!r}; registered backends: "
            f"{', '.join(backend_names())}"
        ) from None


def backend_names() -> List[str]:
    """Registered backend names in negotiation (priority) order."""
    return [entry.name for entry in ranked_backends()]


def ranked_backends() -> List[EngineBackend]:
    """Registered backends, highest negotiation priority first.

    Ties break towards the earlier registration, so a later-registered
    backend must out-prioritise a built-in to pre-empt it.
    """
    return sorted(
        _BACKENDS.values(),
        key=lambda entry: -entry.priority,
    )


def capability_matrix() -> Dict[str, BackendCapabilities]:
    """``name -> capabilities`` for every registered backend (for reporting)."""
    return {entry.name: entry.capabilities for entry in ranked_backends()}


def trace_capture_backends(request: EngineRequest) -> List[EngineBackend]:
    """Backends eligible to replay ``request`` with full decision-trace capture.

    The differential replay harness in :mod:`repro.testing.parity` runs one
    scenario through *every* backend returned here and diffs the decision
    traces, so the list is the probe of which (governor x backend) pairs the
    bit-identity contract currently covers: backends must both declare
    :attr:`BackendCapabilities.supports_trace_capture` and accept the
    request's capabilities.  Ordered like :func:`ranked_backends`; includes
    the reference ``scalar`` backend.
    """
    return [
        entry
        for entry in ranked_backends()
        if entry.capabilities.supports_trace_capture
        and entry.rejection_reason(request) is None
    ]


def negotiate(request: EngineRequest, engine: str = AUTO) -> EngineBackend:
    """Select the backend that will run ``request``.

    ``engine`` is either :data:`AUTO` — walk the registry in priority order
    and return the first backend whose declared capabilities admit the
    request — or a backend name, which is validated against the request's
    capabilities and rejected with a clear error on mismatch.  The
    deprecated ``config.prefer_fast_path=False`` switch maps to an explicit
    request for the reference backend.
    """
    if engine in (None, "", AUTO):
        if not request.config.prefer_fast_path:
            engine = SCALAR
        else:
            for candidate in ranked_backends():
                if candidate.rejection_reason(request) is None:
                    return candidate
            raise SimulationError(
                "no registered engine backend accepts this run "
                f"(registered: {', '.join(backend_names())})"
            )
    selected = backend(engine)
    reason = selected.rejection_reason(request)
    if reason is not None:
        raise SimulationError(
            f"engine backend {engine!r} cannot run "
            f"{request.application.name!r} under {request.governor.name!r} "
            f"on cluster {request.cluster.name!r}: {reason}"
        )
    return selected


register_backend(FastPathBackend())
register_backend(JitPathBackend())
register_backend(TablePathBackend())
register_backend(ThermalPathBackend())
register_backend(ScalarBackend())
register_backend(BatchPathBackend())
