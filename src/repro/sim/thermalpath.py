"""Thermally-coupled table-driven engine — fast closed loops with live RC state.

The isothermal fast engines (:mod:`repro.sim.fastpath`,
:mod:`repro.sim.tablepath`) refuse thermally-enabled clusters because they
bake complete energies per (frame, operating point) pair, which is only
sound when leakage power — a function of junction temperature — is constant
over the trace.  That exclusion is exactly backwards for this paper: the
platform it models is thermally constrained, so the scenarios closest to
the hardware reality were the ones stuck on the slow scalar loop.

This engine closes that gap.  With the RC thermal model enabled the physics
of one frame is a pure function of ``(frame, operating point, junction
temperature)``, and the temperature dependence is a *single scalar factor*:

* timing (critical-path busy time, interval, DVFS costs) is temperature
  independent and fully precomputed per (frame, operating point) in a
  :class:`~repro.platform.cluster.ThermalWorkloadTable`;
* core power splits into a precomputed dynamic part plus a static part
  ``V * (leak_scale * exp(k3*(T-55)) + k4)`` whose only per-frame work is
  one ``math.exp`` shared by every operating point (see
  :func:`repro.platform.cluster._power_decomposition`);
* the RC state update ``T' = steady + (T - steady) * exp(-dt/tau)`` needs
  one more ``math.exp`` whose argument depends only on the frame duration —
  and durations repeat heavily (deadline-padded frames all share one), so
  the decay factor is memoised per distinct duration;
* for clusters that opted into ``power_cache_bucket_c`` temperature
  quantisation, complete per-point power tables are instead filled lazily
  per *quantised* temperature (``ThermalWorkloadTable.power_slices``) —
  the temperature axis of :meth:`PowerModel.power_table
  <repro.platform.power.PowerModel.power_table>` — and those slices are
  shared across the scenarios of a campaign through the executor's
  per-worker table cache.

Every operation above uses the same IEEE arithmetic, in the same order, as
the scalar :meth:`Cluster.execute_workload
<repro.platform.cluster.Cluster.execute_workload>` path, so every quantity
a governor observes (busy time, interval, energy, measured power, overhead,
throttle events) is *bit-identical* to the scalar engine's.  Deterministic
governors therefore make the identical decision sequence, and the run
matches the scalar engine frame by frame: identical trajectories,
temperatures, miss sets, exploration counts and Q-tables
(``tests/test_thermalpath.py`` enforces all of this).

The live :class:`~repro.platform.thermal.ThermalModel`, power sensor, DVFS
actuator, meters and PMUs are left in scalar-equivalent aggregate state,
exactly as the isothermal fast engines do.

Eligibility: NumPy importable (for the table precompute and the aggregate
cluster sync).  The engine also runs correctly on thermally-*disabled*
clusters — the temperature simply never moves — though automatic selection
prefers :mod:`repro.sim.tablepath` there, whose fully-baked energies are
faster.
"""

from __future__ import annotations

from math import exp
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

try:  # NumPy is optional: without it every run takes the scalar engine.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None  # type: ignore[assignment]

from repro.errors import InvalidOperatingPointError, SimulationError
from repro.platform.cluster import ThermalWorkloadTable
from repro.platform.dvfs import DVFSTransition
from repro.rtm.governor import EpochObservation, FrameHint
from repro.sim import fastpath
from repro.sim.epoch import FrameColumns
from repro.sim.results import SimulationResult
from repro.sim.tablepath import static_processing_overhead

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import Cluster
    from repro.rtm.governor import Governor
    from repro.sim.engine import SimulationConfig
    from repro.workload.application import Application

#: Signature of a thermal table provider: builds (or fetches from a cache)
#: the precomputed :class:`ThermalWorkloadTable` for one (cluster,
#: application, config).
ThermalTableProvider = Callable[
    ["Cluster", "Application", "SimulationConfig"], ThermalWorkloadTable
]


def thermal_path_eligible(cluster: "Cluster") -> bool:
    """True when :func:`simulate_closed_loop` reproduces the scalar engine here.

    Only NumPy is required; unlike the isothermal fast paths the thermal
    model may be enabled — supporting it is this engine's whole point.
    """
    return _np is not None


def precompute_tables(
    cluster: "Cluster", application: "Application", config: "SimulationConfig"
) -> ThermalWorkloadTable:
    """Precompute the thermally-decomposed physics tables for one run.

    Thin wrapper over :meth:`Cluster.execute_thermal_workload_table` that
    extracts the frame trace from ``application``.  The returned table
    depends only on the trace, the cluster's physical constants and
    ``config.idle_until_deadline`` — it is reusable across runs and across
    governors sharing those (including its lazily-filled temperature power
    slices), which the campaign executor's per-worker cache exploits.
    """
    num_cores = cluster.num_cores
    cycles = [frame.cycles_per_core(num_cores) for frame in application]
    deadlines = [frame.deadline_s for frame in application]
    return cluster.execute_thermal_workload_table(
        cycles, deadlines, idle_until_deadline=config.idle_until_deadline
    )


def simulate_closed_loop(
    cluster: "Cluster",
    application: "Application",
    governor: "Governor",
    config: "SimulationConfig",
    tables: Optional[ThermalWorkloadTable] = None,
) -> SimulationResult:
    """Run the closed governor loop with thermally-coupled table physics.

    The cluster is used as-is (the caller resets it first, exactly as the
    scalar engine does) and is left in scalar-equivalent aggregate state:
    clock advanced, energy meter and PMUs credited, power sensor stepped
    through every frame, DVFS actuator holding the same transition history,
    thermal model holding the trajectory's final temperature and
    throttle-event count.

    ``tables`` may be supplied by a caller that cached them (see
    :func:`precompute_tables`); they are validated against the cluster's
    physics before use and rebuilt on mismatch.
    """
    np = _np
    if np is None:
        raise SimulationError("the thermally-coupled table engine requires numpy")
    num_frames = application.num_frames
    if num_frames == 0:
        raise SimulationError("cannot simulate an application with no frames")
    if (
        tables is None
        or not isinstance(tables, ThermalWorkloadTable)
        or tables.num_frames != num_frames
        or not tables.matches(cluster, config.idle_until_deadline)
    ):
        tables = precompute_tables(cluster, application, config)

    num_points = tables.num_points
    cycles_tuples = tables.cycles_tuples
    deadlines = tables.deadlines_s.tolist()
    max_cycles = tables.max_cycles
    seconds_per_cycle = tables.seconds_per_cycle
    pad_to_deadline = tables.idle_until_deadline
    idle_at_min_opp = tables.idle_at_min_opp
    uncore_power_w = tables.uncore_power_w

    # Power decomposition (exact mode) and lazy slices (bucketed mode).
    dynamic_busy = tables.dynamic_busy_w
    dynamic_idle = tables.dynamic_idle_w
    leak_scale = tables.leak_scale_a
    voltages = tables.voltages_v
    leakage_k3 = tables.leakage_k3_per_c
    leakage_k4 = tables.leakage_k4_a
    power_slices = tables.power_slices
    power_model = cluster.power_model
    vf_points = cluster.vf_table.points

    thermal_model = cluster.thermal_model
    thermal_enabled = thermal_model.enabled
    bucket_c = tables.bucket_c
    bucketed = thermal_enabled and bucket_c > 0.0
    ambient_c = tables.ambient_c
    resistance = tables.resistance_c_per_w
    throttle_c = tables.throttle_c
    # tau is recomputed per step by the scalar model; the product is
    # deterministic, so hoisting it preserves bit-identity.
    tau = tables.resistance_c_per_w * tables.capacitance_j_per_c
    decay_cache: Dict[float, float] = {}
    temperature = thermal_model.temperature_c
    theta = 0.0
    theta_temperature: Optional[float] = None
    throttle_total = 0

    dvfs = cluster.dvfs
    latency_s = dvfs.transition_latency_s
    transition_energy_j = dvfs.transition_energy_j
    sensor_measure = cluster.power_sensor.measure_w
    charge_overhead = config.charge_governor_overhead
    decide = governor.decide
    static_overhead = static_processing_overhead(governor)

    # One reusable FrameHint / EpochObservation, rebuilt in place (both are
    # documented as valid only inside the decide() call they are passed to).
    hint = FrameHint(cycles_per_core=cycles_tuples[0], deadline_s=deadlines[0])
    set_field = object.__setattr__

    initial_index = cluster.current_index
    current = initial_index
    initial_time_s = cluster.time_s
    time_s = initial_time_s
    previous: Optional[EpochObservation] = None
    previous_exploration = governor.exploration_count
    exploration_frozen = governor.exploration_frozen
    transitions: List[DVFSTransition] = []

    # Column accumulators (lists of native scalars; see FrameColumns).
    col_opp: List[int] = []
    col_busy: List[float] = []
    col_overhead: List[float] = []
    col_duration: List[float] = []
    col_core_uncore: List[float] = []
    col_energy: List[float] = []
    col_power: List[float] = []
    col_measured: List[float] = []
    col_temperature: List[float] = []
    col_explored: List[bool] = []
    opp_append = col_opp.append
    busy_append = col_busy.append
    overhead_append = col_overhead.append
    duration_append = col_duration.append
    core_uncore_append = col_core_uncore.append
    energy_append = col_energy.append
    power_append = col_power.append
    measured_append = col_measured.append
    temperature_append = col_temperature.append
    explored_append = col_explored.append

    frame_rows = zip(cycles_tuples, max_cycles, deadlines)
    for frame_index, (cycles, frame_max_cycles, deadline) in enumerate(frame_rows):
        set_field(hint, "cycles_per_core", cycles)
        set_field(hint, "deadline_s", deadline)

        index = decide(previous, hint)
        if index != current:
            if not 0 <= index < num_points:
                raise InvalidOperatingPointError(
                    f"operating-point index {index} out of range (0..{num_points - 1})"
                )
            transitions.append(
                DVFSTransition(time_s, current, index, latency_s, transition_energy_j)
            )
            current = index
            transition_latency = latency_s
            frame_transition_energy = transition_energy_j
        else:
            transition_latency = 0.0
            frame_transition_energy = 0.0

        # Same operations the scalar engine performs: one multiply by the
        # hoisted reciprocal, one max against the deadline.
        spc = seconds_per_cycle[index]
        busy = frame_max_cycles * spc
        if pad_to_deadline and deadline > busy:
            interval = deadline
        else:
            interval = busy

        # Per-core powers at the start-of-frame junction temperature,
        # mirroring Cluster.core_power_w exactly: quantised slice lookup
        # when the cluster opted into bucketing, otherwise the one-exp
        # decomposition of the exact leakage evaluation.
        idle_index = 0 if idle_at_min_opp else index
        if bucketed:
            quantised = round(temperature / bucket_c) * bucket_c
            slices = power_slices.get(quantised)
            if slices is None:
                slices = power_model.power_table(vf_points, quantised)
                power_slices[quantised] = slices
            busy_power = slices[0][index]
            idle_power = slices[1][idle_index]
        else:
            if temperature != theta_temperature:
                theta = exp(leakage_k3 * (temperature - 55.0))
                theta_temperature = temperature
            busy_power = dynamic_busy[index] + voltages[index] * (
                leak_scale[index] * theta + leakage_k4
            )
            idle_power = dynamic_idle[idle_index] + voltages[idle_index] * (
                leak_scale[idle_index] * theta + leakage_k4
            )

        # Core energy accumulated core by core in scalar summation order;
        # the scalar idle clamp max(0, interval - busy) is a numerical no-op
        # because busy <= busy_max <= interval for the chosen point.
        core_energy = 0.0
        for core_cycles in cycles:
            core_busy = core_cycles * spc
            core_energy += busy_power * core_busy + idle_power * (interval - core_busy)
        core_uncore = core_energy + uncore_power_w * interval
        energy = core_uncore + frame_transition_energy
        duration = interval + transition_latency
        power = energy / duration if duration > 0 else 0.0

        # RC state update with the scalar model's exact operations; the
        # decay factor depends only on the duration and is memoised.
        frame_throttle = 0
        if thermal_enabled and duration > 0:
            steady = ambient_c + power * resistance
            decay = decay_cache.get(duration)
            if decay is None:
                decay = exp(-duration / tau)
                decay_cache[duration] = decay
            temperature = steady + (temperature - steady) * decay
            if temperature >= throttle_c:
                throttle_total += 1
                frame_throttle = 1

        time_s += duration
        measured = sensor_measure(power, time_s)

        if charge_overhead:
            if static_overhead is None:
                overhead = governor.processing_overhead_s + transition_latency
            else:
                overhead = static_overhead + transition_latency
        else:
            overhead = 0.0

        if exploration_frozen:
            explored = False
        else:
            exploration = governor.exploration_count
            explored = exploration > previous_exploration
            previous_exploration = exploration
            exploration_frozen = governor.exploration_frozen

        if previous is None:
            previous = EpochObservation(
                frame_index,
                cycles,
                busy,
                duration,
                deadline,
                index,
                energy,
                measured,
                overhead,
                frame_throttle,
            )
        else:
            set_field(previous, "epoch_index", frame_index)
            set_field(previous, "cycles_per_core", cycles)
            set_field(previous, "busy_time_s", busy)
            set_field(previous, "interval_s", duration)
            set_field(previous, "reference_time_s", deadline)
            set_field(previous, "operating_index", index)
            set_field(previous, "energy_j", energy)
            set_field(previous, "measured_power_w", measured)
            set_field(previous, "overhead_time_s", overhead)
            set_field(previous, "throttle_events", frame_throttle)
        opp_append(index)
        busy_append(busy)
        overhead_append(overhead)
        duration_append(duration)
        core_uncore_append(core_uncore)
        energy_append(energy)
        power_append(power)
        measured_append(measured)
        temperature_append(temperature)
        explored_append(explored)

    # -- columnar result (records materialise lazily) --------------------------
    indices = np.asarray(col_opp, dtype=np.intp)
    busy_arr = np.asarray(col_busy)
    overhead_arr = np.asarray(col_overhead)
    frequencies_mhz = np.asarray(tables.frequencies_mhz)
    columns = FrameColumns(
        index=list(range(num_frames)),
        operating_index=col_opp,
        frequency_mhz=frequencies_mhz[indices].tolist(),
        cycles_per_core=cycles_tuples,
        busy_time_s=col_busy,
        overhead_time_s=col_overhead,
        frame_time_s=(busy_arr + overhead_arr).tolist(),
        interval_s=col_duration,
        deadline_s=deadlines,
        energy_j=col_energy,
        average_power_w=col_power,
        measured_power_w=col_measured,
        temperature_c=col_temperature,
        explored=col_explored,
    )
    result = SimulationResult(
        governor_name=governor.name,
        application_name=application.name,
        reference_time_s=application.reference_time_s,
        columns=columns,
    )

    # -- leave the cluster in scalar-equivalent aggregate state ----------------
    cycles_arr = tables.cycles
    spc_arr = np.asarray(tables.seconds_per_cycle)
    rows = np.arange(num_frames)
    busy_times = cycles_arr * spc_arr[indices][:, None]
    intervals = tables.interval[rows, indices]
    idle_times = intervals[:, None] - busy_times
    previous_indices = np.empty_like(indices)
    previous_indices[0] = initial_index
    previous_indices[1:] = indices[:-1]
    changed = indices != previous_indices
    transition_energy = np.where(changed, transition_energy_j, 0.0)
    fastpath._sync_cluster(
        cluster,
        np,
        cycles=cycles_arr,
        busy_times=busy_times,
        idle_times=idle_times,
        frequencies_hz=np.asarray(tables.frequencies_hz),
        indices=indices,
        intervals=intervals,
        core_uncore_energy=np.asarray(col_core_uncore),
        transition_energy=transition_energy,
        transitions=transitions,
        total_duration=time_s - initial_time_s,
    )
    thermal_model.absorb_state(temperature, throttle_total)

    result.exploration_count = governor.exploration_count
    result.converged_epoch = governor.converged_epoch
    return result
