"""Compiled (numba JIT) closed-loop engine for the paper's frame governors.

The table-driven engines (:mod:`repro.sim.tablepath`,
:mod:`repro.sim.thermalpath`) reduced the per-frame physics to O(1) table
lookups, but every frame still pays Python bytecode dispatch for the
governor's ``decide()`` and — for the RL family — a chain of small-object
operations (deque update, reward arithmetic, Q-row scans, ε bookkeeping).
This module moves the *entire* frame loop into one numba ``@njit`` kernel
operating on the precomputed ``(frame x operating-point)`` tables: the
threshold governors' decide logic (ondemand's proportional scale-down with
hold windows, conservative's stepper), the RL chain (slack tracking ->
reward -> state discretisation -> Bellman update -> ε-greedy selection with
the EPD/UPD exploration policies), the sampled/quantised power sensor, and
the thermal one-exp leakage + RC-decay update.

Bit-identity to the scalar reference is the contract, not a tolerance:

* every floating-point operation is performed in the same order with the
  same IEEE semantics as the scalar/table engines (LLVM does not reassociate
  float arithmetic without ``fastmath``, which this module never enables);
* the agent's ``random.Random`` stream is preserved exactly — uniforms are
  pre-drawn host-side from the live generator, the kernel consumes them in
  the same order ``update_and_select`` would, and the generator is rewound
  and replayed to the consumed count afterwards;
* all governor/sensor/thermal hidden state is read before the kernel and
  written back afterwards, so a jitpath run leaves the governor, cluster,
  sensor and thermal model exactly as a scalar run would.

numba is optional (the ``jit`` packaging extra).  Without it — or with the
``REPRO_DISABLE_JIT`` kill-switch set — :func:`available` is False, the
backend drops out of negotiation, and behaviour is identical to a build
without this module.  The kernels themselves are plain Python functions
over numpy arrays; ``@njit`` is applied only when numba is importable, so
the same code runs (slowly, but bit-identically) in interpreted mode —
which is exactly how the equivalence suite exercises it on numba-less
machines.

Supported requests (anything else is rejected during negotiation and falls
through to ``tablepath``/``thermalpath``/``scalar``):

* governors: exactly ``OndemandGovernor``, ``ConservativeGovernor`` or
  ``RLGovernor`` (subclasses may override hooks the kernel inlines, so they
  are *not* accepted);
* sensors: noiseless, non-recording (the INA231 defaults) — Gaussian noise
  draws and history appends cannot be replicated in-kernel;
* thermal: exact-mode leakage only (``power_cache_bucket_c`` quantisation
  keeps a lazily-filled dict the kernel cannot grow).
"""

from __future__ import annotations

import math
from collections import deque
from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING

try:  # NumPy is optional: without it every run takes the scalar engine.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None  # type: ignore[assignment]

from repro import _compat
from repro.errors import SimulationError
from repro.governors.conservative import ConservativeGovernor
from repro.governors.ondemand import OndemandGovernor
from repro.platform.cluster import ThermalWorkloadTable, WorkloadTable
from repro.platform.dvfs import DVFSTransition
from repro.rtm.exploration import ExponentialPolicy, UniformPolicy
from repro.rtm.rl_governor import RLGovernor
from repro.sim import fastpath, tablepath, thermalpath
from repro.sim.epoch import FrameColumns
from repro.sim.results import SimulationResult
from repro.sim.tablepath import static_processing_overhead

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import Cluster
    from repro.rtm.governor import Governor
    from repro.sim.engine import SimulationConfig
    from repro.workload.application import Application

__all__ = [
    "available",
    "compiled",
    "simulate_closed_loop",
    "run_batch",
    "unsupported_reason",
]


def _resolve_njit():
    """The ``numba.njit`` decorator when the compiled path is usable, else None.

    Resolved once at import: compiling kernels is a per-process decision
    (recompiling on an env flip mid-process would invalidate nothing but
    cost seconds).  ``available()`` stays dynamic so tests can monkeypatch
    :data:`repro._compat.HAVE_NUMBA` and exercise negotiation — the kernels
    then simply run in interpreted mode, which is bit-identical.
    """
    if _np is None or not _compat.HAVE_NUMBA or _compat.jit_disabled():
        return None
    try:
        from numba import njit
    except Exception:  # pragma: no cover - probe said importable, import failed
        return None
    return njit


_NJIT = _resolve_njit()


def _jit(func):
    """Apply ``@njit(cache=True)`` when compiling, otherwise return ``func``.

    ``fastmath`` stays off: reassociation would break the bit-identity
    contract.  ``cache=True`` persists compiled kernels across processes
    (honouring ``NUMBA_CACHE_DIR``), so campaigns and CI pay the compile
    once per machine, not once per run.
    """
    if _NJIT is None:
        return func
    return _NJIT(cache=True, fastmath=False)(func)


def compiled() -> bool:
    """True when the kernels in this process are numba-compiled."""
    return _NJIT is not None


def available() -> bool:
    """Whether the jit backend should take part in engine negotiation.

    Reads :data:`repro._compat.HAVE_NUMBA` through the module (so tests can
    monkeypatch it) and the ``REPRO_DISABLE_JIT`` kill-switch per call.
    """
    return (
        _np is not None
        and _compat.HAVE_NUMBA
        and not _compat.jit_disabled()
    )


def unsupported_reason(
    cluster: "Cluster", governor: "Governor"
) -> Optional[str]:
    """Why the kernel cannot run this (cluster, governor), or None if it can.

    The kernel inlines the three paper governors' decide logic and the
    sensor's noiseless measurement path, so it must reject anything whose
    behaviour it cannot replicate bit-for-bit.  Exact-type checks are
    deliberate: a subclass may override any of the hooks the kernel inlines
    (``decide``, ``_observed_workload``, the policy ``sample``), and such a
    governor must fall through to the generic table engines.
    """
    gtype = type(governor)
    if gtype is OndemandGovernor or gtype is ConservativeGovernor:
        if static_processing_overhead(governor) is None:
            return (
                f"governor {governor.name!r} shadows processing_overhead_s "
                f"on the instance, which the kernel cannot hoist"
            )
    elif gtype is not RLGovernor:
        return (
            f"no compiled kernel for governor {governor.name!r} "
            f"(exactly ondemand, conservative or rl)"
        )
    sensor = cluster.power_sensor
    if sensor.noise_stddev_w > 0:
        return "the kernel cannot replicate Gaussian sensor noise draws"
    if sensor.record_history:
        return "the kernel does not record per-conversion sensor history"
    if (
        cluster.thermal_model.enabled
        and ThermalWorkloadTable.effective_bucket_c(cluster) > 0.0
    ):
        return (
            "bucketed thermal power caching keeps a lazily-filled slice "
            "table the kernel cannot grow (exact-mode leakage only)"
        )
    return None


# ---------------------------------------------------------------------------
# Kernel parameter packing.
#
# njit kernels take a fixed argument list; the many scalar knobs travel in
# two flat arrays (float64 / int64) indexed by the named constants below.
# Slots marked "in/out" are read at kernel entry and written back at exit,
# carrying the mutable scalar state (clock, temperature, ε, counters) out of
# the kernel without a second return path.
# ---------------------------------------------------------------------------

_F_TIME = 0  # in/out: cluster clock
_F_LATENCY = 1
_F_TRANS_ENERGY = 2
_F_SAMPLE_PERIOD = 3
_F_RESOLUTION = 4
_F_STATIC_OVERHEAD = 5
_F_UP_THRESHOLD = 6
_F_MIN_FREQ = 7
_F_DOWN_THRESHOLD = 8
_F_K3 = 9
_F_K4 = 10
_F_UNCORE = 11
_F_AMBIENT = 12
_F_RESISTANCE = 13
_F_TAU = 14
_F_THROTTLE_C = 15
_F_TEMPERATURE = 16  # in/out: junction temperature
_F_LEARNING_RATE = 17
_F_DISCOUNT = 18
_F_EPSILON = 19  # in/out
_F_EPS_ALPHA = 20
_F_EPS_MIN = 21
_F_TREF = 22
_F_SLACK_WEIGHT = 23
_F_DELTA_WEIGHT = 24
_F_MISS_WEIGHT = 25
_F_OVERPERF = 26
_F_TARGET_SLACK = 27
_F_BETA = 28
_F_OH_LEARNING = 29
_F_OH_EXPLOIT = 30
_F_RUNNING_SUM = 31  # in/out: cumulative slack sum (window=None mode)
_F_S_LOWER = 32
_F_S_SPAN = 33
_F_LAST_OVERHEAD = 34  # out: last decide's overhead (sans transition latency)
_F_COUNT = 35

_I_KIND = 0  # 0 = ondemand, 1 = conservative, 2 = rl
_I_THERMAL_TABLES = 1  # physics mode: 0 isothermal energies, 1 decomposition
_I_THERMAL_ENABLED = 2
_I_PAD = 3
_I_INITIAL_INDEX = 4
_I_CHARGE_OVERHEAD = 5
_I_IDLE_AT_MIN = 6
_I_HOLD = 7  # in/out: ondemand hold-at-max countdown
_I_SAMPLING_DOWN = 8
_I_FREQ_STEP = 9
_I_DECAY_ON_ANY = 10
_I_POLICY_KIND = 11  # 0 = EPD, 1 = uniform
_I_SELECTION_COUNT = 12  # in/out
_I_EXPLOITATION_START = 13  # in/out (-1 encodes None)
_I_EXPLORATION_DRAWS = 14  # in/out
_I_UPDATE_COUNT = 15  # in/out
_I_LAST_CHANGED = 16  # in/out
_I_PENDING_STATE = 17  # in: frame-0 state; out: final pending state
_I_PENDING_ACTION = 18  # in/out
_I_SLACK_WINDOW = 19  # 0 = cumulative (eq. 5 literally)
_I_SLACK_LEVELS = 20
_I_CONV_WINDOW = 21
_I_CONV_EPOCH = 22  # in/out
_I_CONV_LAST_UNSTABLE = 23  # in/out
_I_CONV_CONVERGED = 24  # in/out (-1 encodes None)
_I_PREV_EXPLORATION = 25  # in/out: explored-column poll state
_I_FROZEN = 26  # in/out
_I_TRANS_COUNT = 27  # out
_I_THROTTLE_TOTAL = 28  # in/out
_I_CONSUMED = 29  # out: pre-drawn uniforms consumed
_I_COUNT = 30


# ---------------------------------------------------------------------------
# Kernels.  Plain Python over numpy arrays; @_jit compiles them when numba
# is present.  Every arithmetic statement mirrors a specific line of the
# scalar/table engines — comments name the source where the order matters.
# ---------------------------------------------------------------------------


@_jit
def _sensor_measure(power, time_s, sensor_state, sample_period, resolution):
    """One ``PowerSensor.measure_w`` conversion (noiseless, no history).

    ``sensor_state`` is ``[has_last, last_time, last_power]``; holdover
    returns the previous conversion without touching the state, exactly as
    the live sensor does.
    """
    if sensor_state[0] != 0.0 and time_s - sensor_state[1] < sample_period:
        return sensor_state[2]
    measured = power
    if resolution > 0.0:
        # Python round() is round-half-even on floats; np.rint matches it
        # bit-for-bit over the representable range.
        measured = _np.rint(measured / resolution) * resolution
    # max(0.0, measured) including the -0.0 -> 0.0 normalisation.
    if not measured > 0.0:
        measured = 0.0
    sensor_state[0] = 1.0
    sensor_state[1] = time_s
    sensor_state[2] = measured
    return measured


@_jit
def _nearest_index(frequencies, target):
    """``VFTable.nearest_index_for_frequency``: CPUFREQ_RELATION_L rounding."""
    n = frequencies.shape[0]
    key = target - 1e-6
    lo = 0
    hi = n
    while lo < hi:
        mid = (lo + hi) // 2
        if frequencies[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    if lo > n - 1:
        lo = n - 1
    return lo


@_jit
def _row_max(q, state):
    """``max(row)`` with Python's left-to-right first-maximum semantics."""
    n = q.shape[1]
    best = q[state, 0]
    for action in range(1, n):
        value = q[state, action]
        if value > best:
            best = value
    return best


@_jit
def _row_best(q, state):
    """``QTable.best_action``: row maximum, highest-index tie-break."""
    n = q.shape[1]
    best = q[state, 0]
    for action in range(1, n):
        value = q[state, action]
        if value > best:
            best = value
    for action in range(n - 1, -1, -1):
        if q[state, action] == best:
            return action
    return 0  # pragma: no cover - the maximum always matches itself


@_jit
def _frame_loop(
    fp,
    ip,
    max_cycles,
    deadlines,
    spc,
    energy,
    cycles,
    dynamic_busy,
    dynamic_idle,
    leak_scale,
    voltages,
    frequencies,
    freq_ratio,
    sensor_state,
    q,
    visits,
    best_cache,
    workload_level,
    uniforms,
    weights,
    out_opp,
    out_busy,
    out_overhead,
    out_duration,
    out_energy,
    out_power,
    out_measured,
    out_explored,
    out_temperature,
    out_core_uncore,
    out_reward,
    out_slack,
    out_average,
    trans_time,
    trans_from,
    trans_to,
):
    """The full closed-loop frame loop over precomputed physics tables."""
    num_frames = max_cycles.shape[0]
    num_points = spc.shape[0]
    num_cores = cycles.shape[1]
    num_actions = num_points
    max_index = num_points - 1

    kind = ip[_I_KIND]
    thermal_tables = ip[_I_THERMAL_TABLES] != 0
    thermal_enabled = ip[_I_THERMAL_ENABLED] != 0
    pad = ip[_I_PAD] != 0
    charge_overhead = ip[_I_CHARGE_OVERHEAD] != 0
    idle_at_min = ip[_I_IDLE_AT_MIN] != 0

    latency_s = fp[_F_LATENCY]
    transition_energy_j = fp[_F_TRANS_ENERGY]
    sample_period = fp[_F_SAMPLE_PERIOD]
    resolution = fp[_F_RESOLUTION]
    static_overhead = fp[_F_STATIC_OVERHEAD]
    up_threshold = fp[_F_UP_THRESHOLD]
    min_frequency_hz = fp[_F_MIN_FREQ]
    down_threshold = fp[_F_DOWN_THRESHOLD]
    leakage_k3 = fp[_F_K3]
    leakage_k4 = fp[_F_K4]
    uncore_power_w = fp[_F_UNCORE]
    ambient_c = fp[_F_AMBIENT]
    resistance = fp[_F_RESISTANCE]
    tau = fp[_F_TAU]
    throttle_c = fp[_F_THROTTLE_C]
    learning_rate = fp[_F_LEARNING_RATE]
    discount = fp[_F_DISCOUNT]
    eps_alpha = fp[_F_EPS_ALPHA]
    eps_min = fp[_F_EPS_MIN]
    tref = fp[_F_TREF]
    slack_weight = fp[_F_SLACK_WEIGHT]
    delta_weight = fp[_F_DELTA_WEIGHT]
    miss_weight = fp[_F_MISS_WEIGHT]
    overperf = fp[_F_OVERPERF]
    target_slack = fp[_F_TARGET_SLACK]
    beta = fp[_F_BETA]
    oh_learning = fp[_F_OH_LEARNING]
    oh_exploit = fp[_F_OH_EXPLOIT]
    s_lower = fp[_F_S_LOWER]
    s_span = fp[_F_S_SPAN]

    sampling_down_factor = ip[_I_SAMPLING_DOWN]
    freq_step = ip[_I_FREQ_STEP]
    decay_on_any = ip[_I_DECAY_ON_ANY] != 0
    policy_kind = ip[_I_POLICY_KIND]
    slack_window = ip[_I_SLACK_WINDOW]
    s_levels = ip[_I_SLACK_LEVELS]
    conv_window = ip[_I_CONV_WINDOW]

    time_s = fp[_F_TIME]
    temperature = fp[_F_TEMPERATURE]
    epsilon = fp[_F_EPSILON]
    running_sum = fp[_F_RUNNING_SUM]
    gov_overhead = fp[_F_LAST_OVERHEAD]
    theta = 0.0
    theta_temperature = _np.nan  # sentinel: first frame always recomputes

    current = ip[_I_INITIAL_INDEX]
    hold = ip[_I_HOLD]
    pending_state = ip[_I_PENDING_STATE]
    pending_action = ip[_I_PENDING_ACTION]
    selection_count = ip[_I_SELECTION_COUNT]
    exploitation_start = ip[_I_EXPLOITATION_START]
    exploration_draws = ip[_I_EXPLORATION_DRAWS]
    update_count = ip[_I_UPDATE_COUNT]
    last_changed = ip[_I_LAST_CHANGED] != 0
    conv_epoch = ip[_I_CONV_EPOCH]
    conv_last_unstable = ip[_I_CONV_LAST_UNSTABLE]
    conv_converged = ip[_I_CONV_CONVERGED]
    prev_exploration = ip[_I_PREV_EXPLORATION]
    frozen = ip[_I_FROZEN] != 0
    throttle_total = ip[_I_THROTTLE_TOTAL]
    trans_count = 0
    consumed = 0

    index = current
    for f in range(num_frames):
        # ---- decide (Governor.decide, inlined per kind) -------------------
        if f == 0:
            # All three governors start from the fastest point.
            index = max_index
            if kind == 2:
                # RLGovernor.decide epoch 0: credit the initial pair later.
                visits[pending_state, max_index] += 1
                pending_action = max_index
                gov_overhead = oh_learning
            else:
                gov_overhead = static_overhead
        elif kind == 0:
            # OndemandGovernor.decide
            prev_busy = out_busy[f - 1]
            prev_interval = out_duration[f - 1]
            if prev_interval <= 0.0:
                load = 0.0
            else:
                load = prev_busy / prev_interval
                if load > 1.0:
                    load = 1.0
                if load < 0.0:
                    load = 0.0
            if load > up_threshold:
                hold = sampling_down_factor
                index = max_index
            elif hold > 1:
                hold -= 1
                index = max_index
            else:
                hold = 0
                current_frequency = frequencies[out_opp[f - 1]]
                target = current_frequency * load / up_threshold
                if target < min_frequency_hz:
                    target = min_frequency_hz
                index = _nearest_index(frequencies, target)
            gov_overhead = static_overhead
        elif kind == 1:
            # ConservativeGovernor.decide
            prev_busy = out_busy[f - 1]
            prev_interval = out_duration[f - 1]
            if prev_interval <= 0.0:
                load = 0.0
            else:
                load = prev_busy / prev_interval
                if load > 1.0:
                    load = 1.0
                if load < 0.0:
                    load = 0.0
            index = out_opp[f - 1]
            if load > up_threshold:
                index = index + freq_step
            elif load < down_threshold:
                index = index - freq_step
            if index < 0:
                index = 0
            elif index > max_index:
                index = max_index
            gov_overhead = static_overhead
        else:
            # RLGovernor.decide epoch f >= 1.
            # (1) SlackTracker.update with the previous frame's busy time
            # and charged overhead (eq. 5).
            slack = (tref - out_busy[f - 1]) - out_overhead[f - 1]
            out_slack[f] = slack
            if slack_window == 0:
                running_sum += slack
                average = running_sum / (f * tref)
            else:
                count = f
                if count > slack_window:
                    count = slack_window
                window_sum = 0.0
                for i in range(f - count + 1, f + 1):
                    window_sum += out_slack[i]
                average = window_sum / (count * tref)
            out_average[f] = average
            if f >= 2:
                slack_delta = average - out_average[f - 1]
            else:
                slack_delta = average
            # compute_reward (eq. 4, shaped) + the per-frame miss penalty.
            if average < 0.0:
                slack_term = -miss_weight * (-average)
            else:
                excess = average - target_slack
                if excess < 0.0:
                    excess = 0.0
                slack_term = slack_weight * (1.0 - overperf * excess)
            progress = slack_term + delta_weight * slack_delta
            reward = progress
            instantaneous = slack / tref
            if instantaneous < 0.0:
                reward = reward - miss_weight * (-instantaneous)
            out_reward[f] = reward

            # (3) Workload level is trajectory-independent and precomputed
            # host-side through the governor's own tracker/predictor; the
            # slack axis completes StateSpace.state_index.
            slack_level = int((average - s_lower) / s_span * s_levels)
            if slack_level < 0:
                slack_level = 0
            elif slack_level >= s_levels:
                slack_level = s_levels - 1
            next_state = workload_level[f] * s_levels + slack_level

            # (2) QLearningAgent.update_and_select, statement for statement.
            state = pending_state
            action = pending_action
            greedy_before = best_cache[state]
            if greedy_before < 0:
                greedy_before = _row_best(q, state)
                best_cache[state] = greedy_before
            diff = action - greedy_before
            if diff < 0:
                diff = -diff
            confirmed = diff <= 1
            # The bootstrap maximum is read BEFORE the Bellman write —
            # matters when state == next_state.
            next_best_value = _row_max(q, next_state)
            target_q = reward + discount * next_best_value
            old_value = q[state, action]
            new_value = (1.0 - learning_rate) * old_value + learning_rate * target_q
            q[state, action] = new_value
            if action == greedy_before:
                if new_value >= old_value:
                    greedy_after = greedy_before
                else:
                    greedy_after = _row_best(q, state)
            else:
                best_value = q[state, greedy_before]
                if new_value > best_value or (
                    new_value == best_value and action > greedy_before
                ):
                    greedy_after = action
                else:
                    greedy_after = greedy_before
            best_cache[state] = greedy_after
            changed_policy = greedy_after != greedy_before
            last_changed = changed_policy
            update_count += 1
            # ε decay (eq. 6), gated on the progress pay-off.
            if decay_on_any or (progress > 0.0 and confirmed):
                decayed = epsilon * math.exp(-eps_alpha * (1.0 - epsilon))
                if decayed > eps_min:
                    epsilon = decayed
                else:
                    epsilon = eps_min
            exploiting = epsilon <= eps_min
            if exploiting and exploitation_start < 0:
                exploitation_start = selection_count
            selection_count += 1
            explore = False
            if not exploiting:
                draw = uniforms[consumed]
                consumed += 1
                explore = draw < epsilon
            if explore:
                draw = uniforms[consumed]
                consumed += 1
                next_action = num_actions - 1
                if policy_kind == 0:
                    # ExponentialPolicy (EPD, eq. 2): weights left to right,
                    # then the cumulative scan dividing per element.
                    total = 0.0
                    for a in range(num_actions):
                        weight = math.exp(-beta * freq_ratio[a] * average)
                        weights[a] = weight
                        total += weight
                    cumulative = 0.0
                    for a in range(num_actions):
                        cumulative += weights[a] / total
                        if draw <= cumulative:
                            next_action = a
                            break
                else:
                    # UniformPolicy (UPD baseline).
                    probability = 1.0 / num_actions
                    cumulative = 0.0
                    for a in range(num_actions):
                        cumulative += probability
                        if draw <= cumulative:
                            next_action = a
                            break
                exploration_draws += 1
            elif state == next_state:
                next_action = greedy_after
            else:
                next_action = best_cache[next_state]
                if next_action < 0:
                    next_action = 0
                    for candidate in range(num_actions - 1, -1, -1):
                        if q[next_state, candidate] == next_best_value:
                            next_action = candidate
                            break
                    best_cache[next_state] = next_action
            visits[next_state, next_action] += 1

            # ConvergenceDetector.observe (track_action_range off).
            conv_epoch += 1
            if conv_converged < 0:
                if (not exploiting) or changed_policy:
                    conv_last_unstable = conv_epoch
                elif (
                    conv_epoch >= conv_window
                    and conv_epoch - conv_last_unstable >= conv_window
                ):
                    conv_converged = conv_epoch - conv_window
            pending_state = next_state
            pending_action = next_action
            if exploiting:
                gov_overhead = oh_exploit
            else:
                gov_overhead = oh_learning
            index = next_action

        # ---- physics (tablepath / thermalpath loop bodies) ----------------
        if index != current:
            if index < 0 or index > max_index:
                raise ValueError("operating-point index out of range")
            trans_time[trans_count] = time_s
            trans_from[trans_count] = current
            trans_to[trans_count] = index
            trans_count += 1
            current = index
            transition_latency = latency_s
            frame_transition_energy = transition_energy_j
        else:
            transition_latency = 0.0
            frame_transition_energy = 0.0

        spc_i = spc[index]
        busy = max_cycles[f] * spc_i
        deadline = deadlines[f]
        if thermal_tables:
            if pad and deadline > busy:
                interval = deadline
            else:
                interval = busy
            if idle_at_min:
                idle_index = 0
            else:
                idle_index = index
            if temperature != theta_temperature:
                theta = math.exp(leakage_k3 * (temperature - 55.0))
                theta_temperature = temperature
            busy_power = dynamic_busy[index] + voltages[index] * (
                leak_scale[index] * theta + leakage_k4
            )
            idle_power = dynamic_idle[idle_index] + voltages[idle_index] * (
                leak_scale[idle_index] * theta + leakage_k4
            )
            core_energy = 0.0
            for c in range(num_cores):
                core_busy = cycles[f, c] * spc_i
                core_energy += busy_power * core_busy + idle_power * (
                    interval - core_busy
                )
            core_uncore = core_energy + uncore_power_w * interval
            frame_energy = core_uncore + frame_transition_energy
            duration = interval + transition_latency
            if duration > 0.0:
                power = frame_energy / duration
            else:
                power = 0.0
            if thermal_enabled and duration > 0.0:
                steady = ambient_c + power * resistance
                decay = math.exp(-duration / tau)
                temperature = steady + (temperature - steady) * decay
                if temperature >= throttle_c:
                    throttle_total += 1
            out_core_uncore[f] = core_uncore
            out_temperature[f] = temperature
        else:
            frame_energy = energy[f, index] + frame_transition_energy
            if pad and deadline > busy:
                duration = deadline + transition_latency
            else:
                duration = busy + transition_latency
            if duration > 0.0:
                power = frame_energy / duration
            else:
                power = 0.0

        time_s += duration
        measured = _sensor_measure(
            power, time_s, sensor_state, sample_period, resolution
        )

        if charge_overhead:
            overhead = gov_overhead + transition_latency
        else:
            overhead = 0.0

        # Explored-column poll (tablepath's exploration_count delta probe).
        if frozen:
            explored = False
        else:
            if exploitation_start >= 0:
                exploration = exploitation_start
            else:
                exploration = selection_count
            explored = exploration > prev_exploration
            prev_exploration = exploration
            frozen = epsilon <= eps_min

        out_opp[f] = index
        out_busy[f] = busy
        out_overhead[f] = overhead
        out_duration[f] = duration
        out_energy[f] = frame_energy
        out_power[f] = power
        out_measured[f] = measured
        out_explored[f] = explored

    fp[_F_TIME] = time_s
    fp[_F_TEMPERATURE] = temperature
    fp[_F_EPSILON] = epsilon
    fp[_F_RUNNING_SUM] = running_sum
    fp[_F_LAST_OVERHEAD] = gov_overhead
    ip[_I_HOLD] = hold
    ip[_I_PENDING_STATE] = pending_state
    ip[_I_PENDING_ACTION] = pending_action
    ip[_I_SELECTION_COUNT] = selection_count
    ip[_I_EXPLOITATION_START] = exploitation_start
    ip[_I_EXPLORATION_DRAWS] = exploration_draws
    ip[_I_UPDATE_COUNT] = update_count
    ip[_I_LAST_CHANGED] = 1 if last_changed else 0
    ip[_I_CONV_EPOCH] = conv_epoch
    ip[_I_CONV_LAST_UNSTABLE] = conv_last_unstable
    ip[_I_CONV_CONVERGED] = conv_converged
    ip[_I_PREV_EXPLORATION] = prev_exploration
    ip[_I_FROZEN] = 1 if frozen else 0
    ip[_I_TRANS_COUNT] = trans_count
    ip[_I_THROTTLE_TOTAL] = throttle_total
    ip[_I_CONSUMED] = consumed


# ---------------------------------------------------------------------------
# Host-side wrapper.
# ---------------------------------------------------------------------------


def _governor_kind(governor: "Governor") -> int:
    gtype = type(governor)
    if gtype is OndemandGovernor:
        return 0
    if gtype is ConservativeGovernor:
        return 1
    if gtype is RLGovernor:
        return 2
    raise SimulationError(
        f"the jit kernel engine has no kernel for governor {governor.name!r}"
    )


def simulate_closed_loop(
    cluster: "Cluster",
    application: "Application",
    governor: "Governor",
    config: "SimulationConfig",
    tables=None,
) -> SimulationResult:
    """Run the closed governor loop through the compiled kernel.

    Mirrors :func:`repro.sim.tablepath.simulate_closed_loop` /
    :func:`repro.sim.thermalpath.simulate_closed_loop` exactly — same
    contract (caller resets the cluster and sets the governor up first, as
    the engine does), same table validation and rebuild, same
    scalar-equivalent final state for the cluster, sensor, thermal model
    and governor.  ``tables`` may be either table kind; the thermal kind
    wins when both would validate, and a missing/mismatched table is
    rebuilt for the cluster's thermal mode.
    """
    np = _np
    if np is None:
        raise SimulationError("the jit kernel engine requires numpy")
    reason = unsupported_reason(cluster, governor)
    if reason is not None:
        raise SimulationError(f"the jit kernel engine cannot run this: {reason}")
    num_frames = application.num_frames
    if num_frames == 0:
        raise SimulationError("cannot simulate an application with no frames")

    thermal_tables = (
        isinstance(tables, ThermalWorkloadTable)
        and tables.num_frames == num_frames
        and tables.matches(cluster, config.idle_until_deadline)
    )
    if not thermal_tables:
        iso_ok = (
            not cluster.thermal_model.enabled
            and isinstance(tables, WorkloadTable)
            and tables.num_frames == num_frames
            and tables.matches(cluster, config.idle_until_deadline)
        )
        if not iso_ok:
            if cluster.thermal_model.enabled:
                tables = thermalpath.precompute_tables(cluster, application, config)
                thermal_tables = True
            else:
                tables = tablepath.precompute_tables(cluster, application, config)

    num_points = tables.num_points
    cycles_tuples = tables.cycles_tuples
    deadlines = tables.deadlines_s.tolist()
    kind = _governor_kind(governor)

    fp = np.zeros(_F_COUNT, dtype=np.float64)
    ip = np.zeros(_I_COUNT, dtype=np.int64)

    dvfs = cluster.dvfs
    latency_s = dvfs.transition_latency_s
    transition_energy_j = dvfs.transition_energy_j
    sensor = cluster.power_sensor
    initial_index = cluster.current_index
    initial_time_s = cluster.time_s

    fp[_F_TIME] = initial_time_s
    fp[_F_LATENCY] = latency_s
    fp[_F_TRANS_ENERGY] = transition_energy_j
    fp[_F_SAMPLE_PERIOD] = sensor.sample_period_s
    fp[_F_RESOLUTION] = sensor.resolution_w
    ip[_I_KIND] = kind
    ip[_I_THERMAL_TABLES] = 1 if thermal_tables else 0
    ip[_I_PAD] = 1 if tables.idle_until_deadline else 0
    ip[_I_INITIAL_INDEX] = initial_index
    ip[_I_CHARGE_OVERHEAD] = 1 if config.charge_governor_overhead else 0

    sensor_state = np.zeros(3, dtype=np.float64)
    if sensor._last_time_s is not None:
        sensor_state[0] = 1.0
        sensor_state[1] = sensor._last_time_s
    sensor_state[2] = sensor._last_power_w

    max_cycles_arr = np.asarray(tables.max_cycles, dtype=np.float64)
    deadlines_arr = np.asarray(tables.deadlines_s, dtype=np.float64)
    spc_arr = np.asarray(tables.seconds_per_cycle, dtype=np.float64)
    cycles_arr = np.asarray(tables.cycles, dtype=np.float64)
    frequencies_arr = np.asarray(tables.frequencies_hz, dtype=np.float64)

    if thermal_tables:
        thermal_model = cluster.thermal_model
        energy_arr = np.zeros((1, 1), dtype=np.float64)
        dynamic_busy = np.asarray(tables.dynamic_busy_w, dtype=np.float64)
        dynamic_idle = np.asarray(tables.dynamic_idle_w, dtype=np.float64)
        leak_scale = np.asarray(tables.leak_scale_a, dtype=np.float64)
        voltages = np.asarray(tables.voltages_v, dtype=np.float64)
        fp[_F_K3] = tables.leakage_k3_per_c
        fp[_F_K4] = tables.leakage_k4_a
        fp[_F_UNCORE] = tables.uncore_power_w
        fp[_F_AMBIENT] = tables.ambient_c
        fp[_F_RESISTANCE] = tables.resistance_c_per_w
        fp[_F_TAU] = tables.resistance_c_per_w * tables.capacitance_j_per_c
        fp[_F_THROTTLE_C] = tables.throttle_c
        fp[_F_TEMPERATURE] = thermal_model.temperature_c
        ip[_I_THERMAL_ENABLED] = 1 if thermal_model.enabled else 0
        ip[_I_IDLE_AT_MIN] = 1 if tables.idle_at_min_opp else 0
        out_temperature = np.zeros(num_frames, dtype=np.float64)
        out_core_uncore = np.zeros(num_frames, dtype=np.float64)
    else:
        energy_arr = np.ascontiguousarray(tables.energy, dtype=np.float64)
        dynamic_busy = np.zeros(num_points, dtype=np.float64)
        dynamic_idle = np.zeros(num_points, dtype=np.float64)
        leak_scale = np.zeros(num_points, dtype=np.float64)
        voltages = np.zeros(num_points, dtype=np.float64)
        out_temperature = np.zeros(1, dtype=np.float64)
        out_core_uncore = np.zeros(1, dtype=np.float64)

    # -- per-kind governor state in ---------------------------------------
    rl_state = None
    if kind == 0:
        fp[_F_STATIC_OVERHEAD] = static_processing_overhead(governor)
        fp[_F_UP_THRESHOLD] = governor._up_threshold
        fp[_F_MIN_FREQ] = governor._min_frequency_hz
        ip[_I_SAMPLING_DOWN] = governor._sampling_down_factor
        ip[_I_HOLD] = governor._hold_remaining
    elif kind == 1:
        fp[_F_STATIC_OVERHEAD] = static_processing_overhead(governor)
        fp[_F_UP_THRESHOLD] = governor._up_threshold
        fp[_F_DOWN_THRESHOLD] = governor._down_threshold
        ip[_I_FREQ_STEP] = governor._freq_step_indices
    else:
        rl_state = _pack_rl(governor, cycles_tuples, num_frames, fp, ip, np)

    ip[_I_PREV_EXPLORATION] = governor.exploration_count
    ip[_I_FROZEN] = 1 if governor.exploration_frozen else 0

    if rl_state is not None:
        q_arr, visits_arr, cache_arr, wl_arr, uniforms, weights = rl_state[:6]
        out_reward = np.zeros(num_frames, dtype=np.float64)
        out_slack = np.zeros(num_frames, dtype=np.float64)
        out_average = np.zeros(num_frames, dtype=np.float64)
        freq_ratio = rl_state[6]
    else:
        q_arr = np.zeros((1, 1), dtype=np.float64)
        visits_arr = np.zeros((1, 1), dtype=np.int64)
        cache_arr = np.zeros(1, dtype=np.int64)
        wl_arr = np.zeros(1, dtype=np.int64)
        uniforms = np.zeros(1, dtype=np.float64)
        weights = np.zeros(1, dtype=np.float64)
        freq_ratio = np.zeros(num_points, dtype=np.float64)
        out_reward = np.zeros(1, dtype=np.float64)
        out_slack = np.zeros(1, dtype=np.float64)
        out_average = np.zeros(1, dtype=np.float64)

    out_opp = np.zeros(num_frames, dtype=np.int64)
    out_busy = np.zeros(num_frames, dtype=np.float64)
    out_overhead = np.zeros(num_frames, dtype=np.float64)
    out_duration = np.zeros(num_frames, dtype=np.float64)
    out_energy = np.zeros(num_frames, dtype=np.float64)
    out_power = np.zeros(num_frames, dtype=np.float64)
    out_measured = np.zeros(num_frames, dtype=np.float64)
    out_explored = np.zeros(num_frames, dtype=np.bool_)
    trans_time = np.zeros(num_frames, dtype=np.float64)
    trans_from = np.zeros(num_frames, dtype=np.int64)
    trans_to = np.zeros(num_frames, dtype=np.int64)

    _frame_loop(
        fp,
        ip,
        max_cycles_arr,
        deadlines_arr,
        spc_arr,
        energy_arr,
        cycles_arr,
        dynamic_busy,
        dynamic_idle,
        leak_scale,
        voltages,
        frequencies_arr,
        freq_ratio,
        sensor_state,
        q_arr,
        visits_arr,
        cache_arr,
        wl_arr,
        uniforms,
        weights,
        out_opp,
        out_busy,
        out_overhead,
        out_duration,
        out_energy,
        out_power,
        out_measured,
        out_explored,
        out_temperature,
        out_core_uncore,
        out_reward,
        out_slack,
        out_average,
        trans_time,
        trans_from,
        trans_to,
    )

    # -- transitions and columns (exactly tablepath's epilogue) ------------
    trans_count = int(ip[_I_TRANS_COUNT])
    transitions = [
        DVFSTransition(
            float(trans_time[i]),
            int(trans_from[i]),
            int(trans_to[i]),
            latency_s,
            transition_energy_j,
        )
        for i in range(trans_count)
    ]

    indices = out_opp.astype(np.intp)
    rows = np.arange(num_frames)
    frequencies_mhz = np.asarray(tables.frequencies_mhz)
    if thermal_tables:
        temperature_column = out_temperature.tolist()
    else:
        temperature_column = [tables.temperature_c] * num_frames
    columns = FrameColumns(
        index=list(range(num_frames)),
        operating_index=out_opp.tolist(),
        frequency_mhz=frequencies_mhz[indices].tolist(),
        cycles_per_core=cycles_tuples,
        busy_time_s=out_busy.tolist(),
        overhead_time_s=out_overhead.tolist(),
        frame_time_s=(out_busy + out_overhead).tolist(),
        interval_s=out_duration.tolist(),
        deadline_s=deadlines,
        energy_j=out_energy.tolist(),
        average_power_w=out_power.tolist(),
        measured_power_w=out_measured.tolist(),
        temperature_c=temperature_column,
        explored=out_explored.tolist(),
    )
    result = SimulationResult(
        governor_name=governor.name,
        application_name=application.name,
        reference_time_s=application.reference_time_s,
        columns=columns,
    )

    # -- leave the cluster in scalar-equivalent aggregate state ------------
    table_cycles = tables.cycles
    busy_times = table_cycles * spc_arr[indices][:, None]
    intervals = tables.interval[rows, indices]
    idle_times = intervals[:, None] - busy_times
    if thermal_tables:
        core_uncore_energy = out_core_uncore
    else:
        core_uncore_energy = tables.energy[rows, indices]
    previous_indices = np.empty_like(indices)
    previous_indices[0] = initial_index
    previous_indices[1:] = indices[:-1]
    changed = indices != previous_indices
    transition_energy = np.where(changed, transition_energy_j, 0.0)
    fastpath._sync_cluster(
        cluster,
        np,
        cycles=table_cycles,
        busy_times=busy_times,
        idle_times=idle_times,
        frequencies_hz=frequencies_arr,
        indices=indices,
        intervals=intervals,
        core_uncore_energy=core_uncore_energy,
        transition_energy=transition_energy,
        transitions=transitions,
        total_duration=float(fp[_F_TIME]) - initial_time_s,
    )
    if thermal_tables:
        cluster.thermal_model.absorb_state(
            float(fp[_F_TEMPERATURE]), int(ip[_I_THROTTLE_TOTAL])
        )

    # -- sensor and governor hidden state out ------------------------------
    if sensor_state[0] != 0.0:
        sensor._last_time_s = float(sensor_state[1])
    sensor._last_power_w = float(sensor_state[2])

    if kind == 0:
        governor._hold_remaining = int(ip[_I_HOLD])
    elif kind == 2:
        _unpack_rl(
            governor,
            fp,
            ip,
            q_arr,
            visits_arr,
            cache_arr,
            out_reward,
            out_slack,
            out_average,
            num_frames,
            rl_state[7],
        )

    result.exploration_count = governor.exploration_count
    result.converged_epoch = governor.converged_epoch
    return result


def _pack_rl(
    governor: "RLGovernor",
    cycles_tuples: Sequence[Tuple[float, ...]],
    num_frames: int,
    fp,
    ip,
    np,
):
    """Marshal the RL governor's live state into kernel arrays.

    Also advances the trajectory-independent observers: the workload range
    tracker and the EWMA predictor see only the frame trace (never the
    governor's decisions), so their whole observation sequence — and hence
    the workload level of every frame's state index — is precomputed here
    through the governor's *own* tracker/predictor objects, leaving them in
    exactly the final state a scalar run would.
    """
    agent = governor.agent
    state_space = governor.state_space
    qtable = agent.qtable
    parameters = agent.parameters
    schedule = agent.epsilon_schedule
    policy = agent.policy
    tracker = governor._slack_tracker
    convergence = governor._convergence

    if type(policy) is ExponentialPolicy:
        ip[_I_POLICY_KIND] = 0
        fp[_F_BETA] = policy.beta
    elif type(policy) is UniformPolicy:
        ip[_I_POLICY_KIND] = 1
    else:
        raise SimulationError(
            f"the jit kernel engine has no kernel for exploration policy "
            f"{type(policy).__name__!r}"
        )
    if convergence.track_action_range:
        raise SimulationError(
            "the jit kernel engine supports ConvergenceDetector with "
            "track_action_range disabled only"
        )
    if tracker._epochs != 0 or convergence._epoch != 0:
        raise SimulationError(
            "the jit kernel engine requires a freshly set-up RL governor"
        )

    fp[_F_LEARNING_RATE] = parameters.learning_rate
    fp[_F_DISCOUNT] = parameters.discount
    fp[_F_EPSILON] = schedule._epsilon
    fp[_F_EPS_ALPHA] = schedule.alpha
    fp[_F_EPS_MIN] = schedule.minimum_epsilon
    ip[_I_DECAY_ON_ANY] = 1 if schedule.decay_on_any_reward else 0
    fp[_F_TREF] = tracker.reference_time_s
    ip[_I_SLACK_WINDOW] = 0 if tracker.window is None else tracker.window
    fp[_F_RUNNING_SUM] = tracker._running_sum
    reward_params = governor.config.reward
    fp[_F_SLACK_WEIGHT] = reward_params.slack_weight
    fp[_F_DELTA_WEIGHT] = reward_params.delta_weight
    fp[_F_MISS_WEIGHT] = reward_params.miss_penalty_weight
    fp[_F_OVERPERF] = reward_params.overperformance_penalty
    fp[_F_TARGET_SLACK] = reward_params.target_slack
    fp[_F_OH_LEARNING] = governor._overhead_learning_s
    fp[_F_OH_EXPLOIT] = governor._overhead_exploiting_s
    fp[_F_S_LOWER] = state_space._s_lower
    fp[_F_S_SPAN] = state_space._s_span
    ip[_I_SLACK_LEVELS] = state_space._s_levels
    ip[_I_CONV_WINDOW] = convergence.window
    ip[_I_CONV_EPOCH] = convergence._epoch
    ip[_I_CONV_LAST_UNSTABLE] = convergence._last_unstable_epoch
    ip[_I_CONV_CONVERGED] = (
        -1 if convergence._converged_epoch is None else convergence._converged_epoch
    )
    ip[_I_SELECTION_COUNT] = agent._selection_count
    ip[_I_EXPLOITATION_START] = (
        -1 if agent._exploitation_start is None else agent._exploitation_start
    )
    ip[_I_EXPLORATION_DRAWS] = agent._exploration_draws
    ip[_I_UPDATE_COUNT] = agent._update_count
    ip[_I_LAST_CHANGED] = 1 if agent._last_update_changed_policy else 0
    # Frame 0's initial state (decide with previous=None): state_index(1.0, 0.0).
    ip[_I_PENDING_STATE] = state_space.state_index(1.0, 0.0)
    ip[_I_PENDING_ACTION] = qtable.num_actions - 1

    q_arr = np.asarray(qtable._values, dtype=np.float64)
    visits_arr = np.asarray(qtable._visit_counts, dtype=np.int64)
    cache_arr = np.asarray(qtable._best_action_cache, dtype=np.int64)

    # Workload chain, through the governor's own observers (see docstring).
    w_lower = state_space._w_lower
    w_span = state_space._w_span
    w_levels = state_space._w_levels
    range_tracker = governor._range_tracker
    predictor = governor._predictor
    wl_arr = np.zeros(num_frames, dtype=np.int64)
    for f in range(1, num_frames):
        actual = max(cycles_tuples[f - 1])
        range_tracker.observe(actual)
        predicted = predictor.observe(actual)
        norm = range_tracker.normalise(predicted)
        level = int((norm - w_lower) / w_span * w_levels)
        if level < 0:
            level = 0
        elif level >= w_levels:
            level = w_levels - 1
        wl_arr[f] = level

    # Pre-draw the agent's uniforms (at most two per epoch: the explore
    # gate and the policy sample); the generator is rewound and replayed
    # to the consumed count after the kernel.
    rng = agent._rng
    rng_state = rng.getstate()
    uniforms = np.fromiter(
        (rng.random() for _ in range(2 * num_frames)),
        dtype=np.float64,
        count=2 * num_frames,
    )

    frequencies = agent.action_frequencies_hz
    f_max = max(frequencies)
    freq_ratio = np.asarray(
        [frequency / f_max for frequency in frequencies], dtype=np.float64
    )
    weights = np.zeros(qtable.num_actions, dtype=np.float64)
    return (
        q_arr,
        visits_arr,
        cache_arr,
        wl_arr,
        uniforms,
        weights,
        freq_ratio,
        rng_state,
    )


def _unpack_rl(
    governor: "RLGovernor",
    fp,
    ip,
    q_arr,
    visits_arr,
    cache_arr,
    out_reward,
    out_slack,
    out_average,
    num_frames: int,
    rng_state,
) -> None:
    """Write the kernel's final RL state back into the live objects.

    After this the governor, agent, Q-table, trackers and RNG hold exactly
    the state a scalar run over the same frames would have left.
    """
    agent = governor.agent
    qtable = agent.qtable
    schedule = agent.epsilon_schedule

    qtable._values = q_arr.tolist()
    qtable._visit_counts = visits_arr.tolist()
    qtable._best_action_cache = cache_arr.tolist()
    agent._exploration_draws = int(ip[_I_EXPLORATION_DRAWS])
    agent._update_count = int(ip[_I_UPDATE_COUNT])
    agent._selection_count = int(ip[_I_SELECTION_COUNT])
    exploitation_start = int(ip[_I_EXPLOITATION_START])
    agent._exploitation_start = (
        None if exploitation_start < 0 else exploitation_start
    )
    agent._last_update_changed_policy = bool(ip[_I_LAST_CHANGED])
    schedule._epsilon = float(fp[_F_EPSILON])
    governor._pending_state = int(ip[_I_PENDING_STATE])
    governor._pending_action = int(ip[_I_PENDING_ACTION])
    governor._last_overhead_s = float(fp[_F_LAST_OVERHEAD])
    governor._reward_history = out_reward[1:num_frames].tolist()

    tracker = governor._slack_tracker
    epochs = num_frames - 1
    window = tracker.window
    keep = epochs if window is None else min(epochs, window)
    tracker._slacks_s = deque(
        out_slack[num_frames - keep : num_frames].tolist(), maxlen=window
    )
    if window is None:
        tracker._running_sum = float(fp[_F_RUNNING_SUM])
    tracker._epochs = epochs
    history: List[float] = out_average[1:num_frames].tolist()
    tracker._history = history
    tracker._last_average = history[-1] if history else 0.0

    convergence = governor._convergence
    convergence._epoch = int(ip[_I_CONV_EPOCH])
    convergence._last_unstable_epoch = int(ip[_I_CONV_LAST_UNSTABLE])
    converged = int(ip[_I_CONV_CONVERGED])
    convergence._converged_epoch = None if converged < 0 else converged

    # Rewind the generator and replay exactly the consumed draws, so the
    # stream position matches a scalar run's.
    rng = agent._rng
    rng.setstate(rng_state)
    for _ in range(int(ip[_I_CONSUMED])):
        rng.random()


def run_batch(
    members: Sequence[Tuple["Cluster", "Governor"]],
    application: "Application",
    config: "SimulationConfig",
    tables=None,
) -> List[SimulationResult]:
    """Reset, set up and simulate ``members`` through the compiled kernel.

    Mirrors :func:`repro.sim.batchpath.run_batch`'s contract (full
    per-scenario lifecycle, results in member order) but runs members
    sequentially: a compiled frame loop has no per-frame Python dispatch
    left to amortise across a batch axis, so lock-stepping would only add
    bookkeeping.  ``tables`` are validated per member by
    :func:`simulate_closed_loop` (and rebuilt on mismatch), exactly as the
    batched engine validates its shared table.
    """
    from repro.rtm.governor import PlatformInfo

    results: List[SimulationResult] = []
    for cluster, governor in members:
        cluster.reset(config.initial_operating_index)
        governor.setup(
            PlatformInfo(num_cores=cluster.num_cores, vf_table=cluster.vf_table),
            application.requirement,
        )
        results.append(
            simulate_closed_loop(cluster, application, governor, config, tables=tables)
        )
    return results
