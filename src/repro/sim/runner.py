"""Experiment runner: run several governors over the same application.

Comparative experiments (Table I and the examples) repeatedly execute the
same frame sequence under different governors on a freshly reset platform.
The runner takes *factories* rather than governor instances so that every
run starts from an unlearnt governor, and it always includes an Oracle run
when asked for normalised results.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.governors.oracle import OracleGovernor
from repro.platform.cluster import Cluster
from repro.platform.odroid_xu3 import build_a15_cluster
from repro.rtm.governor import Governor
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.sim.results import SimulationResult
from repro.workload.application import Application

#: A callable that builds a fresh (unlearnt) governor instance.
GovernorFactory = Callable[[], Governor]


class ExperimentRunner:
    """Runs a set of governors over one application on a shared platform model."""

    def __init__(
        self,
        cluster: Optional[Cluster] = None,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        self.cluster = cluster or build_a15_cluster()
        self.engine = SimulationEngine(self.cluster, config)

    def run_one(self, application: Application, factory: GovernorFactory) -> SimulationResult:
        """Run a single governor (built fresh from ``factory``) over ``application``."""
        governor = factory()
        return self.engine.run(application, governor, reset_cluster=True)

    def run_many(
        self,
        application: Application,
        factories: Dict[str, GovernorFactory],
    ) -> Dict[str, SimulationResult]:
        """Run every governor in ``factories`` over the same application.

        Returns a mapping from the factory's key to the run result.  Keys are
        preserved as given so callers can use the paper's methodology names.
        """
        if not factories:
            raise SimulationError("run_many requires at least one governor factory")
        results: Dict[str, SimulationResult] = {}
        for key, factory in factories.items():
            results[key] = self.run_one(application, factory)
        return results

    def run_with_oracle(
        self,
        application: Application,
        factories: Dict[str, GovernorFactory],
        oracle_key: str = "oracle",
    ) -> Dict[str, SimulationResult]:
        """Run every governor plus an Oracle reference run.

        The Oracle result is stored under ``oracle_key`` (and is not
        overwritten if the caller supplied their own factory for that key).
        """
        all_factories = dict(factories)
        all_factories.setdefault(oracle_key, OracleGovernor)
        return self.run_many(application, all_factories)

    def sweep(
        self,
        applications: Sequence[Application],
        factory: GovernorFactory,
    ) -> List[SimulationResult]:
        """Run one governor across several applications (fresh instance per run)."""
        return [self.run_one(application, factory) for application in applications]
