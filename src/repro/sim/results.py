"""Simulation result container and the paper's normalisations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import SimulationError
from repro.platform.energy import EnergyAccount
from repro.sim.epoch import FrameRecord


@dataclass
class SimulationResult:
    """Complete outcome of running one governor over one application.

    Attributes
    ----------
    governor_name / application_name:
        Identification of the run.
    reference_time_s:
        The per-frame performance requirement the run was executed against.
    records:
        One :class:`~repro.sim.epoch.FrameRecord` per decision epoch.
    exploration_count:
        Number of explorative decisions the governor reported.
    converged_epoch:
        Epoch at which the governor's learning converged (``None`` for
        non-learning governors or unconverged runs).
    """

    governor_name: str
    application_name: str
    reference_time_s: float
    records: List[FrameRecord] = field(default_factory=list)
    exploration_count: int = 0
    converged_epoch: Optional[int] = None

    def __post_init__(self) -> None:
        if self.reference_time_s <= 0:
            raise SimulationError("reference_time_s must be positive")

    # -- totals ------------------------------------------------------------------
    @property
    def num_frames(self) -> int:
        """Number of simulated decision epochs."""
        return len(self.records)

    @property
    def total_energy_j(self) -> float:
        """Total energy over the run."""
        return sum(r.energy_j for r in self.records)

    @property
    def total_time_s(self) -> float:
        """Total wall-clock time of the run (sum of epoch intervals)."""
        return sum(r.interval_s for r in self.records)

    @property
    def average_power_w(self) -> float:
        """Mean power over the run."""
        total_time = self.total_time_s
        if total_time <= 0:
            return 0.0
        return self.total_energy_j / total_time

    @property
    def frame_times_s(self) -> List[float]:
        """Per-frame execution times (busy + overhead)."""
        return [r.frame_time_s for r in self.records]

    @property
    def average_frame_time_s(self) -> float:
        """Mean per-frame execution time."""
        if not self.records:
            return 0.0
        return sum(self.frame_times_s) / len(self.records)

    # -- the paper's normalised metrics ----------------------------------------------
    @property
    def normalized_performance(self) -> float:
        """Average frame time / Tref (Table I definition: >1 under-performs, <1 over-performs)."""
        return self.average_frame_time_s / self.reference_time_s

    def normalized_energy(self, oracle: "SimulationResult") -> float:
        """This run's energy divided by the Oracle run's energy (Table I definition)."""
        oracle_energy = oracle.total_energy_j
        if oracle_energy <= 0:
            raise SimulationError("oracle energy must be positive for normalisation")
        return self.total_energy_j / oracle_energy

    @property
    def deadline_miss_ratio(self) -> float:
        """Fraction of frames that missed their deadline."""
        if not self.records:
            return 0.0
        misses = sum(1 for r in self.records if not r.met_deadline)
        return misses / len(self.records)

    @property
    def mean_slack_ratio(self) -> float:
        """Mean per-frame slack ratio."""
        if not self.records:
            return 0.0
        return sum(r.slack_ratio for r in self.records) / len(self.records)

    @property
    def total_overhead_s(self) -> float:
        """Total governor overhead charged over the run."""
        return sum(r.overhead_time_s for r in self.records)

    def energy_account(self) -> EnergyAccount:
        """Export the run as an :class:`~repro.platform.energy.EnergyAccount`."""
        return EnergyAccount(
            total_energy_j=self.total_energy_j,
            total_time_s=self.total_time_s,
            frame_times_s=self.frame_times_s,
            reference_time_s=self.reference_time_s,
        )

    # -- JSON round-trip -----------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form of the complete run (used by campaign persistence)."""
        return {
            "governor_name": self.governor_name,
            "application_name": self.application_name,
            "reference_time_s": self.reference_time_s,
            "exploration_count": self.exploration_count,
            "converged_epoch": self.converged_epoch,
            "records": [record.to_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            governor_name=data["governor_name"],
            application_name=data["application_name"],
            reference_time_s=data["reference_time_s"],
            records=[FrameRecord.from_dict(record) for record in data.get("records", [])],
            exploration_count=data.get("exploration_count", 0),
            converged_epoch=data.get("converged_epoch"),
        )

    # -- slicing ------------------------------------------------------------------------
    def window(self, first_frame: int, last_frame: Optional[int] = None) -> "SimulationResult":
        """A copy restricted to frames ``[first_frame, last_frame)`` (for phase analysis)."""
        subset: Sequence[FrameRecord] = [
            r
            for r in self.records
            if r.index >= first_frame and (last_frame is None or r.index < last_frame)
        ]
        return SimulationResult(
            governor_name=self.governor_name,
            application_name=self.application_name,
            reference_time_s=self.reference_time_s,
            records=list(subset),
            exploration_count=self.exploration_count,
            converged_epoch=self.converged_epoch,
        )

    def __repr__(self) -> str:
        return (
            f"SimulationResult({self.governor_name!r} on {self.application_name!r}, "
            f"{self.num_frames} frames, {self.total_energy_j:.2f} J)"
        )
