"""Simulation result container and the paper's normalisations.

:class:`SimulationResult` is backed by either a list of
:class:`~repro.sim.epoch.FrameRecord` objects (the scalar engine's output)
or by :class:`~repro.sim.epoch.FrameColumns` columnar storage (the
vectorised and table-driven engines' output).  Either way the public API is
the same: ``result.records`` always yields records (materialised lazily
from columns on first access), the aggregate properties read whichever
backing store is cheaper, and :meth:`to_arrays` exposes the run as columns
for array-oriented consumers (metrics, reporting, plotting).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import SimulationError
from repro.platform.energy import EnergyAccount
from repro.sim.epoch import FRAME_COLUMN_NAMES, FrameColumns, FrameRecord


class SimulationResult:
    """Complete outcome of running one governor over one application.

    Attributes
    ----------
    governor_name / application_name:
        Identification of the run.
    reference_time_s:
        The per-frame performance requirement the run was executed against.
    records:
        One :class:`~repro.sim.epoch.FrameRecord` per decision epoch.  When
        the result was built from columns the records are materialised on
        first access, at which point the record list becomes the single
        source of truth (the columns are dropped, so in-place edits are
        reflected by every aggregate, exactly as with a plain record list).
    exploration_count:
        Number of explorative decisions the governor reported.
    converged_epoch:
        Epoch at which the governor's learning converged (``None`` for
        non-learning governors or unconverged runs).
    engine_used:
        Name of the engine backend that produced this result (``"scalar"``,
        ``"fastpath"``, ``"tablepath"``, ``"thermalpath"``, or a registered
        third-party backend).  Stamped by
        :meth:`~repro.sim.engine.SimulationEngine.run`; empty for results
        built by hand or by calling an engine module directly.
    """

    __slots__ = (
        "governor_name",
        "application_name",
        "reference_time_s",
        "exploration_count",
        "converged_epoch",
        "engine_used",
        "_records",
        "_columns",
    )

    def __init__(
        self,
        governor_name: str,
        application_name: str,
        reference_time_s: float,
        records: Optional[List[FrameRecord]] = None,
        exploration_count: int = 0,
        converged_epoch: Optional[int] = None,
        columns: Optional[FrameColumns] = None,
        engine_used: str = "",
    ) -> None:
        if reference_time_s <= 0:
            raise SimulationError("reference_time_s must be positive")
        if records is not None and columns is not None:
            raise SimulationError("pass either records or columns, not both")
        self.governor_name = governor_name
        self.application_name = application_name
        self.reference_time_s = reference_time_s
        self.exploration_count = exploration_count
        self.converged_epoch = converged_epoch
        self.engine_used = engine_used
        self._columns = columns
        # The passed-in list is stored as-is (not copied) so callers that
        # append to `result.records` after construction keep working.
        self._records: Optional[List[FrameRecord]] = (
            records if records is not None else (None if columns is not None else [])
        )

    # -- backing stores ---------------------------------------------------------
    @property
    def records(self) -> List[FrameRecord]:
        """Per-frame records, materialised from columns on first access.

        Materialisation hands authority over to the record list: the
        columnar store is dropped so any caller mutation of the list (or of
        individual entries) is reflected by every aggregate, matching the
        semantics of a result constructed from records directly.
        """
        if self._records is None:
            self._records = self._columns.materialize()
            self._columns = None
        return self._records

    @property
    def columns(self) -> Optional[FrameColumns]:
        """The columnar backing store, if still authoritative.

        ``None`` for record-built results and for columnar results whose
        ``records`` have been materialised (authority moves to the list).
        """
        return self._columns

    def _column(self, name: str) -> Optional[Sequence]:
        """The named column when the columnar store is authoritative."""
        columns = self._columns
        if columns is None:
            return None
        return getattr(columns, name)

    def to_arrays(self) -> Dict[str, Any]:
        """The run as one array (NumPy when available, list otherwise) per field.

        Keys are the :class:`~repro.sim.epoch.FrameRecord` field names;
        ``cycles_per_core`` is a 2-D ``(num_frames, num_cores)`` array.  This
        is the accessor array-oriented consumers (metrics, reporting,
        plotting) should use instead of looping over ``records``.
        """
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - exercised on numpy-less installs
            np = None
        arrays: Dict[str, Any] = {}
        for name in FRAME_COLUMN_NAMES:
            column = self._column(name)
            if column is None:
                column = [getattr(record, name) for record in self.records]
            arrays[name] = np.asarray(column) if np is not None else list(column)
        return arrays

    # -- totals ------------------------------------------------------------------
    @property
    def num_frames(self) -> int:
        """Number of simulated decision epochs."""
        columns = self._columns
        if columns is not None:
            return len(columns)
        return len(self.records)

    @property
    def total_energy_j(self) -> float:
        """Total energy over the run."""
        column = self._column("energy_j")
        if column is not None:
            return sum(column)
        return sum(r.energy_j for r in self.records)

    @property
    def total_time_s(self) -> float:
        """Total wall-clock time of the run (sum of epoch intervals)."""
        column = self._column("interval_s")
        if column is not None:
            return sum(column)
        return sum(r.interval_s for r in self.records)

    @property
    def average_power_w(self) -> float:
        """Mean power over the run."""
        total_time = self.total_time_s
        if total_time <= 0:
            return 0.0
        return self.total_energy_j / total_time

    @property
    def frame_times_s(self) -> List[float]:
        """Per-frame execution times (busy + overhead)."""
        column = self._column("frame_time_s")
        if column is not None:
            return list(column)
        return [r.frame_time_s for r in self.records]

    @property
    def average_frame_time_s(self) -> float:
        """Mean per-frame execution time."""
        frame_times = self.frame_times_s
        if not frame_times:
            return 0.0
        return sum(frame_times) / len(frame_times)

    # -- the paper's normalised metrics ----------------------------------------------
    @property
    def normalized_performance(self) -> float:
        """Average frame time / Tref (Table I definition: >1 under-performs, <1 over-performs)."""
        return self.average_frame_time_s / self.reference_time_s

    def normalized_energy(self, oracle: "SimulationResult") -> float:
        """This run's energy divided by the Oracle run's energy (Table I definition)."""
        oracle_energy = oracle.total_energy_j
        if oracle_energy <= 0:
            raise SimulationError("oracle energy must be positive for normalisation")
        return self.total_energy_j / oracle_energy

    @property
    def deadline_miss_ratio(self) -> float:
        """Fraction of frames that missed their deadline."""
        frame_times = self._column("frame_time_s")
        deadlines = self._column("deadline_s")
        if frame_times is not None and deadlines is not None:
            if not frame_times:
                return 0.0
            misses = sum(
                1
                for frame_time, deadline in zip(frame_times, deadlines)
                if frame_time > deadline + 1e-12
            )
            return misses / len(frame_times)
        if not self.records:
            return 0.0
        misses = sum(1 for r in self.records if not r.met_deadline)
        return misses / len(self.records)

    @property
    def mean_slack_ratio(self) -> float:
        """Mean per-frame slack ratio."""
        frame_times = self._column("frame_time_s")
        deadlines = self._column("deadline_s")
        if frame_times is not None and deadlines is not None:
            if not frame_times:
                return 0.0
            total = sum(
                (deadline - frame_time) / deadline if deadline > 0 else 0.0
                for frame_time, deadline in zip(frame_times, deadlines)
            )
            return total / len(frame_times)
        if not self.records:
            return 0.0
        return sum(r.slack_ratio for r in self.records) / len(self.records)

    @property
    def total_overhead_s(self) -> float:
        """Total governor overhead charged over the run."""
        column = self._column("overhead_time_s")
        if column is not None:
            return sum(column)
        return sum(r.overhead_time_s for r in self.records)

    def energy_account(self) -> EnergyAccount:
        """Export the run as an :class:`~repro.platform.energy.EnergyAccount`."""
        return EnergyAccount(
            total_energy_j=self.total_energy_j,
            total_time_s=self.total_time_s,
            frame_times_s=self.frame_times_s,
            reference_time_s=self.reference_time_s,
        )

    # -- JSON round-trip -----------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form of the complete run (used by campaign persistence)."""
        data: Dict[str, Any] = {
            "governor_name": self.governor_name,
            "application_name": self.application_name,
            "reference_time_s": self.reference_time_s,
            "exploration_count": self.exploration_count,
            "converged_epoch": self.converged_epoch,
            "records": [record.to_dict() for record in self.records],
        }
        if self.engine_used:
            data["engine_used"] = self.engine_used
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            governor_name=data["governor_name"],
            application_name=data["application_name"],
            reference_time_s=data["reference_time_s"],
            records=[FrameRecord.from_dict(record) for record in data.get("records", [])],
            exploration_count=data.get("exploration_count", 0),
            converged_epoch=data.get("converged_epoch"),
            engine_used=data.get("engine_used", ""),
        )

    # -- slicing ------------------------------------------------------------------------
    def window(self, first_frame: int, last_frame: Optional[int] = None) -> "SimulationResult":
        """A copy restricted to frames ``[first_frame, last_frame)`` (for phase analysis)."""
        subset: Sequence[FrameRecord] = [
            r
            for r in self.records
            if r.index >= first_frame and (last_frame is None or r.index < last_frame)
        ]
        return SimulationResult(
            governor_name=self.governor_name,
            application_name=self.application_name,
            reference_time_s=self.reference_time_s,
            records=list(subset),
            exploration_count=self.exploration_count,
            converged_epoch=self.converged_epoch,
            engine_used=self.engine_used,
        )

    # -- equality (matches the former dataclass semantics) -------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimulationResult):
            return NotImplemented
        return (
            self.governor_name == other.governor_name
            and self.application_name == other.application_name
            and self.reference_time_s == other.reference_time_s
            and self.exploration_count == other.exploration_count
            and self.converged_epoch == other.converged_epoch
            and self.records == other.records
        )

    def __repr__(self) -> str:
        return (
            f"SimulationResult({self.governor_name!r} on {self.application_name!r}, "
            f"{self.num_frames} frames, {self.total_energy_j:.2f} J)"
        )
