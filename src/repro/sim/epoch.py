"""Per-epoch (per-frame) simulation records."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Tuple

from repro._compat import SLOTS


@dataclass(frozen=True, **SLOTS)
class FrameRecord:
    """Everything measured about one decision epoch of a simulation run.

    Attributes
    ----------
    index:
        Frame / decision-epoch index.
    operating_index:
        Operating-point index in force during the epoch.
    frequency_mhz:
        Frequency of that operating point, in MHz (for reporting).
    cycles_per_core:
        Busy cycles executed by each core.
    busy_time_s:
        Critical-path execution time of the frame (excludes overhead).
    overhead_time_s:
        Governor overhead charged to the epoch (processing + sensor access +
        DVFS transition latency), the paper's per-epoch ``T_OVH``.
    frame_time_s:
        ``busy_time_s + overhead_time_s`` — the time compared against the
        deadline.
    interval_s:
        Full wall-clock duration of the epoch including idle padding.
    deadline_s:
        The frame's deadline (``Tref``).
    energy_j:
        Energy consumed during the epoch.
    average_power_w:
        True average power over the epoch.
    measured_power_w:
        Power as reported by the on-board sensor.
    temperature_c:
        Junction temperature at the end of the epoch.
    explored:
        True if the governor reported this epoch's action as explorative.
    """

    index: int
    operating_index: int
    frequency_mhz: float
    cycles_per_core: Tuple[float, ...]
    busy_time_s: float
    overhead_time_s: float
    frame_time_s: float
    interval_s: float
    deadline_s: float
    energy_j: float
    average_power_w: float
    measured_power_w: float
    temperature_c: float
    explored: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form of the record."""
        data = asdict(self)
        data["cycles_per_core"] = list(self.cycles_per_core)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FrameRecord":
        """Inverse of :meth:`to_dict`."""
        fields = dict(data)
        fields["cycles_per_core"] = tuple(fields["cycles_per_core"])
        return cls(**fields)

    @property
    def met_deadline(self) -> bool:
        """True when the frame (including overhead) finished within its deadline."""
        return self.frame_time_s <= self.deadline_s + 1e-12

    @property
    def slack_ratio(self) -> float:
        """Per-frame slack ratio ``(Tref - frame_time) / Tref``."""
        if self.deadline_s <= 0:
            return 0.0
        return (self.deadline_s - self.frame_time_s) / self.deadline_s

    @property
    def max_cycles(self) -> float:
        """Largest per-core cycle count in the epoch."""
        return max(self.cycles_per_core)

    @property
    def total_cycles(self) -> float:
        """Total cycles over all cores in the epoch."""
        return sum(self.cycles_per_core)
