"""Per-epoch (per-frame) simulation records and their columnar storage."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro._compat import SLOTS
from repro.errors import SimulationError


@dataclass(frozen=True, **SLOTS)
class FrameRecord:
    """Everything measured about one decision epoch of a simulation run.

    Attributes
    ----------
    index:
        Frame / decision-epoch index.
    operating_index:
        Operating-point index in force during the epoch.
    frequency_mhz:
        Frequency of that operating point, in MHz (for reporting).
    cycles_per_core:
        Busy cycles executed by each core.
    busy_time_s:
        Critical-path execution time of the frame (excludes overhead).
    overhead_time_s:
        Governor overhead charged to the epoch (processing + sensor access +
        DVFS transition latency), the paper's per-epoch ``T_OVH``.
    frame_time_s:
        ``busy_time_s + overhead_time_s`` — the time compared against the
        deadline.
    interval_s:
        Full wall-clock duration of the epoch including idle padding.
    deadline_s:
        The frame's deadline (``Tref``).
    energy_j:
        Energy consumed during the epoch.
    average_power_w:
        True average power over the epoch.
    measured_power_w:
        Power as reported by the on-board sensor.
    temperature_c:
        Junction temperature at the end of the epoch.
    explored:
        True if the governor reported this epoch's action as explorative.
    """

    index: int
    operating_index: int
    frequency_mhz: float
    cycles_per_core: Tuple[float, ...]
    busy_time_s: float
    overhead_time_s: float
    frame_time_s: float
    interval_s: float
    deadline_s: float
    energy_j: float
    average_power_w: float
    measured_power_w: float
    temperature_c: float
    explored: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form of the record."""
        data = asdict(self)
        data["cycles_per_core"] = list(self.cycles_per_core)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FrameRecord":
        """Inverse of :meth:`to_dict`."""
        fields = dict(data)
        fields["cycles_per_core"] = tuple(fields["cycles_per_core"])
        return cls(**fields)

    @property
    def met_deadline(self) -> bool:
        """True when the frame (including overhead) finished within its deadline."""
        return self.frame_time_s <= self.deadline_s + 1e-12

    @property
    def slack_ratio(self) -> float:
        """Per-frame slack ratio ``(Tref - frame_time) / Tref``."""
        if self.deadline_s <= 0:
            return 0.0
        return (self.deadline_s - self.frame_time_s) / self.deadline_s

    @property
    def max_cycles(self) -> float:
        """Largest per-core cycle count in the epoch."""
        return max(self.cycles_per_core)

    @property
    def total_cycles(self) -> float:
        """Total cycles over all cores in the epoch."""
        return sum(self.cycles_per_core)


#: Column names of :class:`FrameColumns`, in :class:`FrameRecord` field order.
FRAME_COLUMN_NAMES: Tuple[str, ...] = (
    "index",
    "operating_index",
    "frequency_mhz",
    "cycles_per_core",
    "busy_time_s",
    "overhead_time_s",
    "frame_time_s",
    "interval_s",
    "deadline_s",
    "energy_j",
    "average_power_w",
    "measured_power_w",
    "temperature_c",
    "explored",
)


class FrameColumns:
    """Column-oriented storage of a run's per-frame records.

    Holds one plain-Python sequence per :class:`FrameRecord` field, all of
    equal length.  The fast-path engines produce their results in this form
    so that no ``FrameRecord`` is allocated inside (or right after) the hot
    loop; :class:`~repro.sim.results.SimulationResult` materialises records
    lazily — only if a caller actually iterates ``result.records`` — while
    totals, metrics and reports read the columns directly.

    Columns are stored as lists of native Python scalars (``cycles_per_core``
    as a list of per-core tuples), which keeps the container picklable for
    the campaign process-pool backend and keeps ``sum()``/comparison
    semantics bit-identical to iterating materialised records.

    A deferred instance (:meth:`from_deferred`) postpones even building the
    lists: the batched engine keeps each family's results as matrices and
    converts them to Python lists only when a column is first read, so runs
    whose consumers never touch a member's columns never pay the
    conversion.  The laziness is invisible: every accessor, ``len()``,
    pickling and record materialisation produce exactly what an eager
    instance would.
    """

    __slots__ = tuple(FRAME_COLUMN_NAMES) + ("_loader",)

    def __init__(
        self,
        index: Sequence[int],
        operating_index: Sequence[int],
        frequency_mhz: Sequence[float],
        cycles_per_core: Sequence[Tuple[float, ...]],
        busy_time_s: Sequence[float],
        overhead_time_s: Sequence[float],
        frame_time_s: Sequence[float],
        interval_s: Sequence[float],
        deadline_s: Sequence[float],
        energy_j: Sequence[float],
        average_power_w: Sequence[float],
        measured_power_w: Sequence[float],
        temperature_c: Sequence[float],
        explored: Sequence[bool],
    ) -> None:
        self.index = list(index)
        self.operating_index = list(operating_index)
        self.frequency_mhz = list(frequency_mhz)
        self.cycles_per_core = list(cycles_per_core)
        self.busy_time_s = list(busy_time_s)
        self.overhead_time_s = list(overhead_time_s)
        self.frame_time_s = list(frame_time_s)
        self.interval_s = list(interval_s)
        self.deadline_s = list(deadline_s)
        self.energy_j = list(energy_j)
        self.average_power_w = list(average_power_w)
        self.measured_power_w = list(measured_power_w)
        self.temperature_c = list(temperature_c)
        self.explored = list(explored)
        length = len(self.index)
        for name in FRAME_COLUMN_NAMES:
            if len(getattr(self, name)) != length:
                raise SimulationError(
                    f"frame column {name!r} has {len(getattr(self, name))} entries, "
                    f"expected {length}"
                )

    @classmethod
    def from_trusted_lists(
        cls,
        *,
        index: List[int],
        operating_index: List[int],
        frequency_mhz: List[float],
        cycles_per_core: List[Tuple[float, ...]],
        busy_time_s: List[float],
        overhead_time_s: List[float],
        frame_time_s: List[float],
        interval_s: List[float],
        deadline_s: List[float],
        energy_j: List[float],
        average_power_w: List[float],
        measured_power_w: List[float],
        temperature_c: List[float],
        explored: List[bool],
    ) -> "FrameColumns":
        """Adopt already-built columns without copying or re-validating.

        For engine internals that materialise whole columns at once (the
        batched engine builds them for S members in bulk): every argument
        must be a plain equal-length list that the caller either owns
        outright or shares deliberately and never mutates afterwards.
        ``__init__``'s defensive copy is what this skips — at large batch
        sizes those copies dominate the scatter cost.
        """
        self = cls.__new__(cls)
        self.index = index
        self.operating_index = operating_index
        self.frequency_mhz = frequency_mhz
        self.cycles_per_core = cycles_per_core
        self.busy_time_s = busy_time_s
        self.overhead_time_s = overhead_time_s
        self.frame_time_s = frame_time_s
        self.interval_s = interval_s
        self.deadline_s = deadline_s
        self.energy_j = energy_j
        self.average_power_w = average_power_w
        self.measured_power_w = measured_power_w
        self.temperature_c = temperature_c
        self.explored = explored
        return self

    @classmethod
    def from_deferred(cls, loader) -> "FrameColumns":
        """Defer column construction until a column is first read.

        ``loader()`` must return a mapping with one entry per
        :data:`FRAME_COLUMN_NAMES` name, each an equal-length list obeying
        the :meth:`from_trusted_lists` ownership rules.  It runs at most
        once — on the first column access (or on pickling) every column is
        filled in and the instance becomes indistinguishable from an eager
        one, with zero per-access overhead from then on.
        """
        self = cls.__new__(cls)
        self._loader = loader
        return self

    def _materialise_columns(self) -> None:
        loader = self._loader
        if loader is None:
            return
        self._loader = None
        columns = loader()
        for name in FRAME_COLUMN_NAMES:
            setattr(self, name, columns[name])

    def __getattr__(self, name: str):
        # Reached only for unset slots: the first column read of a deferred
        # instance (eager instances have every column slot filled).
        if name in FRAME_COLUMN_NAMES:
            try:
                self._materialise_columns()
            except AttributeError:
                raise AttributeError(name) from None
            return getattr(self, name)
        raise AttributeError(name)

    def __getstate__(self) -> Dict[str, Any]:
        # Deferred loaders are closures over engine internals: materialise
        # before pickling so the wire format is always the plain columns.
        if getattr(self, "_loader", None) is not None:
            self._materialise_columns()
        return {name: getattr(self, name) for name in FRAME_COLUMN_NAMES}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for name, value in state.items():
            setattr(self, name, value)

    def __len__(self) -> int:
        return len(self.index)

    def record(self, position: int) -> FrameRecord:
        """Materialise the :class:`FrameRecord` at ``position``."""
        return FrameRecord(
            self.index[position],
            self.operating_index[position],
            self.frequency_mhz[position],
            self.cycles_per_core[position],
            self.busy_time_s[position],
            self.overhead_time_s[position],
            self.frame_time_s[position],
            self.interval_s[position],
            self.deadline_s[position],
            self.energy_j[position],
            self.average_power_w[position],
            self.measured_power_w[position],
            self.temperature_c[position],
            self.explored[position],
        )

    def materialize(self) -> List[FrameRecord]:
        """Materialise every record (one allocation per frame, outside any hot loop)."""
        make = FrameRecord
        return [
            make(*row)
            for row in zip(
                self.index,
                self.operating_index,
                self.frequency_mhz,
                self.cycles_per_core,
                self.busy_time_s,
                self.overhead_time_s,
                self.frame_time_s,
                self.interval_s,
                self.deadline_s,
                self.energy_j,
                self.average_power_w,
                self.measured_power_w,
                self.temperature_c,
                self.explored,
            )
        ]
