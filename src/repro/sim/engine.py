"""Frame-stepped closed-loop simulation engine.

One engine instance owns one :class:`~repro.platform.cluster.Cluster` and
runs one application under one governor at a time, producing a
:class:`~repro.sim.results.SimulationResult` with a per-epoch record of
time, energy and governor behaviour.

Three execution strategies share this entry point, selected automatically
per run (fastest eligible wins, scalar always correct):

1. the **vectorised trace engine** (:mod:`repro.sim.fastpath`) for
   governors that expose a static schedule — no per-frame loop at all;
2. the **table-driven closed-loop engine** (:mod:`repro.sim.tablepath`)
   for every other governor on an eligible platform — the loop remains
   (decisions are observation-dependent) but all physics is precomputed;
3. the **scalar engine** below — the universal fallback (thermally-enabled
   clusters, NumPy-less installs, ``prefer_fast_path=False``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.platform.cluster import Cluster
from repro.rtm.governor import EpochObservation, FrameHint, Governor, PlatformInfo
from repro.sim import fastpath, tablepath
from repro.sim.epoch import FrameRecord
from repro.sim.results import SimulationResult
from repro.workload.application import Application


@dataclass(frozen=True)
class SimulationConfig:
    """Engine behaviour switches.

    Attributes
    ----------
    idle_until_deadline:
        If True (default) the cluster idles out the remainder of the frame
        period when a frame finishes early, as a rate-limited periodic
        application does on the real board.  Idle power at the selected
        operating point is therefore part of the frame's energy, which is
        what makes "race ahead then idle at high voltage" unattractive and
        the Oracle's slowest-deadline-meeting point optimal.
    charge_governor_overhead:
        If True (default) the governor's per-epoch processing time and the
        DVFS transition latency are added to the frame's execution time (the
        paper's ``T_OVH``).
    initial_operating_index:
        Operating-point index in force before the first decision; ``None``
        selects the fastest point (the after-boot default).
    prefer_fast_path:
        If True (default) the engine picks the fastest eligible strategy:
        governors whose decisions are observation-independent (probed with
        :meth:`~repro.rtm.governor.Governor.static_schedule`) run through
        the vectorised engine in :mod:`repro.sim.fastpath`; every other
        governor runs through the table-driven closed-loop engine in
        :mod:`repro.sim.tablepath` when the platform is eligible (NumPy
        available, thermal model disabled).  Both reproduce the scalar
        engine to ~1e-9 relative tolerance with identical decision
        trajectories; set False to force the scalar engine (e.g. for
        bit-exact regression comparisons against archived scalar results).
    """

    idle_until_deadline: bool = True
    charge_governor_overhead: bool = True
    initial_operating_index: Optional[int] = None
    prefer_fast_path: bool = True


def _epoch_outputs(
    frame_index: int,
    per_core: Sequence[float],
    execution,
    deadline_s: float,
    overhead_s: float,
    explored: bool,
) -> Tuple[FrameRecord, EpochObservation]:
    """Build the epoch's record and the governor's observation from one snapshot.

    The two views share every measured quantity; deriving both from a single
    call keeps them from drifting apart.
    """
    busy_time_s = max(core_result.busy_time_s for core_result in execution.core_results)
    cycles = tuple(per_core)
    record = FrameRecord(
        index=frame_index,
        operating_index=execution.operating_index,
        frequency_mhz=execution.operating_point.frequency_mhz,
        cycles_per_core=cycles,
        busy_time_s=busy_time_s,
        overhead_time_s=overhead_s,
        frame_time_s=busy_time_s + overhead_s,
        interval_s=execution.duration_s,
        deadline_s=deadline_s,
        energy_j=execution.energy_j,
        average_power_w=execution.average_power_w,
        measured_power_w=execution.measured_power_w,
        temperature_c=execution.temperature_c,
        explored=explored,
    )
    observation = EpochObservation(
        epoch_index=frame_index,
        cycles_per_core=cycles,
        busy_time_s=busy_time_s,
        interval_s=execution.duration_s,
        reference_time_s=deadline_s,
        operating_index=execution.operating_index,
        energy_j=execution.energy_j,
        measured_power_w=execution.measured_power_w,
        overhead_time_s=overhead_s,
    )
    return record, observation


class SimulationEngine:
    """Runs applications under governors on a cluster model.

    Parameters
    ----------
    cluster:
        The platform model to execute on.
    config:
        Engine behaviour switches (see :class:`SimulationConfig`).
    table_provider:
        Optional callable ``(cluster, application, config) -> WorkloadTable``
        invoked when (and only when) a run takes the table-driven
        closed-loop path.  Callers that run many scenarios over the same
        application and cluster (the campaign executor) supply a caching
        provider here so the precomputed physics is shared; ``None`` builds
        fresh tables per run.
    """

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[SimulationConfig] = None,
        table_provider: Optional[tablepath.TableProvider] = None,
    ) -> None:
        self.cluster = cluster
        self.config = config or SimulationConfig()
        self.table_provider = table_provider
        self._last_used_fast_path = False
        self._last_used_table_path = False

    @property
    def last_used_fast_path(self) -> bool:
        """True when the most recent :meth:`run` took the vectorised fast path."""
        return self._last_used_fast_path

    @property
    def last_used_table_path(self) -> bool:
        """True when the most recent :meth:`run` took the table-driven closed loop."""
        return self._last_used_table_path

    def platform_info(self) -> PlatformInfo:
        """Static platform description handed to governors at setup."""
        return PlatformInfo(
            num_cores=self.cluster.num_cores,
            vf_table=self.cluster.vf_table,
        )

    def run(
        self,
        application: Application,
        governor: Governor,
        reset_cluster: bool = True,
    ) -> SimulationResult:
        """Execute ``application`` under ``governor`` and return the run's result.

        Parameters
        ----------
        application:
            The frame sequence and performance requirement to execute.
        governor:
            The DVFS policy under test; it is (re-)``setup()`` for this run.
        reset_cluster:
            If True (default) the cluster's meters, PMUs, thermal state and
            DVFS history are cleared before the run so results are
            independent of prior runs.
        """
        if application.num_frames == 0:
            raise SimulationError("cannot simulate an application with no frames")
        config = self.config
        if reset_cluster:
            self.cluster.reset(config.initial_operating_index)

        governor.setup(self.platform_info(), application.requirement)

        # Strategy selection: observation-independent governors skip the
        # closed loop entirely (vectorised); everything else takes the
        # table-driven loop when eligible, else the scalar loop.
        self._last_used_fast_path = False
        self._last_used_table_path = False
        if config.prefer_fast_path and fastpath.fast_path_eligible(self.cluster):
            schedule = governor.static_schedule(application)
            if schedule is not None:
                result = fastpath.simulate_schedule(
                    self.cluster, application, governor, config, schedule
                )
                self._last_used_fast_path = True
                return result
            tables = None
            if self.table_provider is not None:
                tables = self.table_provider(self.cluster, application, config)
            result = tablepath.simulate_closed_loop(
                self.cluster, application, governor, config, tables=tables
            )
            self._last_used_table_path = True
            return result

        return self._run_scalar(application, governor)

    def _run_scalar(
        self, application: Application, governor: Governor
    ) -> SimulationResult:
        """The frame-by-frame scalar loop — the universal fallback."""
        config = self.config
        cluster = self.cluster
        result = SimulationResult(
            governor_name=governor.name,
            application_name=application.name,
            reference_time_s=application.reference_time_s,
        )
        previous_observation: Optional[EpochObservation] = None
        previous_exploration_count = governor.exploration_count
        exploration_frozen = governor.exploration_frozen
        charge_overhead = config.charge_governor_overhead
        idle_until_deadline = config.idle_until_deadline
        # Hoisted per-frame constants: the processing overhead when it is a
        # plain class attribute (non-learning governors), and one reusable
        # FrameHint rebuilt in place (no governor retains hints beyond
        # decide(); the Oracle, the only reader, consumes it immediately).
        static_overhead = tablepath.static_processing_overhead(governor)
        hint: Optional[FrameHint] = None
        set_hint = object.__setattr__
        records_append = result.records.append

        for frame in application:
            per_core = frame.cycles_per_core(cluster.num_cores)
            if hint is None:
                hint = FrameHint(cycles_per_core=per_core, deadline_s=frame.deadline_s)
            else:
                set_hint(hint, "cycles_per_core", per_core)
                set_hint(hint, "deadline_s", frame.deadline_s)

            operating_index = governor.decide(previous_observation, hint)
            transition = cluster.set_operating_index(operating_index)

            minimum_interval = frame.deadline_s if idle_until_deadline else 0.0
            execution = cluster.execute_workload(
                per_core,
                minimum_interval_s=minimum_interval,
                pending_transition=transition,
            )

            overhead = 0.0
            if charge_overhead:
                if static_overhead is None:
                    overhead = governor.processing_overhead_s + transition.latency_s
                else:
                    overhead = static_overhead + transition.latency_s

            if exploration_frozen:
                explored = False
            else:
                exploration_count = governor.exploration_count
                explored = exploration_count > previous_exploration_count
                previous_exploration_count = exploration_count
                exploration_frozen = governor.exploration_frozen

            record, previous_observation = _epoch_outputs(
                frame_index=frame.index,
                per_core=per_core,
                execution=execution,
                deadline_s=frame.deadline_s,
                overhead_s=overhead,
                explored=explored,
            )
            records_append(record)

        result.exploration_count = governor.exploration_count
        result.converged_epoch = governor.converged_epoch
        return result
