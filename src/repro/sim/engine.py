"""Frame-stepped closed-loop simulation engine.

One engine instance owns one :class:`~repro.platform.cluster.Cluster` and
runs one application under one governor at a time, producing a
:class:`~repro.sim.results.SimulationResult` with a per-epoch record of
time, energy and governor behaviour.

Execution strategies are pluggable :class:`~repro.sim.backends.EngineBackend`
implementations selected per run by capability negotiation (see
:mod:`repro.sim.backends`): each backend declares what it supports
(thermal coupling, static schedules, table reuse, NumPy) and the highest
priority backend whose declarations admit the (cluster, application,
governor, config) request wins.  The built-ins are the vectorised trace
engine (``fastpath``), the isothermal table-driven closed loop
(``tablepath``), the thermally-coupled table-driven closed loop
(``thermalpath``) and the universal scalar reference loop (``scalar``).
The backend that ran is recorded on the result as
:attr:`SimulationResult.engine_used`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError
from repro.platform.cluster import Cluster
from repro.rtm.governor import Governor, PlatformInfo
from repro.sim import backends, tablepath
from repro.sim.results import SimulationResult
from repro.workload.application import Application


@dataclass(frozen=True)
class SimulationConfig:
    """Engine behaviour switches.

    Attributes
    ----------
    idle_until_deadline:
        If True (default) the cluster idles out the remainder of the frame
        period when a frame finishes early, as a rate-limited periodic
        application does on the real board.  Idle power at the selected
        operating point is therefore part of the frame's energy, which is
        what makes "race ahead then idle at high voltage" unattractive and
        the Oracle's slowest-deadline-meeting point optimal.
    charge_governor_overhead:
        If True (default) the governor's per-epoch processing time and the
        DVFS transition latency are added to the frame's execution time (the
        paper's ``T_OVH``).
    initial_operating_index:
        Operating-point index in force before the first decision; ``None``
        selects the fastest point (the after-boot default).
    prefer_fast_path:
        Deprecated compatibility switch: ``False`` pins the run to the
        ``scalar`` reference backend (e.g. for bit-exact regression
        comparisons against archived scalar results).  Prefer the engine
        request — ``SimulationEngine(..., engine="scalar")`` or a scenario
        spec's ``engine`` field — which goes through the same backend
        registry as every other selection.
    """

    idle_until_deadline: bool = True
    charge_governor_overhead: bool = True
    initial_operating_index: Optional[int] = None
    prefer_fast_path: bool = True


class SimulationEngine:
    """Runs applications under governors on a cluster model.

    Parameters
    ----------
    cluster:
        The platform model to execute on.
    config:
        Engine behaviour switches (see :class:`SimulationConfig`).
    table_provider:
        Optional callable ``(cluster, application, config) -> tables``
        invoked when (and only when) the winning backend consumes
        precomputed physics tables (``supports_tables``).  Callers that run
        many scenarios over the same application and cluster (the campaign
        executor) supply a caching provider here so the precomputed physics
        is shared; ``None`` builds fresh tables per run.  Returned tables
        are validated against the live cluster before use, so a stale
        provider degrades to a rebuild, never to wrong numbers.
    engine:
        Engine request: ``"auto"`` (default) negotiates the fastest
        eligible backend from the registry in :mod:`repro.sim.backends`; a
        backend name (``"scalar"``, ``"fastpath"``, ``"tablepath"``,
        ``"thermalpath"``, or any registered third-party backend) pins the
        run to that backend, failing with a clear error when its declared
        capabilities cannot accept the run.
    """

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[SimulationConfig] = None,
        table_provider: Optional[tablepath.TableProvider] = None,
        engine: str = backends.AUTO,
    ) -> None:
        self.cluster = cluster
        self.config = config or SimulationConfig()
        self.table_provider = table_provider
        self.engine = engine
        self._engine_used: Optional[str] = None

    @property
    def engine_used(self) -> Optional[str]:
        """Name of the backend the most recent :meth:`run` executed on."""
        return self._engine_used

    @property
    def last_used_fast_path(self) -> bool:
        """Deprecated: True when the most recent run used the ``fastpath`` backend.

        Prefer :attr:`engine_used` (or ``result.engine_used``).
        """
        return self._engine_used == backends.FASTPATH

    @property
    def last_used_table_path(self) -> bool:
        """Deprecated: True when the most recent run used the ``tablepath`` backend.

        Prefer :attr:`engine_used` (or ``result.engine_used``).
        """
        return self._engine_used == backends.TABLEPATH

    def platform_info(self) -> PlatformInfo:
        """Static platform description handed to governors at setup."""
        return PlatformInfo(
            num_cores=self.cluster.num_cores,
            vf_table=self.cluster.vf_table,
        )

    def run(
        self,
        application: Application,
        governor: Governor,
        reset_cluster: bool = True,
    ) -> SimulationResult:
        """Execute ``application`` under ``governor`` and return the run's result.

        Parameters
        ----------
        application:
            The frame sequence and performance requirement to execute.
        governor:
            The DVFS policy under test; it is (re-)``setup()`` for this run.
        reset_cluster:
            If True (default) the cluster's meters, PMUs, thermal state and
            DVFS history are cleared before the run so results are
            independent of prior runs.
        """
        if application.num_frames == 0:
            raise SimulationError("cannot simulate an application with no frames")
        config = self.config
        if reset_cluster:
            self.cluster.reset(config.initial_operating_index)

        governor.setup(self.platform_info(), application.requirement)

        request = backends.EngineRequest(
            cluster=self.cluster,
            application=application,
            governor=governor,
            config=config,
            table_provider=self.table_provider,
        )
        # Cleared before negotiation so a failed selection (or a failed run)
        # cannot leave a previous run's backend name dangling.
        self._engine_used = None
        selected = backends.negotiate(request, engine=self.engine)
        result = selected.run(request)
        self._engine_used = selected.name
        result.engine_used = selected.name
        return result
