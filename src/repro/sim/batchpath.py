"""Batched multi-scenario engine — one NumPy frame loop steps S scenarios.

The table engines (:mod:`repro.sim.tablepath`, :mod:`repro.sim.thermalpath`)
collapsed per-frame physics to table lookups, but a campaign grid still pays
one Python frame loop *per scenario* even when every scenario in the grid
shares the same precomputed (frame × operating-point) physics table.  This
engine adds the missing axis: scenarios that share an application trace and
cluster physics are stepped *simultaneously*, with a leading batch axis on
every per-frame quantity (operating index, busy time, interval, energy,
power, sensor reading, junction temperature), so the per-frame cost is a
handful of ``(S,)`` NumPy operations instead of S loop iterations.

The closed loop stays closed — frame *i*'s operating point still depends on
what each governor observed during frame *i − 1* — so governors are stepped
in lock-step and *vectorised by family*:

* **static** (``performance`` / ``powersave`` / ``userspace``): the pinned
  index is gathered once; the frame loop is pure physics;
* **ondemand** / **conservative**: the load computation, threshold tests,
  hold-window counters and frequency rounding are vectorised across the
  batch (per-member tunables become ``(S,)`` arrays);
* **proposed-rl** (:class:`~repro.rtm.rl_governor.RLGovernor`): the slack
  tracking, reward, state mapping, Bellman update, greedy repair and
  ε-greedy selection are vectorised via
  :class:`~repro.rtm.batch.BatchedAgents`.  The EWMA prediction and
  workload-range chain consumes only the shared trace, so it is replayed
  once per batch in scalar Python and broadcast; the ε decay and the
  explorative EPD draws remain scalar islands driven by each member's own
  ``random.Random`` stream (see :mod:`repro.rtm.batch`);
* **generic** (oracle, the many-core RL formulations, any third-party
  governor): ``decide()`` is called per member, scalar, but the physics,
  sensor and bookkeeping still run batched — correct for *every* governor,
  merely less fast.

Bit-identity is the contract, not a tolerance: every float is produced by
the same IEEE operation on the same operands as the per-scenario table
engines (which in turn match the scalar engine), every ``math.exp`` island
(ε decay, EPD sampling weights, leakage theta, RC decay) stays scalar, and
every RNG draw happens in the scalar call order on the member's own
generator.  A batched run therefore reproduces S individual
tablepath/thermalpath runs exactly — trajectories, miss sets, exploration
counts, Q-tables, cluster aggregate state, transitions and final thermal
state (``tests/test_batchpath.py`` enforces all of this, per governor, with
and without the thermal model).

Eligibility: NumPy importable.  Thermal and isothermal clusters are both
supported; all members of one batch must share the thermal mode, the
application trace and the cluster physics (validated against the shared
table before stepping).
"""

from __future__ import annotations

import math
from collections import deque
from itertools import islice
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

try:  # NumPy is optional: without it every run takes the scalar engine.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None  # type: ignore[assignment]

from repro.errors import InvalidOperatingPointError, SimulationError
from repro.governors.base import StaticGovernor
from repro.governors.conservative import ConservativeGovernor
from repro.governors.ondemand import OndemandGovernor
from repro.platform.cluster import ThermalWorkloadTable, WorkloadTable
from repro.platform.dvfs import DVFSTransition
from repro.rtm.batch import BatchedAgents
from repro.rtm.governor import EpochObservation, FrameHint, PlatformInfo
from repro.rtm.prediction import EWMAPredictor
from repro.rtm.rl_governor import RLGovernor
from repro.rtm.state import WorkloadRangeTracker
from repro.sim import fastpath, tablepath, thermalpath
from repro.sim.epoch import FrameColumns
from repro.sim.results import SimulationResult
from repro.sim.tablepath import static_processing_overhead

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import Cluster
    from repro.rtm.governor import Governor
    from repro.sim.engine import SimulationConfig
    from repro.workload.application import Application

#: One batched scenario: the cluster to mutate and the governor to step.
BatchMember = Tuple["Cluster", "Governor"]


def batch_path_eligible(cluster: "Cluster") -> bool:
    """True when the batched engine reproduces the scalar engine for ``cluster``.

    Only NumPy is required: thermal and isothermal clusters both batch (the
    generic governor family makes every governor steppable).
    """
    return _np is not None


def precompute_tables(
    cluster: "Cluster", application: "Application", config: "SimulationConfig"
):
    """Precompute the shared physics table for one batch.

    Thermally-enabled clusters get the decomposed
    :class:`~repro.platform.cluster.ThermalWorkloadTable`; isothermal
    clusters the fully-baked :class:`~repro.platform.cluster.WorkloadTable`
    — the same tables the per-scenario engines use, so the campaign
    executor's cache serves both.
    """
    if cluster.thermal_model.enabled:
        return thermalpath.precompute_tables(cluster, application, config)
    return tablepath.precompute_tables(cluster, application, config)


#: Family-kind → minimum batch width at which vectorising beats running the
#: members through the per-scenario table engine one by one.  The RL family
#: pays an S-independent chain of small-array NumPy dispatches per frame
#: (Bellman update, ε-greedy selection, reward shaping), so a narrow RL
#: group is faster scalar; the static and threshold families vectorise
#: profitably at any width.  Opt-in: pass to :func:`run_batch` /
#: :func:`simulate_batch` (the campaign batch planner and the benchmarks
#: do; the identity tests force full batching by omitting it).  Results are
#: identical either way — routing only moves a family between two engines
#: that are bit-equal by contract.
DEFAULT_SCALAR_CUTOFFS: Dict[str, int] = {"rl": 8}


def run_batch(
    members: Sequence[BatchMember],
    application: "Application",
    config: "SimulationConfig",
    tables=None,
    scalar_cutoffs: Optional[Dict[str, int]] = None,
) -> List[SimulationResult]:
    """Reset, set up and simulate ``members``; the full per-scenario lifecycle.

    Convenience entry point mirroring :meth:`SimulationEngine.run` for every
    member: reset the cluster to the configured initial operating point, set
    the governor up against the platform and requirement, then hand the
    batch to :func:`simulate_batch`.
    """
    for cluster, governor in members:
        cluster.reset(config.initial_operating_index)
        governor.setup(
            PlatformInfo(num_cores=cluster.num_cores, vf_table=cluster.vf_table),
            application.requirement,
        )
    return simulate_batch(
        members, application, config, tables=tables, scalar_cutoffs=scalar_cutoffs
    )


# ---------------------------------------------------------------------------
# Shared batched physics
# ---------------------------------------------------------------------------


class _BatchPhysics:
    """Vectorised per-frame physics for one family's members.

    Owns the batch-axis mutable state — current operating index, clock,
    sensor holdover, junction temperature, transition log — and performs,
    per frame, exactly the operations the per-scenario table engines
    perform, elementwise over the batch.
    """

    def __init__(self, np, clusters, tables, config, thermal: bool) -> None:
        size = len(clusters)
        self.np = np
        self.size = size
        self.thermal = thermal
        self.num_points = tables.num_points
        self.pad_to_deadline = tables.idle_until_deadline
        self.max_cycles = tables.max_cycles
        self.deadlines = tables.deadlines_s.tolist()
        self.cycles_tuples = tables.cycles_tuples
        self.spc = np.asarray(tables.seconds_per_cycle, dtype=float)

        self._latency = [cluster.dvfs.transition_latency_s for cluster in clusters]
        self._transition_energy = [
            cluster.dvfs.transition_energy_j for cluster in clusters
        ]
        self.latency = np.asarray(self._latency, dtype=float)
        self.transition_energy_j = np.asarray(self._transition_energy, dtype=float)

        self.current = np.array(
            [cluster.current_index for cluster in clusters], dtype=np.intp
        )
        self.initial_index = self.current.copy()
        self.time = np.array([cluster.time_s for cluster in clusters], dtype=float)
        self.initial_time = self.time.copy()
        self.transitions: List[List[DVFSTransition]] = [[] for _ in range(size)]
        # Deferred mode instead fills per-member (timestamps, from, to)
        # columns, absorbed lazily by the actuator without building records.
        self.transition_columns: List[Optional[tuple]] = [None] * size

        # Deferred-mode caches (filled by :meth:`materialise`; consumed by
        # ``_finalise_member`` to avoid per-member re-gathers).
        self.spc_matrix = None
        self.intervals_matrix = None
        self.core_matrix = None
        self.te_matrix = None

        if thermal:
            self.uncore_power_w = tables.uncore_power_w
            self.dynamic_busy = np.asarray(tables.dynamic_busy_w, dtype=float)
            self.dynamic_idle = np.asarray(tables.dynamic_idle_w, dtype=float)
            self.leak_scale = np.asarray(tables.leak_scale_a, dtype=float)
            self.voltages = np.asarray(tables.voltages_v, dtype=float)
            self.leakage_k3 = tables.leakage_k3_per_c
            self.leakage_k4 = tables.leakage_k4_a
            self.bucket_c = tables.bucket_c
            self.bucketed = tables.bucket_c > 0.0
            self.power_slices = tables.power_slices
            self.power_model = clusters[0].power_model
            self.vf_points = clusters[0].vf_table.points
            self.idle_at_min_opp = tables.idle_at_min_opp
            self.ambient_c = tables.ambient_c
            self.resistance = tables.resistance_c_per_w
            self.throttle_c = tables.throttle_c
            # tau is recomputed per step by the scalar model; the product is
            # deterministic, so hoisting it preserves bit-identity.
            self.tau = tables.resistance_c_per_w * tables.capacitance_j_per_c
            self.decay_cache: Dict[float, float] = {}
            self.temperature = np.array(
                [cluster.thermal_model.temperature_c for cluster in clusters],
                dtype=float,
            )
            self._theta = [0.0] * size
            self._theta_temperature: List[Optional[float]] = [None] * size
            self.throttle_total = np.zeros(size, dtype=np.int64)
        else:
            self.energy_table = tables.energy
            self.max_cycles_array = np.asarray(tables.max_cycles, dtype=float)
            self.deadlines_array = tables.deadlines_s

        # Sensor state: the whole batch is vectorised when no member's
        # sensor draws noise or records history; otherwise each frame steps
        # the live sensors scalar (they keep their own state either way).
        sensors = [cluster.power_sensor for cluster in clusters]
        self.sensors = sensors
        self.vector_sensor = all(
            sensor.noise_stddev_w == 0 and not sensor.record_history
            for sensor in sensors
        )
        if self.vector_sensor:
            self.sensor_period = np.array(
                [sensor.sample_period_s for sensor in sensors]
            )
            resolution = np.array([sensor.resolution_w for sensor in sensors])
            self.sensor_resolution = resolution
            self.sensor_quantises = resolution > 0
            self._resolution_safe = np.where(resolution > 0, resolution, 1.0)
            self.sensor_has_last = np.array(
                [sensor._last_time_s is not None for sensor in sensors], dtype=bool
            )
            self.sensor_last_time = np.array(
                [
                    0.0 if sensor._last_time_s is None else sensor._last_time_s
                    for sensor in sensors
                ]
            )
            self.sensor_last_power = np.array(
                [sensor._last_power_w for sensor in sensors]
            )

    # -- per-frame step -----------------------------------------------------------
    def step(self, frame: int, indices):
        """Advance every member one frame at its chosen operating index.

        Returns ``(busy, duration, energy, power, measured, tl, core_uncore,
        frame_throttle)`` — all ``(S,)`` arrays; the last two are ``None``
        for isothermal batches.
        """
        np = self.np
        current = self.current
        changed = indices != current
        if changed.any():
            bad = changed & ((indices < 0) | (indices >= self.num_points))
            if bad.any():
                offender = int(indices[np.nonzero(bad)[0][0]])
                raise InvalidOperatingPointError(
                    f"operating-point index {offender} out of range "
                    f"(0..{self.num_points - 1})"
                )
            time_list = self.time.tolist()
            for member in np.nonzero(changed)[0]:
                self.transitions[member].append(
                    DVFSTransition(
                        time_list[member],
                        int(current[member]),
                        int(indices[member]),
                        self._latency[member],
                        self._transition_energy[member],
                    )
                )
        self.current = indices.copy()
        transition_latency = np.where(changed, self.latency, 0.0)
        frame_transition_energy = np.where(changed, self.transition_energy_j, 0.0)

        frame_max_cycles = self.max_cycles[frame]
        deadline = self.deadlines[frame]
        busy = frame_max_cycles * self.spc[indices]

        core_uncore = None
        frame_throttle = None
        if self.thermal:
            if self.pad_to_deadline:
                interval = np.where(deadline > busy, deadline, busy)
            else:
                interval = busy
            busy_power, idle_power = self._thermal_powers(indices)
            spc_gathered = self.spc[indices]
            core_energy = np.zeros(self.size)
            for core_cycles in self.cycles_tuples[frame]:
                core_busy = core_cycles * spc_gathered
                core_energy = core_energy + (
                    busy_power * core_busy + idle_power * (interval - core_busy)
                )
            core_uncore = core_energy + self.uncore_power_w * interval
            energy = core_uncore + frame_transition_energy
            duration = interval + transition_latency
        else:
            energy = self.energy_table[frame, indices] + frame_transition_energy
            if self.pad_to_deadline:
                base = np.where(deadline > busy, deadline, busy)
            else:
                base = busy
            duration = base + transition_latency

        positive = duration > 0
        power = np.where(
            positive, energy / np.where(positive, duration, 1.0), 0.0
        )

        if self.thermal:
            frame_throttle = self._thermal_update(duration, power)

        self.time = self.time + duration
        measured = self._measure(power)
        return (
            busy,
            duration,
            energy,
            power,
            measured,
            transition_latency,
            core_uncore,
            frame_throttle,
        )

    def _thermal_powers(self, indices):
        """Per-core busy/idle powers at each member's start-of-frame temperature."""
        np = self.np
        size = self.size
        if self.idle_at_min_opp:
            idle_indices = np.zeros(size, dtype=np.intp)
        else:
            idle_indices = indices
        temperatures = self.temperature.tolist()
        if self.bucketed:
            bucket = self.bucket_c
            slices_by_bucket = self.power_slices
            busy_list = [0.0] * size
            idle_list = [0.0] * size
            index_list = indices.tolist()
            idle_index_list = idle_indices.tolist()
            for member in range(size):
                quantised = round(temperatures[member] / bucket) * bucket
                slices = slices_by_bucket.get(quantised)
                if slices is None:
                    slices = self.power_model.power_table(self.vf_points, quantised)
                    slices_by_bucket[quantised] = slices
                busy_list[member] = slices[0][index_list[member]]
                idle_list[member] = slices[1][idle_index_list[member]]
            return np.asarray(busy_list), np.asarray(idle_list)
        # Exact mode: one math.exp per member whose temperature moved
        # (memoised exactly as the scalar loop memoises its theta).
        theta = self._theta
        theta_temperature = self._theta_temperature
        k3 = self.leakage_k3
        for member in range(size):
            temperature = temperatures[member]
            if temperature != theta_temperature[member]:
                theta[member] = math.exp(k3 * (temperature - 55.0))
                theta_temperature[member] = temperature
        theta_arr = np.asarray(theta)
        k4 = self.leakage_k4
        busy_power = self.dynamic_busy[indices] + self.voltages[indices] * (
            self.leak_scale[indices] * theta_arr + k4
        )
        idle_power = self.dynamic_idle[idle_indices] + self.voltages[idle_indices] * (
            self.leak_scale[idle_indices] * theta_arr + k4
        )
        return busy_power, idle_power

    def _thermal_update(self, duration, power):
        """RC temperature update + throttle accounting; returns the frame flags."""
        np = self.np
        active = duration > 0
        steady = self.ambient_c + power * self.resistance
        decay = np.empty(self.size)
        cache = self.decay_cache
        tau = self.tau
        for member, frame_duration in enumerate(duration.tolist()):
            value = cache.get(frame_duration)
            if value is None:
                value = math.exp(-frame_duration / tau)
                cache[frame_duration] = value
            decay[member] = value
        updated = steady + (self.temperature - steady) * decay
        self.temperature = np.where(active, updated, self.temperature)
        hot = active & (self.temperature >= self.throttle_c)
        self.throttle_total += hot
        return hot

    def _measure(self, power):
        """Step every member's power sensor at the (just advanced) clock."""
        np = self.np
        if not self.vector_sensor:
            return np.array(
                [
                    sensor.measure_w(true_power, timestamp)
                    for sensor, true_power, timestamp in zip(
                        self.sensors, power.tolist(), self.time.tolist()
                    )
                ]
            )
        fresh = (~self.sensor_has_last) | (
            (self.time - self.sensor_last_time) >= self.sensor_period
        )
        quantised = np.where(
            self.sensor_quantises,
            np.rint(power / self._resolution_safe) * self.sensor_resolution,
            power,
        )
        measured = np.maximum(0.0, quantised)
        out = np.where(fresh, measured, self.sensor_last_power)
        self.sensor_last_time = np.where(fresh, self.time, self.sensor_last_time)
        self.sensor_last_power = np.where(fresh, measured, self.sensor_last_power)
        self.sensor_has_last = self.sensor_has_last | fresh
        return out

    # -- deferred mode ------------------------------------------------------------
    # For isothermal batches the closed loop only feeds ``busy`` (and, for
    # ondemand/conservative, the frame duration) back into the next decide();
    # energy, power, the clock, the sensor and the transition log are pure
    # functions of the index trajectory.  ``feedback`` therefore runs a
    # ~4-operation step inside the frame loop and ``materialise`` computes
    # every remaining column as one (frames x members) matrix afterwards —
    # same IEEE operations on the same operands, just batched over frames.

    def feedback(self, frame: int, indices):
        """Deferred-mode step: only the quantities the next decide() observes.

        Returns ``(busy, duration, transition_latency)`` as ``(S,)`` arrays
        and tracks the running operating point; everything else is produced
        by :meth:`materialise` once the index trajectory is complete.
        """
        np = self.np
        changed = indices != self.current
        self.current = indices
        transition_latency = np.where(changed, self.latency, 0.0)
        busy = self.max_cycles[frame] * self.spc[indices]
        if self.pad_to_deadline:
            deadline = self.deadlines[frame]
            duration = np.where(deadline > busy, deadline, busy) + transition_latency
        else:
            duration = busy + transition_latency
        return busy, duration, transition_latency

    def materialise(self, columns: "_FamilyColumns", base_overhead, charge: bool):
        """Vectorised epilogue: fill every column from the index trajectory.

        ``columns.opp`` must hold the full (frames x members) trajectory.
        ``base_overhead=None`` means the runner already stored the overhead
        column (the RL family needs it in-loop as decide feedback).
        """
        np = self.np
        opp = columns.opp
        num_frames = opp.shape[0]
        prev = np.empty_like(opp)
        prev[0] = self.initial_index
        prev[1:] = opp[:-1]
        changed = opp != prev
        bad = changed & ((opp < 0) | (opp >= self.num_points))
        if bad.any():
            first_bad = np.nonzero(bad)
            offender = int(opp[first_bad[0][0], first_bad[1][0]])
            raise InvalidOperatingPointError(
                f"operating-point index {offender} out of range "
                f"(0..{self.num_points - 1})"
            )
        transition_latency = np.where(changed, self.latency, 0.0)
        transition_energy = np.where(changed, self.transition_energy_j, 0.0)
        spc_gathered = self.spc[opp]
        busy = self.max_cycles_array[:, None] * spc_gathered
        if self.pad_to_deadline:
            deadline_column = self.deadlines_array[:, None]
            base = np.where(deadline_column > busy, deadline_column, busy)
        else:
            base = busy
        duration = base + transition_latency
        core_uncore = np.take_along_axis(self.energy_table, opp, axis=1)
        energy = core_uncore + transition_energy
        positive = duration > 0
        power = np.where(positive, energy / np.where(positive, duration, 1.0), 0.0)

        # The clock is a strictly sequential accumulation; add.accumulate
        # applies the same left-to-right float adds as the scalar loop.
        clock = np.empty((num_frames + 1, self.size))
        clock[0] = self.initial_time
        clock[1:] = duration
        clock = np.add.accumulate(clock, axis=0)
        self.time = np.ascontiguousarray(clock[-1])
        self.current = np.ascontiguousarray(opp[-1])

        columns.busy = busy
        columns.duration = duration
        columns.energy = energy
        columns.power = power
        columns.measured = self._measure_deferred(power, duration, clock)
        if base_overhead is not None:
            if charge:
                columns.overhead = base_overhead[None, :] + transition_latency
            else:
                columns.overhead = np.zeros((num_frames, self.size))
        self._record_transitions(changed, prev, opp, clock)
        self.spc_matrix = spc_gathered
        self.intervals_matrix = base
        self.core_matrix = core_uncore
        self.te_matrix = transition_energy

    def _measure_deferred(self, power, duration, clock):
        """Vectorised sensor sweep over the whole (frames x members) grid."""
        np = self.np
        num_frames = power.shape[0]
        times = clock[1:]
        if not self.vector_sensor:
            # Noisy / history-recording sensors step scalar, in the same
            # member-within-frame order as the lock-step loop.
            measured = np.empty_like(power)
            sensors = self.sensors
            for frame in range(num_frames):
                measured[frame] = [
                    sensor.measure_w(true_power, timestamp)
                    for sensor, true_power, timestamp in zip(
                        sensors, power[frame].tolist(), times[frame].tolist()
                    )
                ]
            return measured
        quantised = np.where(
            self.sensor_quantises,
            np.rint(power / self._resolution_safe) * self.sensor_resolution,
            power,
        )
        candidate = np.maximum(0.0, quantised)
        period = self.sensor_period
        # When every frame outlasts every member's sample period, each
        # reading is fresh (induction: a fresh frame resets the holdover
        # clock, and the next frame's duration already exceeds the period),
        # so the holdover scan collapses to the candidate matrix.
        all_fresh = bool(
            np.all(
                (duration.min(axis=0) >= period)
                & (
                    (~self.sensor_has_last)
                    | ((times[0] - self.sensor_last_time) >= period)
                )
            )
        )
        if all_fresh:
            self.sensor_last_time = np.ascontiguousarray(times[-1])
            self.sensor_last_power = np.ascontiguousarray(candidate[-1])
            self.sensor_has_last = np.ones(self.size, dtype=bool)
            return candidate
        measured = np.empty_like(power)
        has_last = self.sensor_has_last
        last_time = self.sensor_last_time
        last_power = self.sensor_last_power
        for frame in range(num_frames):
            now = times[frame]
            fresh = (~has_last) | ((now - last_time) >= period)
            row = candidate[frame]
            measured[frame] = np.where(fresh, row, last_power)
            last_time = np.where(fresh, now, last_time)
            last_power = np.where(fresh, row, last_power)
            has_last = has_last | fresh
        self.sensor_has_last = has_last
        self.sensor_last_time = last_time
        self.sensor_last_power = last_power
        return measured

    def _record_transitions(self, changed, prev, opp, clock) -> None:
        """Build each member's transition log from the changed matrix.

        ``clock[frame]`` is the member's clock *before* the frame — exactly
        the timestamp the scalar engine stamps on a start-of-frame switch.
        """
        np = self.np
        frames_hit, members_hit = np.nonzero(changed)
        if not frames_hit.size:
            return
        # Regroup the frame-major hits into per-member, frame-ordered column
        # blocks (the stable sort preserves chronological order within each
        # member).  No DVFSTransition is built here: the columns are handed
        # to each cluster's actuator, which materialises records lazily.
        order = np.argsort(members_hit, kind="stable")
        whens = clock[frames_hit, members_hit][order].tolist()
        sources = prev[frames_hit, members_hit][order].tolist()
        targets = opp[frames_hit, members_hit][order].tolist()
        counts = np.bincount(members_hit, minlength=self.size).tolist()
        columns = self.transition_columns
        start = 0
        for member, count in enumerate(counts):
            if count:
                stop = start + count
                columns[member] = (
                    whens[start:stop],
                    sources[start:stop],
                    targets[start:stop],
                )
                start = stop

    def finish(self) -> None:
        """Write vectorised sensor state back onto the live sensors."""
        if not self.vector_sensor:
            return
        last_times = self.sensor_last_time.tolist()
        last_powers = self.sensor_last_power.tolist()
        for member, sensor in enumerate(self.sensors):
            if self.sensor_has_last[member]:
                sensor._last_time_s = last_times[member]
                sensor._last_power_w = last_powers[member]


class _FamilyColumns:
    """Per-family (frame × member) column store."""

    def __init__(self, np, num_frames: int, size: int, thermal: bool) -> None:
        self.opp = np.empty((num_frames, size), dtype=np.intp)
        self.busy = np.empty((num_frames, size))
        self.overhead = np.empty((num_frames, size))
        self.duration = np.empty((num_frames, size))
        self.energy = np.empty((num_frames, size))
        self.power = np.empty((num_frames, size))
        self.measured = np.empty((num_frames, size))
        self.explored = np.zeros((num_frames, size), dtype=bool)
        if thermal:
            self.temperature = np.empty((num_frames, size))
            self.core_uncore = np.empty((num_frames, size))
        else:
            self.temperature = None
            self.core_uncore = None
        #: Per-member python-list views, built once per family by
        #: :func:`_bulk_column_lists` after the runner finishes.
        self.lists = None

    def store(self, frame, step, overhead) -> None:
        busy, duration, energy, power, measured, _tl, core_uncore, _throttle = step
        self.busy[frame] = busy
        self.overhead[frame] = overhead
        self.duration[frame] = duration
        self.energy[frame] = energy
        self.power[frame] = power
        self.measured[frame] = measured
        if self.core_uncore is not None:
            self.core_uncore[frame] = core_uncore


# ---------------------------------------------------------------------------
# Governor families
# ---------------------------------------------------------------------------


def _overhead_for(np, charge: bool, base, transition_latency):
    if not charge:
        return np.zeros(transition_latency.shape)
    return base + transition_latency


def _run_static(np, clusters, governors, application, config, tables, thermal):
    size = len(governors)
    num_frames = tables.num_frames
    physics = _BatchPhysics(np, clusters, tables, config, thermal)
    columns = _FamilyColumns(np, num_frames, size, thermal)
    # A pinned governor's decide() is stateless; one call fixes the index.
    indices = np.array(
        [governor.decide(None, None) for governor in governors], dtype=np.intp
    )
    base_overhead = np.array(
        [static_processing_overhead(governor) for governor in governors]
    )
    charge = config.charge_governor_overhead
    if not thermal:
        # A pinned trajectory needs no frame loop at all: broadcast the
        # index row and let the epilogue produce every column.
        columns.opp[:] = indices
        physics.materialise(columns, base_overhead, charge)
        return physics, columns
    for frame in range(num_frames):
        step = physics.step(frame, indices)
        columns.opp[frame] = indices
        columns.store(frame, step, _overhead_for(np, charge, base_overhead, step[5]))
        columns.temperature[frame] = physics.temperature
    return physics, columns


def _vector_load(np, busy_prev, duration_prev):
    """Vectorised :func:`repro.governors.base.observed_load`."""
    positive = duration_prev > 0
    ratio = busy_prev / np.where(positive, duration_prev, 1.0)
    return np.where(positive, np.maximum(0.0, np.minimum(1.0, ratio)), 0.0)


def _decide_feedback_tables(np, physics, frequencies):
    """Precompute everything a load-threshold decide() can ever observe.

    In deferred (isothermal table) mode the observation a threshold governor
    sees at frame ``f`` is fully determined by ``(f - 1, index, changed)``:
    ``busy = max_cycles[f-1] * spc[index]`` and ``duration`` differs only by
    the transition latency when the previous decide changed the index.  That
    is an ``(F, P, 2)`` table — tiny next to ``F × S`` — so the per-frame
    loop shrinks to one flat gather plus the threshold arithmetic, with no
    physics call at all.  Every element is produced by the same IEEE ops on
    the same operands as :meth:`_BatchPhysics.feedback`, so the gathered
    loads are bit-identical to the ones the feedback loop would have fed the
    governor.

    Returns ``(flat_load, flat_freq_load)`` where element
    ``(f * P + i) * 2 + c`` holds the observed load (and
    ``frequency[i] * load``, the proportional-scaling numerator) after
    frame ``f`` at index ``i`` with ``changed = c``.  Requires every member
    to share the transition latency (guaranteed whenever the members share
    the cluster physics, which :func:`simulate_batch` validates).
    """
    busy = physics.max_cycles_array[:, None] * physics.spc[None, :]
    if physics.pad_to_deadline:
        deadline_column = physics.deadlines_array[:, None]
        base = np.where(deadline_column > busy, deadline_column, busy)
    else:
        base = busy
    latency = physics._latency[0]
    load0 = _vector_load(np, busy, base + 0.0)
    load1 = _vector_load(np, busy, base + latency)
    num_frames, num_points = busy.shape
    load = np.empty((num_frames, num_points, 2))
    load[:, :, 0] = load0
    load[:, :, 1] = load1
    freq_load = np.empty((num_frames, num_points, 2))
    freq_load[:, :, 0] = frequencies[None, :] * load0
    freq_load[:, :, 1] = frequencies[None, :] * load1
    return load.reshape(-1), freq_load.reshape(-1)


def _run_ondemand(np, clusters, governors, application, config, tables, thermal):
    size = len(governors)
    num_frames = tables.num_frames
    physics = _BatchPhysics(np, clusters, tables, config, thermal)
    columns = _FamilyColumns(np, num_frames, size, thermal)
    frequencies = np.asarray(tables.frequencies_hz, dtype=float)
    max_index = tables.num_points - 1
    up_threshold = np.array([governor._up_threshold for governor in governors])
    sampling_down = np.array(
        [governor._sampling_down_factor for governor in governors], dtype=np.int64
    )
    min_frequency = np.array([governor._min_frequency_hz for governor in governors])
    hold = np.array(
        [governor._hold_remaining for governor in governors], dtype=np.int64
    )
    base_overhead = np.array(
        [static_processing_overhead(governor) for governor in governors]
    )
    charge = config.charge_governor_overhead
    # Deferred decides: with isothermal table physics and a single hold
    # window (the kernel default), the loop needs no physics call and no
    # hold counter — one gather into the precomputed observation tables
    # replaces the whole feedback step.  ``hold > 1`` can then never hold
    # (it decays to {0, 1} immediately), so only the last frame's
    # threshold test determines the written-back counter.
    fast = (
        not thermal
        and len(set(physics._latency)) == 1
        and bool((sampling_down == 1).all())
        and bool((hold <= 1).all())
    )
    if fast:
        flat_load, flat_freq_load = _decide_feedback_tables(np, physics, frequencies)
        num_points = tables.num_points
        max_index_scalar = np.intp(max_index)
        take = np.take
        indices = np.full(size, max_index, dtype=np.intp)
        changed = indices != physics.current
        high = None
        columns.opp[0] = indices
        for frame in range(1, num_frames):
            flat = indices * 2
            flat += changed
            flat += (frame - 1) * 2 * num_points
            load = take(flat_load, flat)
            target = take(flat_freq_load, flat)
            high = load > up_threshold
            target = target / up_threshold
            np.maximum(target, min_frequency, out=target)
            target -= 1e-6
            scaled = np.minimum(
                np.searchsorted(frequencies, target, side="left"), max_index
            )
            new_indices = np.where(high, max_index_scalar, scaled)
            changed = new_indices != indices
            indices = new_indices
            columns.opp[frame] = indices
        if high is not None:
            hold = np.where(high, sampling_down, 0)
        physics.materialise(columns, base_overhead, charge)
    else:
        busy_prev = duration_prev = indices = None
        for frame in range(num_frames):
            if frame == 0:
                indices = np.full(size, max_index, dtype=np.intp)
            else:
                load = _vector_load(np, busy_prev, duration_prev)
                current_frequency = frequencies[indices]
                high = load > up_threshold
                holding = (~high) & (hold > 1)
                hold = np.where(high, sampling_down, np.where(holding, hold - 1, 0))
                target = np.maximum(
                    current_frequency * load / up_threshold, min_frequency
                )
                scaled = np.minimum(
                    np.searchsorted(frequencies, target - 1e-6, side="left"), max_index
                )
                indices = np.where(high | holding, max_index, scaled).astype(np.intp)
            columns.opp[frame] = indices
            if thermal:
                step = physics.step(frame, indices)
                columns.store(
                    frame, step, _overhead_for(np, charge, base_overhead, step[5])
                )
                columns.temperature[frame] = physics.temperature
                busy_prev, duration_prev = step[0], step[1]
            else:
                busy_prev, duration_prev, _latency = physics.feedback(frame, indices)
        if not thermal:
            physics.materialise(columns, base_overhead, charge)
    hold_list = hold.tolist()
    for member, governor in enumerate(governors):
        governor._hold_remaining = hold_list[member]
    return physics, columns


def _run_conservative(np, clusters, governors, application, config, tables, thermal):
    size = len(governors)
    num_frames = tables.num_frames
    physics = _BatchPhysics(np, clusters, tables, config, thermal)
    columns = _FamilyColumns(np, num_frames, size, thermal)
    max_index = tables.num_points - 1
    up_threshold = np.array([governor._up_threshold for governor in governors])
    down_threshold = np.array([governor._down_threshold for governor in governors])
    step_indices = np.array(
        [governor._freq_step_indices for governor in governors], dtype=np.int64
    )
    base_overhead = np.array(
        [static_processing_overhead(governor) for governor in governors]
    )
    charge = config.charge_governor_overhead
    if not thermal and len(set(physics._latency)) == 1:
        # Deferred decides (see _run_ondemand): one gather into the
        # precomputed observation table replaces the feedback step.
        frequencies = np.asarray(tables.frequencies_hz, dtype=float)
        flat_load, _flat_freq_load = _decide_feedback_tables(
            np, physics, frequencies
        )
        num_points = tables.num_points
        take = np.take
        indices = np.full(size, max_index, dtype=np.intp)
        changed = indices != physics.current
        columns.opp[0] = indices
        for frame in range(1, num_frames):
            flat = indices * 2
            flat += changed
            flat += (frame - 1) * 2 * num_points
            load = take(flat_load, flat)
            stepped = np.where(
                load > up_threshold,
                indices + step_indices,
                np.where(load < down_threshold, indices - step_indices, indices),
            )
            new_indices = np.minimum(np.maximum(stepped, 0), max_index).astype(
                np.intp
            )
            changed = new_indices != indices
            indices = new_indices
            columns.opp[frame] = indices
        physics.materialise(columns, base_overhead, charge)
        return physics, columns
    busy_prev = duration_prev = indices = None
    for frame in range(num_frames):
        if frame == 0:
            indices = np.full(size, max_index, dtype=np.intp)
        else:
            load = _vector_load(np, busy_prev, duration_prev)
            stepped = np.where(
                load > up_threshold,
                indices + step_indices,
                np.where(load < down_threshold, indices - step_indices, indices),
            )
            indices = np.minimum(np.maximum(stepped, 0), max_index).astype(np.intp)
        columns.opp[frame] = indices
        if thermal:
            step = physics.step(frame, indices)
            columns.store(
                frame, step, _overhead_for(np, charge, base_overhead, step[5])
            )
            columns.temperature[frame] = physics.temperature
            busy_prev, duration_prev = step[0], step[1]
        else:
            busy_prev, duration_prev, _latency = physics.feedback(frame, indices)
    if not thermal:
        physics.materialise(columns, base_overhead, charge)
    return physics, columns


def _run_rl(np, clusters, governors, application, config, tables, thermal):
    """Vectorised :class:`RLGovernor` batch (one structure subgroup).

    All members share (workload levels, slack levels, slack window, EWMA
    gamma) — and, via the batch contract, the trace and platform — so the
    workload-prediction chain is batch-invariant and replayed once; every
    other hyper-parameter is a per-member array.
    """
    size = len(governors)
    num_frames = tables.num_frames
    physics = _BatchPhysics(np, clusters, tables, config, thermal)
    columns = _FamilyColumns(np, num_frames, size, thermal)
    charge = config.charge_governor_overhead

    first = governors[0]
    state_space = first.state_space
    slack_levels = state_space._s_levels
    slack_lower = state_space._s_lower
    slack_span = state_space._s_span
    reference = first.slack_tracker.reference_time_s
    window = first.config.slack_window
    num_actions = first.agent.qtable.num_actions

    # -- batch-invariant workload chain, replayed once in scalar Python ------
    # Frame f's decide() observes frame f-1's max_cycles, which is a trace
    # property shared by every member; range tracking, EWMA prediction and
    # workload discretisation are pure functions of that sequence.
    replica_tracker = WorkloadRangeTracker()
    replica_predictor = EWMAPredictor(gamma=first.config.ewma_gamma)
    workload_level = [0] * num_frames
    cycles_tuples = tables.cycles_tuples
    for frame in range(1, num_frames):
        actual = max(cycles_tuples[frame - 1])
        replica_tracker.observe(actual)
        predicted = replica_predictor.observe(actual)
        normalised = replica_tracker.normalise(predicted)
        workload_level[frame] = (
            state_space.state_index(normalised, 0.0) // slack_levels
        )

    # -- per-member hyper-parameter arrays -----------------------------------
    rewards = [governor.config.reward for governor in governors]
    miss_penalty = np.array([r.miss_penalty_weight for r in rewards])
    slack_weight = np.array([r.slack_weight for r in rewards])
    delta_weight = np.array([r.delta_weight for r in rewards])
    over_penalty = np.array([r.overperformance_penalty for r in rewards])
    target_slack = np.array([r.target_slack for r in rewards])
    overhead_learning = np.array(
        [governor._overhead_learning_s for governor in governors]
    )
    overhead_exploiting = np.array(
        [governor._overhead_exploiting_s for governor in governors]
    )
    convergence_window = np.array(
        [governor.config.convergence_window for governor in governors],
        dtype=np.int64,
    )

    batch = BatchedAgents([governor.agent for governor in governors], np)

    # -- batched mutable state ------------------------------------------------
    conv_last_unstable = np.zeros(size, dtype=np.int64)
    conv_converged = np.full(size, -1, dtype=np.int64)
    any_conv_active = True
    previous_count = np.array(
        [governor.exploration_count for governor in governors], dtype=np.int64
    )
    frozen = np.array(
        [governor.exploration_frozen for governor in governors], dtype=bool
    )
    all_frozen = bool(frozen.all())
    window_buffer: Optional["deque"] = (
        deque(maxlen=window) if window is not None else None
    )
    running_sum = np.zeros(size)
    slack_store = np.zeros((num_frames, size))
    average_store = np.zeros((num_frames, size))
    reward_store = np.zeros((num_frames, size))
    pending_state = pending_action = None
    base_overhead = overhead_learning
    busy_prev = overhead_prev = None

    for frame in range(num_frames):
        if frame == 0:
            initial_state = state_space.state_index(1.0, 0.0)
            initial_action = num_actions - 1
            batch.record_visit(initial_state, initial_action)
            pending_state = np.full(size, initial_state, dtype=np.intp)
            pending_action = np.full(size, initial_action, dtype=np.intp)
            base_overhead = overhead_learning
            indices = np.full(size, initial_action, dtype=np.intp)
        else:
            # (1) Pay-off for the epoch that just finished (eqs. 4 and 5),
            # exactly SlackTracker.update + compute_reward + miss penalty.
            slack = (reference - busy_prev) - overhead_prev
            slack_store[frame] = slack
            if window is None:
                running_sum = running_sum + slack
                average = running_sum / (frame * reference)
            else:
                window_buffer.append(slack)
                total = window_buffer[0]
                for chunk in islice(window_buffer, 1, None):
                    total = total + chunk
                average = total / (len(window_buffer) * reference)
            average_store[frame] = average
            if frame >= 2:
                slack_delta = average - average_store[frame - 1]
            else:
                slack_delta = average
            excess = np.maximum(0.0, average - target_slack)
            slack_term = np.where(
                average < 0.0,
                (-miss_penalty) * (-average),
                slack_weight * (1.0 - over_penalty * excess),
            )
            progress_reward = slack_term + delta_weight * slack_delta
            instantaneous = slack / reference
            reward = np.where(
                instantaneous < 0.0,
                progress_reward - miss_penalty * (-instantaneous),
                progress_reward,
            )
            reward_store[frame] = reward

            # (3) State mapping: shared workload level × vectorised slack level.
            slack_fraction = (average - slack_lower) / slack_span * slack_levels
            slack_level = np.minimum(
                np.maximum(slack_fraction.astype(np.intp), 0), slack_levels - 1
            )
            next_state = (workload_level[frame] * slack_levels + slack_level).astype(
                np.intp
            )

            # (2) Fused Bellman update + ε-greedy selection, batched.
            next_action, _explored, exploiting = batch.update_and_select(
                pending_state,
                pending_action,
                reward,
                next_state,
                average,
                progress_reward,
            )
            if any_conv_active:
                changed_policy = batch.last_update_changed_policy
                unstable = (~exploiting) | changed_policy
                conv_active = conv_converged < 0
                conv_last_unstable = np.where(
                    conv_active & unstable, frame, conv_last_unstable
                )
                declare = (
                    conv_active
                    & (~unstable)
                    & (frame >= convergence_window)
                    & ((frame - conv_last_unstable) >= convergence_window)
                )
                if declare.any():
                    conv_converged = np.where(
                        declare, frame - convergence_window, conv_converged
                    )
                    any_conv_active = bool((conv_converged < 0).any())
            pending_state = next_state
            pending_action = next_action
            base_overhead = np.where(
                exploiting, overhead_exploiting, overhead_learning
            )
            indices = next_action.astype(np.intp)

        columns.opp[frame] = indices
        if thermal:
            step = physics.step(frame, indices)
            overhead = _overhead_for(np, charge, base_overhead, step[5])
            columns.store(frame, step, overhead)
            columns.temperature[frame] = physics.temperature
            busy = step[0]
        else:
            busy, _duration, transition_latency = physics.feedback(frame, indices)
            overhead = _overhead_for(np, charge, base_overhead, transition_latency)
            columns.overhead[frame] = overhead

        # Exploration-count polling, exactly as the per-scenario engines
        # (including the one-frame-stale frozen flag).  A frozen member's
        # explored flag stays False and its counters stop moving, so once
        # the whole family is frozen the poll is a no-op (the column is
        # already False-initialised).
        if not all_frozen:
            active = ~frozen
            count = np.where(
                batch.exploitation_start < 0,
                batch.selection_count,
                batch.exploitation_start,
            )
            columns.explored[frame] = active & (count > previous_count)
            previous_count = np.where(active, count, previous_count)
            frozen = np.where(active, batch.is_exploiting(), frozen)
            all_frozen = bool(frozen.all())

        busy_prev, overhead_prev = busy, overhead

    if not thermal:
        # Overhead was stored in-loop (it feeds the next epoch's slack);
        # materialise computes every other column.
        physics.materialise(columns, None, charge)

    # -- restore per-member scalar governor state -----------------------------
    batch.write_back()
    epochs = num_frames - 1
    keep = epochs if window is None else min(epochs, window)
    base_overhead_list = base_overhead.tolist()
    pending_state_list = pending_state.tolist()
    pending_action_list = pending_action.tolist()
    conv_last_list = conv_last_unstable.tolist()
    conv_converged_list = conv_converged.tolist()
    shared_records = replica_predictor._records
    for member, governor in enumerate(governors):
        tracker = governor._slack_tracker
        tracker._slacks_s = deque(
            slack_store[num_frames - keep : num_frames, member].tolist(),
            maxlen=window,
        )
        if window is None:
            tracker._running_sum = float(running_sum[member])
        tracker._epochs = epochs
        history = average_store[1:num_frames, member].tolist()
        tracker._history = history
        tracker._last_average = history[-1] if history else 0.0

        predictor = governor._predictor
        predictor._state = replica_predictor._state
        predictor._last_prediction = replica_predictor._last_prediction
        predictor._epoch = replica_predictor._epoch
        predictor._records = list(shared_records)

        range_tracker = governor._range_tracker
        range_tracker._low = replica_tracker._low
        range_tracker._high = replica_tracker._high
        range_tracker._cached_bounds = replica_tracker._cached_bounds

        governor._pending_state = pending_state_list[member]
        governor._pending_action = pending_action_list[member]
        governor._last_overhead_s = base_overhead_list[member]
        governor._reward_history = reward_store[1:num_frames, member].tolist()

        convergence = governor._convergence
        convergence._epoch = epochs
        convergence._last_unstable_epoch = conv_last_list[member]
        converged = conv_converged_list[member]
        convergence._converged_epoch = None if converged < 0 else converged
    return physics, columns


def _run_generic(np, clusters, governors, application, config, tables, thermal):
    """Scalar decide() per member, batched physics: correct for any governor."""
    size = len(governors)
    num_frames = tables.num_frames
    physics = _BatchPhysics(np, clusters, tables, config, thermal)
    columns = _FamilyColumns(np, num_frames, size, thermal)
    charge = config.charge_governor_overhead
    cycles_tuples = tables.cycles_tuples
    deadlines = physics.deadlines

    hint = FrameHint(cycles_per_core=cycles_tuples[0], deadline_s=deadlines[0])
    set_field = object.__setattr__
    previous: List[Optional[EpochObservation]] = [None] * size
    static_overhead = [static_processing_overhead(governor) for governor in governors]
    previous_exploration = [governor.exploration_count for governor in governors]
    frozen = [governor.exploration_frozen for governor in governors]
    indices = np.empty(size, dtype=np.intp)

    for frame in range(num_frames):
        cycles = cycles_tuples[frame]
        deadline = deadlines[frame]
        set_field(hint, "cycles_per_core", cycles)
        set_field(hint, "deadline_s", deadline)
        for member, governor in enumerate(governors):
            indices[member] = governor.decide(previous[member], hint)
        step = physics.step(frame, indices)
        busy, duration, energy, _power, measured, transition_latency = (
            step[0],
            step[1],
            step[2],
            step[3],
            step[4],
            step[5],
        )
        busy_list = busy.tolist()
        duration_list = duration.tolist()
        energy_list = energy.tolist()
        measured_list = measured.tolist()
        latency_list = transition_latency.tolist()
        throttle_list = step[7].tolist() if thermal else None
        index_list = indices.tolist()
        overhead_row = [0.0] * size
        for member, governor in enumerate(governors):
            if charge:
                base = static_overhead[member]
                if base is None:
                    base = governor.processing_overhead_s
                overhead = base + latency_list[member]
            else:
                overhead = 0.0
            overhead_row[member] = overhead

            if frozen[member]:
                explored = False
            else:
                exploration = governor.exploration_count
                explored = exploration > previous_exploration[member]
                previous_exploration[member] = exploration
                frozen[member] = governor.exploration_frozen
            columns.explored[frame, member] = explored

            throttle_events = int(throttle_list[member]) if thermal else 0
            observation = previous[member]
            if observation is None:
                previous[member] = EpochObservation(
                    frame,
                    cycles,
                    busy_list[member],
                    duration_list[member],
                    deadline,
                    index_list[member],
                    energy_list[member],
                    measured_list[member],
                    overhead_row[member],
                    throttle_events,
                )
            else:
                set_field(observation, "epoch_index", frame)
                set_field(observation, "cycles_per_core", cycles)
                set_field(observation, "busy_time_s", busy_list[member])
                set_field(observation, "interval_s", duration_list[member])
                set_field(observation, "reference_time_s", deadline)
                set_field(observation, "operating_index", index_list[member])
                set_field(observation, "energy_j", energy_list[member])
                set_field(observation, "measured_power_w", measured_list[member])
                set_field(observation, "overhead_time_s", overhead_row[member])
                set_field(observation, "throttle_events", throttle_events)
        columns.opp[frame] = indices
        columns.store(frame, step, np.asarray(overhead_row))
        if thermal:
            columns.temperature[frame] = physics.temperature
    return physics, columns


# ---------------------------------------------------------------------------
# Partitioning and assembly
# ---------------------------------------------------------------------------


def _family_key(governor: "Governor"):
    """Vectorisation family (and RL structure subgroup) of ``governor``.

    Exact-type checks route subclasses (the many-core RL formulations, a
    customised ondemand) to the generic family, which is bit-identical by
    construction for any governor.
    """
    governor_type = type(governor)
    if governor_type is OndemandGovernor and static_processing_overhead(
        governor
    ) is not None:
        return ("ondemand",)
    if governor_type is ConservativeGovernor and static_processing_overhead(
        governor
    ) is not None:
        return ("conservative",)
    if governor_type is RLGovernor:
        config = governor.config
        return (
            "rl",
            config.workload_levels,
            config.slack_levels,
            config.slack_window,
            config.ewma_gamma,
        )
    if (
        isinstance(governor, StaticGovernor)
        and type(governor).decide is StaticGovernor.decide
        and static_processing_overhead(governor) is not None
    ):
        return ("static",)
    return ("generic",)


_FAMILY_RUNNERS = {
    "static": _run_static,
    "ondemand": _run_ondemand,
    "conservative": _run_conservative,
    "rl": _run_rl,
    "generic": _run_generic,
}


def simulate_batch(
    members: Sequence[BatchMember],
    application: "Application",
    config: "SimulationConfig",
    tables=None,
    scalar_cutoffs: Optional[Dict[str, int]] = None,
) -> List[SimulationResult]:
    """Step every member through ``application`` simultaneously.

    Clusters and governors are used as-is (the caller resets and sets them
    up first — see :func:`run_batch`); each cluster is left in
    scalar-equivalent aggregate state and each governor holds exactly the
    state a solo run would have left.  Results are returned in member order.

    All members must share the application trace, the thermal mode and the
    cluster physics described by ``tables`` (validated before stepping);
    ``tables`` is rebuilt from the first member when missing or mismatched.

    ``scalar_cutoffs`` (family kind → minimum width, see
    :data:`DEFAULT_SCALAR_CUTOFFS`) routes families too narrow to amortise
    the batch axis through the per-scenario table engine instead — same
    results, shorter wall clock.  ``None`` (the default) batches every
    family unconditionally.
    """
    np = _np
    if np is None:
        raise SimulationError("the batched multi-scenario engine requires numpy")
    members = list(members)
    if not members:
        return []
    clusters = [cluster for cluster, _governor in members]
    governors = [governor for _cluster, governor in members]
    num_frames = application.num_frames
    if num_frames == 0:
        raise SimulationError("cannot simulate an application with no frames")
    thermal = clusters[0].thermal_model.enabled
    for cluster in clusters[1:]:
        if cluster.thermal_model.enabled != thermal:
            raise SimulationError(
                "all members of a batch must share the thermal mode"
            )
    expected_table = ThermalWorkloadTable if thermal else WorkloadTable
    if (
        tables is None
        or not isinstance(tables, expected_table)
        or tables.num_frames != num_frames
        or not tables.matches(clusters[0], config.idle_until_deadline)
    ):
        tables = precompute_tables(clusters[0], application, config)
    for cluster in clusters[1:]:
        if not tables.matches(cluster, config.idle_until_deadline):
            raise SimulationError(
                "all members of a batch must share the cluster physics"
            )

    partitions: Dict[tuple, List[int]] = {}
    for position, governor in enumerate(governors):
        partitions.setdefault(_family_key(governor), []).append(position)

    results: List[Optional[SimulationResult]] = [None] * len(members)
    deadlines = tables.deadlines_s.tolist()
    frequencies_mhz = np.asarray(tables.frequencies_mhz)
    frequencies_hz = np.asarray(tables.frequencies_hz)
    # FrameColumns copies its inputs, so the batch-invariant columns are
    # built once and shared across every member (as ``deadlines`` and
    # ``cycles_tuples`` already are).
    shared_index = list(range(num_frames))
    shared_temperature = None if thermal else [tables.temperature_c] * num_frames
    for key, positions in partitions.items():
        if scalar_cutoffs and len(positions) < scalar_cutoffs.get(key[0], 0):
            # Too narrow to amortise the batch axis: the per-scenario table
            # engine is faster and bit-equal by contract.
            scalar_engine = thermalpath if thermal else tablepath
            for position in positions:
                results[position] = scalar_engine.simulate_closed_loop(
                    clusters[position],
                    application,
                    governors[position],
                    config,
                    tables,
                )
            continue
        runner = _FAMILY_RUNNERS[key[0]]
        family_clusters = [clusters[position] for position in positions]
        family_governors = [governors[position] for position in positions]
        physics, columns = runner(
            np, family_clusters, family_governors, application, config, tables, thermal
        )
        physics.finish()
        for member, position in enumerate(positions):
            results[position] = _finalise_member(
                np,
                clusters[position],
                governors[position],
                application,
                tables,
                thermal,
                physics,
                columns,
                member,
                deadlines,
                shared_index,
                shared_temperature,
                frequencies_hz,
                frequencies_mhz,
            )
    return results  # type: ignore[return-value]


def _bulk_column_lists(np, columns: _FamilyColumns, frequencies_mhz, thermal) -> None:
    """Transpose the family's column matrices into per-member Python lists.

    One ``tolist`` per column for the whole family instead of one per
    (column, member) pair — the dominant cost of scattering results back
    into per-scenario form at large batch sizes.  Families that never
    explore (everything but RL) share a single all-False column between
    members instead of S identical copies.
    """

    def by_member(matrix):
        return matrix.T.tolist()

    lists = {
        "opp": by_member(columns.opp),
        "frequency": by_member(frequencies_mhz[columns.opp]),
        "busy": by_member(columns.busy),
        "overhead": by_member(columns.overhead),
        "frame_time": by_member(columns.busy + columns.overhead),
        "duration": by_member(columns.duration),
        "energy": by_member(columns.energy),
        "power": by_member(columns.power),
        "measured": by_member(columns.measured),
    }
    if columns.explored.any():
        lists["explored"] = by_member(columns.explored)
    else:
        num_frames, size = columns.explored.shape
        shared = [False] * num_frames
        lists["explored"] = [shared] * size
    if thermal:
        lists["temperature"] = by_member(columns.temperature)
    columns.lists = lists


def _finalise_member(
    np,
    cluster,
    governor,
    application,
    tables,
    thermal: bool,
    physics: _BatchPhysics,
    columns: _FamilyColumns,
    member: int,
    deadlines: List[float],
    shared_index: List[int],
    shared_temperature: Optional[List[float]],
    frequencies_hz,
    frequencies_mhz,
) -> SimulationResult:
    """Scatter one member's columns into a result and sync its cluster."""
    num_frames = tables.num_frames

    def load_columns():
        # First column read of any of this family's members converts the
        # family matrices to per-member lists in one bulk pass; every
        # sibling's loader then reads the cached ``columns.lists``.  The
        # batch owns every per-member list and deliberately shares the
        # batch-invariant ones; nothing mutates them.
        if columns.lists is None:
            _bulk_column_lists(np, columns, frequencies_mhz, thermal)
        lists = columns.lists
        return {
            "index": shared_index,
            "operating_index": lists["opp"][member],
            "frequency_mhz": lists["frequency"][member],
            "cycles_per_core": tables.cycles_tuples,
            "busy_time_s": lists["busy"][member],
            "overhead_time_s": lists["overhead"][member],
            "frame_time_s": lists["frame_time"][member],
            "interval_s": lists["duration"][member],
            "deadline_s": deadlines,
            "energy_j": lists["energy"][member],
            "average_power_w": lists["power"][member],
            "measured_power_w": lists["measured"][member],
            "temperature_c": lists["temperature"][member] if thermal else shared_temperature,
            "explored": lists["explored"][member],
        }

    indices = columns.opp[:, member]
    frame_columns = FrameColumns.from_deferred(load_columns)
    result = SimulationResult(
        governor_name=governor.name,
        application_name=application.name,
        reference_time_s=application.reference_time_s,
        columns=frame_columns,
    )

    if physics.spc_matrix is not None:
        # Deferred mode already holds every per-frame quantity as a matrix.
        busy_times = tables.cycles * physics.spc_matrix[:, member][:, None]
        intervals = np.ascontiguousarray(physics.intervals_matrix[:, member])
        core_uncore_energy = np.ascontiguousarray(physics.core_matrix[:, member])
        transition_energy = np.ascontiguousarray(physics.te_matrix[:, member])
    else:
        rows = np.arange(num_frames)
        seconds_per_cycle = np.asarray(tables.seconds_per_cycle)
        busy_times = tables.cycles * seconds_per_cycle[indices][:, None]
        intervals = tables.interval[rows, indices]
        if thermal:
            core_uncore_energy = np.ascontiguousarray(columns.core_uncore[:, member])
        else:
            core_uncore_energy = tables.energy[rows, indices]
        previous_indices = np.empty_like(indices)
        previous_indices[0] = physics.initial_index[member]
        previous_indices[1:] = indices[:-1]
        changed = indices != previous_indices
        transition_energy = np.where(
            changed, physics._transition_energy[member], 0.0
        )
    idle_times = intervals[:, None] - busy_times
    fastpath._sync_cluster(
        cluster,
        np,
        cycles=tables.cycles,
        busy_times=busy_times,
        idle_times=idle_times,
        frequencies_hz=frequencies_hz,
        indices=indices,
        intervals=intervals,
        core_uncore_energy=core_uncore_energy,
        transition_energy=transition_energy,
        transitions=physics.transitions[member],
        total_duration=float(physics.time[member] - physics.initial_time[member]),
        transition_columns=physics.transition_columns[member],
    )
    if thermal:
        cluster.thermal_model.absorb_state(
            float(physics.temperature[member]), int(physics.throttle_total[member])
        )

    result.exploration_count = governor.exploration_count
    result.converged_epoch = governor.converged_epoch
    return result
