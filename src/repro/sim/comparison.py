"""Comparative-evaluation helpers: the paper's Table I style normalisation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.platform.energy import energy_saving_percent
from repro.sim.results import SimulationResult


@dataclass(frozen=True)
class ComparisonRow:
    """One row of a Table-I-style comparison.

    Attributes
    ----------
    methodology:
        Display name of the approach (e.g. "Linux Ondemand [5]").
    normalized_energy:
        Energy normalised to the Oracle run (>1 = more energy than optimal).
    normalized_performance:
        Average frame time normalised to ``Tref`` (>1 = under-performing,
        <1 = over-performing).
    total_energy_j / average_power_w / deadline_miss_ratio:
        Supporting absolute metrics.
    """

    methodology: str
    normalized_energy: float
    normalized_performance: float
    total_energy_j: float
    average_power_w: float
    deadline_miss_ratio: float


def compare_to_oracle(
    results: Dict[str, SimulationResult],
    oracle_key: str = "oracle",
    display_names: Optional[Dict[str, str]] = None,
) -> List[ComparisonRow]:
    """Build Table-I-style rows from a set of runs that includes an Oracle run.

    Parameters
    ----------
    results:
        Mapping of run key to result; must contain ``oracle_key``.
    oracle_key:
        Key of the Oracle run used for energy normalisation (it is excluded
        from the returned rows).
    display_names:
        Optional mapping of run key to the name shown in the row.
    """
    if display_names is None:
        display_names = {}
    if oracle_key not in results:
        raise SimulationError(f"results must include an Oracle run under key {oracle_key!r}")
    oracle = results[oracle_key]
    rows: List[ComparisonRow] = []
    for key, result in results.items():
        if key == oracle_key:
            continue
        rows.append(
            ComparisonRow(
                methodology=display_names.get(key, key),
                normalized_energy=result.normalized_energy(oracle),
                normalized_performance=result.normalized_performance,
                total_energy_j=result.total_energy_j,
                average_power_w=result.average_power_w,
                deadline_miss_ratio=result.deadline_miss_ratio,
            )
        )
    return rows


def pairwise_energy_saving(
    results: Dict[str, SimulationResult],
    candidate_key: str,
    baseline_key: str,
) -> float:
    """Percentage energy saving of ``candidate_key`` relative to ``baseline_key``.

    This is the quantity behind the paper's headline claim of "up to 16%
    energy savings compared to state-of-the-art".
    """
    for key in (candidate_key, baseline_key):
        if key not in results:
            raise SimulationError(f"results do not contain a run under key {key!r}")
    return energy_saving_percent(
        candidate_energy_j=results[candidate_key].total_energy_j,
        baseline_energy_j=results[baseline_key].total_energy_j,
    )
