"""NumPy-vectorised trace engine — the simulator's "fast path".

The scalar engine in :mod:`repro.sim.engine` steps one frame at a time
because in general the governor's next decision depends on what it observed
during the previous frame.  For governors whose schedule is knowable up
front — the pinned Linux policies (``performance``, ``powersave``,
``userspace``) and the Oracle's per-frame optimal evaluation — that closed
loop is pure overhead: every quantity of the run is a function of the frame
trace and a pre-computed per-frame operating-point schedule, and can be
evaluated for the whole trace in array form.

:func:`simulate_schedule` is that evaluation.  It reproduces the scalar
engine's numbers to tight tolerance by construction:

* busy times are ``cycles * seconds_per_cycle`` with the same hoisted
  reciprocal the scalar path multiplies by, so they are bit-identical;
* per-operating-point busy/idle core powers come from the same
  ``PowerModel.core_power_w`` evaluated at the same (constant) temperature;
* the stateful power sensor (conversion-period holdover, quantisation,
  seeded noise) is *driven*, not re-implemented: the real
  :class:`~repro.platform.sensors.PowerSensor` is stepped once per frame
  with pre-computed true powers and timestamps, so the measurement
  mechanism — holdover pattern, noise sequence, quantisation — is the
  scalar engine's own.

The only divergence is float summation order inside a frame's per-core
energy (vectorised sum vs sequential Python sum), far inside the 1e-9
relative tolerance the equivalence tests enforce.  Because the sensor
quantises the (last-bits-different) true average power, a frame whose
power sits exactly on a quantisation boundary could in principle report
one resolution step differently; the equivalence tests bound this too.

Eligibility: NumPy must be importable and the cluster's thermal model must
be disabled (the paper's setting) so temperature — and with it leakage
power — is constant over the trace.  Everything else (idle-at-min-OPP or
not, deadline padding or not, sensor noise, DVFS transition costs) is
handled exactly.  Thermally-enabled clusters negotiate to the
thermally-coupled engine in :mod:`repro.sim.thermalpath`; the scalar
engine remains the universal fallback (see :mod:`repro.sim.backends`).
"""

from __future__ import annotations

from typing import List, Sequence, TYPE_CHECKING

try:  # NumPy is optional: without it every run takes the scalar engine.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None  # type: ignore[assignment]

from repro.errors import SimulationError
from repro.platform.dvfs import DVFSTransition
from repro.sim.epoch import FrameColumns
from repro.sim.results import SimulationResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.platform.cluster import Cluster
    from repro.rtm.governor import Governor
    from repro.sim.engine import SimulationConfig
    from repro.workload.application import Application


def fast_path_eligible(cluster: "Cluster") -> bool:
    """True when :func:`simulate_schedule` reproduces the scalar engine here.

    Requires NumPy and a disabled thermal model (constant junction
    temperature, hence constant per-operating-point powers over the trace).
    """
    return _np is not None and not cluster.thermal_model.enabled


def simulate_schedule(
    cluster: "Cluster",
    application: "Application",
    governor: "Governor",
    config: "SimulationConfig",
    schedule: Sequence[int],
) -> SimulationResult:
    """Run ``application`` on ``cluster`` under a pre-computed OPP schedule.

    ``schedule`` holds one operating-point index per frame (typically from
    :meth:`~repro.rtm.governor.Governor.static_schedule`).  The cluster is
    used as-is — the caller resets it first, exactly as the scalar engine
    does — and is left with the same aggregate state a scalar run produces:
    clock advanced, energy meter and per-core PMUs credited with the trace
    totals, power sensor stepped through every frame, and the DVFS actuator
    holding the same transition history and final index.
    """
    np = _np
    if np is None:
        raise SimulationError("the vectorised fast path requires numpy")
    if cluster.thermal_model.enabled:
        raise SimulationError(
            "the vectorised fast path requires a disabled thermal model "
            "(temperature-dependent leakage needs the scalar engine)"
        )
    num_frames = application.num_frames
    if num_frames == 0:
        raise SimulationError("cannot simulate an application with no frames")
    if len(schedule) != num_frames:
        raise SimulationError(
            f"static schedule has {len(schedule)} entries for "
            f"{num_frames} frames"
        )
    table = cluster.vf_table
    num_cores = cluster.num_cores

    indices = np.asarray(schedule, dtype=np.intp)
    if indices.size and (indices.min() < 0 or indices.max() >= len(table)):
        raise SimulationError(
            f"static schedule contains out-of-range operating-point indices "
            f"(table has {len(table)} points)"
        )

    # -- trace arrays ---------------------------------------------------------
    cycles = np.empty((num_frames, num_cores), dtype=np.float64)
    deadlines = np.empty(num_frames, dtype=np.float64)
    for row, frame in enumerate(application):
        cycles[row] = frame.cycles_per_core(num_cores)
        deadlines[row] = frame.deadline_s

    points = table.points
    seconds_per_cycle = np.array([p.seconds_per_cycle for p in points])
    frequencies_hz = np.asarray(table.frequencies_hz)

    # -- per-operating-point power tables (constant temperature) --------------
    temperature_c = cluster.thermal_model.temperature_c
    busy_list, idle_list = cluster.power_model.power_table(points, temperature_c)
    busy_power_w = np.array(busy_list)
    idle_power_w = np.array(idle_list)

    # -- timing ----------------------------------------------------------------
    busy_times = cycles * seconds_per_cycle[indices][:, None]
    busy_max = busy_times.max(axis=1)
    if config.idle_until_deadline:
        intervals = np.maximum(busy_max, deadlines)
    else:
        intervals = busy_max
    idle_times = intervals[:, None] - busy_times

    # -- DVFS transitions ------------------------------------------------------
    previous = np.empty_like(indices)
    previous[0] = cluster.current_index
    previous[1:] = indices[:-1]
    changed = indices != previous
    transition_latency = np.where(changed, cluster.dvfs.transition_latency_s, 0.0)
    transition_energy = np.where(changed, cluster.dvfs.transition_energy_j, 0.0)

    # -- energy ----------------------------------------------------------------
    frame_busy_w = busy_power_w[indices]
    if cluster.idle_at_min_opp:
        frame_idle_w = idle_power_w[0]
    else:
        frame_idle_w = idle_power_w[indices]
    core_uncore_energy = (
        frame_busy_w * busy_times.sum(axis=1)
        + frame_idle_w * idle_times.sum(axis=1)
        + cluster.power_model.parameters.uncore_power_w * intervals
    )
    energies = core_uncore_energy + transition_energy
    durations = intervals + transition_latency
    average_powers = np.divide(
        energies,
        durations,
        out=np.zeros_like(energies),
        where=durations > 0,
    )

    # -- overheads and deadlines ----------------------------------------------
    if config.charge_governor_overhead:
        overheads = governor.processing_overhead_s + transition_latency
    else:
        overheads = np.zeros(num_frames)
    frame_times = busy_max + overheads

    # -- drive the stateful sensor through the trace ---------------------------
    # Timestamps accumulate sequentially exactly as the scalar engine's
    # cluster clock does: cumsum over [t0, d0, d1, ...] performs the same
    # left-to-right adds (including the t0 + d0 association).
    timestamps = np.cumsum(np.concatenate(((cluster.time_s,), durations)))[1:].tolist()
    measured = cluster.power_sensor.measure_trace(average_powers.tolist(), timestamps)

    # -- columnar per-frame results (records materialise lazily) ---------------
    frequency_mhz = np.array([point.frequency_mhz for point in points])
    index_list = indices.tolist()
    columns = FrameColumns(
        index=list(range(num_frames)),
        operating_index=index_list,
        frequency_mhz=frequency_mhz[indices].tolist(),
        cycles_per_core=[tuple(row) for row in cycles.tolist()],
        busy_time_s=busy_max.tolist(),
        overhead_time_s=overheads.tolist(),
        frame_time_s=frame_times.tolist(),
        interval_s=durations.tolist(),
        deadline_s=deadlines.tolist(),
        energy_j=energies.tolist(),
        average_power_w=average_powers.tolist(),
        measured_power_w=list(measured),
        temperature_c=[temperature_c] * num_frames,
        explored=[False] * num_frames,
    )
    result = SimulationResult(
        governor_name=governor.name,
        application_name=application.name,
        reference_time_s=application.reference_time_s,
        columns=columns,
    )

    # -- leave the cluster in scalar-equivalent aggregate state ----------------
    # Scalar runs record one DVFSTransition per actual change, stamped with
    # the cluster time at the start of the frame; rebuild those records so
    # the actuator's public counters report the same history.
    frame_starts = [cluster.time_s] + timestamps[:-1]
    previous_list = previous.tolist()
    latency_s = cluster.dvfs.transition_latency_s
    energy_j = cluster.dvfs.transition_energy_j
    transitions = [
        DVFSTransition(
            frame_starts[row], previous_list[row], index_list[row], latency_s, energy_j
        )
        for row in np.nonzero(changed)[0].tolist()
    ]
    _sync_cluster(
        cluster,
        np,
        cycles=cycles,
        busy_times=busy_times,
        idle_times=idle_times,
        frequencies_hz=frequencies_hz,
        indices=indices,
        intervals=intervals,
        core_uncore_energy=core_uncore_energy,
        transition_energy=transition_energy,
        transitions=transitions,
        total_duration=float(durations.sum()),
    )

    result.exploration_count = governor.exploration_count
    result.converged_epoch = governor.converged_epoch
    return result


def _sync_cluster(
    cluster: "Cluster",
    np,
    *,
    cycles,
    busy_times,
    idle_times,
    frequencies_hz,
    indices,
    intervals,
    core_uncore_energy,
    transition_energy,
    transitions: List[DVFSTransition],
    total_duration: float,
    transition_columns=None,
) -> None:
    """Credit the cluster's meters/PMUs/clock with the trace's aggregates."""
    meter = cluster.energy_meter
    if meter.record_history:
        # The caller opted into per-interval history: replay the per-frame
        # entries the scalar engine would have recorded.
        for frame_energy, interval in zip(
            core_uncore_energy.tolist(), intervals.tolist()
        ):
            meter.add_interval(
                frame_energy / interval if interval > 0 else 0.0, interval
            )
    else:
        total_interval = float(intervals.sum())
        if total_interval > 0:
            meter.add_interval(
                float(core_uncore_energy.sum()) / total_interval, total_interval
            )
    meter.add_energy(float(transition_energy.sum()))

    idle_cycles = idle_times * frequencies_hz[indices][:, None]
    per_core_cycles = cycles.sum(axis=0).tolist()
    per_core_busy_s = busy_times.sum(axis=0).tolist()
    per_core_idle_cycles = idle_cycles.sum(axis=0).tolist()
    per_core_idle_s = idle_times.sum(axis=0).tolist()
    for core_index, core in enumerate(cluster.cores):
        core.pmu.account_busy(per_core_cycles[core_index], per_core_busy_s[core_index])
        if per_core_idle_s[core_index] > 0:
            core.pmu.account_idle(
                per_core_idle_cycles[core_index], per_core_idle_s[core_index]
            )

    if transition_columns is not None:
        # Columnar transition log from the batched engine: absorbed as-is,
        # materialised into DVFSTransition records only if a caller reads them.
        cluster.dvfs.absorb_transition_columns(
            transition_columns[0],
            transition_columns[1],
            transition_columns[2],
            int(indices[-1]),
        )
    else:
        cluster.dvfs.absorb_transitions(transitions, int(indices[-1]))
    cluster.advance_time(total_duration)
