"""Aggregate metrics over simulation records.

:func:`summarize_records` walks a record list; :func:`summarize_result`
computes the same summary from a :class:`~repro.sim.results.SimulationResult`
through its columnar :meth:`~repro.sim.results.SimulationResult.to_arrays`
accessor — one NumPy reduction per metric instead of one Python-level
attribute access per record per metric — falling back to the record walk on
NumPy-less installs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Sequence

from repro.sim.epoch import FrameRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (results -> metrics)
    from repro.sim.results import SimulationResult


@dataclass(frozen=True)
class MetricsSummary:
    """Aggregate statistics over a sequence of frame records."""

    num_frames: int
    total_energy_j: float
    total_time_s: float
    average_power_w: float
    average_frame_time_s: float
    average_frequency_mhz: float
    deadline_miss_ratio: float
    mean_slack_ratio: float
    total_overhead_s: float
    exploration_epochs: int
    dvfs_changes: int


def summarize_records(records: Sequence[FrameRecord]) -> MetricsSummary:
    """Compute a :class:`MetricsSummary` over ``records``."""
    if not records:
        return MetricsSummary(
            num_frames=0,
            total_energy_j=0.0,
            total_time_s=0.0,
            average_power_w=0.0,
            average_frame_time_s=0.0,
            average_frequency_mhz=0.0,
            deadline_miss_ratio=0.0,
            mean_slack_ratio=0.0,
            total_overhead_s=0.0,
            exploration_epochs=0,
            dvfs_changes=0,
        )
    total_energy = sum(r.energy_j for r in records)
    total_time = sum(r.interval_s for r in records)
    num = len(records)
    dvfs_changes = sum(
        1
        for earlier, later in zip(records, records[1:])
        if earlier.operating_index != later.operating_index
    )
    return MetricsSummary(
        num_frames=num,
        total_energy_j=total_energy,
        total_time_s=total_time,
        average_power_w=total_energy / total_time if total_time > 0 else 0.0,
        average_frame_time_s=sum(r.frame_time_s for r in records) / num,
        average_frequency_mhz=sum(r.frequency_mhz for r in records) / num,
        deadline_miss_ratio=sum(1 for r in records if not r.met_deadline) / num,
        mean_slack_ratio=sum(r.slack_ratio for r in records) / num,
        total_overhead_s=sum(r.overhead_time_s for r in records),
        exploration_epochs=sum(1 for r in records if r.explored),
        dvfs_changes=dvfs_changes,
    )


def summarize_result(result: "SimulationResult") -> MetricsSummary:
    """Compute a :class:`MetricsSummary` for a whole simulation result.

    Uses :meth:`~repro.sim.results.SimulationResult.to_arrays` so a
    columnar result (from the vectorised or table-driven engines) is
    summarised with array reductions and without materialising one
    ``FrameRecord`` per frame.
    """
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - exercised on numpy-less installs
        return summarize_records(result.records)
    arrays = result.to_arrays()
    num = len(arrays["index"])
    if num == 0:
        return summarize_records([])
    frame_times = arrays["frame_time_s"]
    deadlines = arrays["deadline_s"]
    intervals = arrays["interval_s"]
    operating = arrays["operating_index"]
    total_energy = float(np.sum(arrays["energy_j"]))
    total_time = float(np.sum(intervals))
    misses = int(np.count_nonzero(frame_times > deadlines + 1e-12))
    positive_deadlines = deadlines > 0
    slack_ratios = np.where(
        positive_deadlines,
        (deadlines - frame_times) / np.where(positive_deadlines, deadlines, 1.0),
        0.0,
    )
    return MetricsSummary(
        num_frames=num,
        total_energy_j=total_energy,
        total_time_s=total_time,
        average_power_w=total_energy / total_time if total_time > 0 else 0.0,
        average_frame_time_s=float(np.sum(frame_times)) / num,
        average_frequency_mhz=float(np.sum(arrays["frequency_mhz"])) / num,
        deadline_miss_ratio=misses / num,
        mean_slack_ratio=float(np.sum(slack_ratios)) / num,
        total_overhead_s=float(np.sum(arrays["overhead_time_s"])),
        exploration_epochs=int(np.count_nonzero(arrays["explored"])),
        dvfs_changes=int(np.count_nonzero(operating[1:] != operating[:-1])),
    )


def frequency_histogram(records: Sequence[FrameRecord]) -> Dict[float, int]:
    """Histogram of operating frequencies (MHz) over the records.

    Useful for inspecting which operating points a governor settled on.
    """
    histogram: Dict[float, int] = {}
    for record in records:
        histogram[record.frequency_mhz] = histogram.get(record.frequency_mhz, 0) + 1
    return dict(sorted(histogram.items()))


def energy_by_phase(records: Sequence[FrameRecord], boundary_frame: int) -> Dict[str, float]:
    """Split the run's energy into before/after ``boundary_frame``.

    Handy for separating the exploration (learning) phase from the
    exploitation phase of a learning governor.
    """
    before = sum(r.energy_j for r in records if r.index < boundary_frame)
    after = sum(r.energy_j for r in records if r.index >= boundary_frame)
    return {"before": before, "after": after}
