"""repro — reproduction of "Machine Learning for Run-Time Energy Optimisation
in Many-Core Systems" (Biswas et al., DATE 2017).

The package is organised in layers mirroring the paper's cross-layer view:

* :mod:`repro.platform` — the hardware substrate (an ODROID-XU3-class chip
  model with DVFS, power, thermal and sensor models);
* :mod:`repro.workload` — the application layer (frame-based periodic
  applications and stochastic workload models for video decoding, FFT and
  PARSEC / SPLASH-2-like benchmarks);
* :mod:`repro.rtm` — the run-time layer: the proposed Q-learning run-time
  manager and its building blocks;
* :mod:`repro.governors` — the baseline DVFS policies the paper compares
  against (ondemand, the multi-core DVFS learning controller, the UPD
  Q-learning manager, the Oracle, and the remaining stock Linux policies);
* :mod:`repro.sim` — the closed-loop simulation engine and experiment
  runner;
* :mod:`repro.experiments` — one driver per paper table / figure;
* :mod:`repro.analysis` — statistics and plain-text reporting helpers.

Quickstart
----------
>>> from repro import build_a15_cluster, mpeg4_application
>>> from repro.rtm import MultiCoreRLGovernor
>>> from repro.sim import SimulationEngine
>>> engine = SimulationEngine(build_a15_cluster())
>>> result = engine.run(mpeg4_application(num_frames=120), MultiCoreRLGovernor())
>>> round(result.normalized_performance, 2) <= 1.1
True
"""

from repro.version import __version__, PAPER_TITLE, PAPER_VENUE
from repro.errors import (
    ReproError,
    ConfigurationError,
    PlatformError,
    WorkloadError,
    GovernorError,
    SimulationError,
    StateSpaceError,
)
from repro.platform import (
    OperatingPoint,
    VFTable,
    PowerModel,
    Cluster,
    Chip,
    build_odroid_xu3,
    build_a15_cluster,
    A15_VF_TABLE,
)
from repro.workload import (
    Frame,
    Application,
    PerformanceRequirement,
    mpeg4_application,
    h264_application,
    h264_football_application,
    fft_application,
    parsec_application,
    splash2_application,
)
from repro.rtm import RLGovernor, MultiCoreRLGovernor, RLGovernorConfig
from repro.governors import (
    OndemandGovernor,
    OracleGovernor,
    MultiCoreDVFSGovernor,
    ShenRLGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from repro.sim import SimulationEngine, SimulationConfig, ExperimentRunner
from repro.campaign import (
    CampaignSpec,
    ScenarioSpec,
    FactorySpec,
    CampaignResult,
    ScenarioOutcome,
    CampaignExecutor,
    CampaignInterrupted,
    RetryPolicy,
    run_campaign,
    register_application,
    register_governor,
    register_cluster,
    register_probe,
)

__all__ = [
    "__version__",
    "PAPER_TITLE",
    "PAPER_VENUE",
    "ReproError",
    "ConfigurationError",
    "PlatformError",
    "WorkloadError",
    "GovernorError",
    "SimulationError",
    "StateSpaceError",
    "OperatingPoint",
    "VFTable",
    "PowerModel",
    "Cluster",
    "Chip",
    "build_odroid_xu3",
    "build_a15_cluster",
    "A15_VF_TABLE",
    "Frame",
    "Application",
    "PerformanceRequirement",
    "mpeg4_application",
    "h264_application",
    "h264_football_application",
    "fft_application",
    "parsec_application",
    "splash2_application",
    "RLGovernor",
    "MultiCoreRLGovernor",
    "RLGovernorConfig",
    "OndemandGovernor",
    "OracleGovernor",
    "MultiCoreDVFSGovernor",
    "ShenRLGovernor",
    "PerformanceGovernor",
    "PowersaveGovernor",
    "SimulationEngine",
    "SimulationConfig",
    "ExperimentRunner",
    "CampaignSpec",
    "ScenarioSpec",
    "FactorySpec",
    "CampaignResult",
    "ScenarioOutcome",
    "CampaignExecutor",
    "CampaignInterrupted",
    "RetryPolicy",
    "run_campaign",
    "register_application",
    "register_governor",
    "register_cluster",
    "register_probe",
]
