"""Small cross-version and optional-dependency compatibility shims.

``SLOTS`` is splatted into ``@dataclass(...)`` decorators of hot-path record
types so they are allocated without a per-instance ``__dict__`` on modern
interpreters.  Slotted frozen dataclasses only pickle correctly from Python
3.11 onward (needed by the campaign process-pool backend), so the flag is
gated on 3.11 rather than 3.10 where the keyword first appeared.

``HAVE_NUMBA`` mirrors the numpy-optional pattern used throughout the
engines: a one-time import probe that downstream modules (and tests, via
monkeypatching) consult instead of importing numba themselves.  The
``REPRO_DISABLE_JIT`` environment variable is a kill-switch read *per call*
by :func:`jit_disabled`, so an operator can turn the compiled path off for
a single process without reinstalling anything.

``HAVE_PYARROW`` / :func:`arrow_disabled` repeat the same pattern for the
columnar campaign result store (:mod:`repro.campaign.store`): pyarrow is
an optional ``[arrow]`` extra, and ``REPRO_DISABLE_ARROW`` turns the
Arrow encoding off without reinstalling.
"""

from __future__ import annotations

import importlib.util
import os
import sys
from typing import Any, Dict

SLOTS: Dict[str, Any] = {"slots": True} if sys.version_info >= (3, 11) else {}

#: True when numba is importable.  A cheap find_spec probe rather than a
#: real import: importing numba costs seconds, which every process would
#: pay even when the compiled path is never used.  The jitpath module
#: imports numba lazily, only once a kernel is actually requested.
try:
    HAVE_NUMBA: bool = importlib.util.find_spec("numba") is not None
except (ImportError, ValueError):  # pragma: no cover - broken interpreter paths
    HAVE_NUMBA = False


def jit_disabled() -> bool:
    """True when the ``REPRO_DISABLE_JIT`` kill-switch is set.

    Read from the environment on every call (not cached at import) so
    toggling the variable mid-process — e.g. from a test — takes effect
    immediately.  Any non-empty value other than ``0`` disables the
    compiled path.
    """
    value = os.environ.get("REPRO_DISABLE_JIT", "")
    return value not in ("", "0")


#: True when pyarrow is importable.  Same cheap find_spec probe as
#: ``HAVE_NUMBA``: importing pyarrow loads native extension modules, which
#: every campaign process would pay even when it only ever writes JSON.
#: The store module imports pyarrow lazily, only once an Arrow-encoded
#: file is actually written or read.
try:
    HAVE_PYARROW: bool = importlib.util.find_spec("pyarrow") is not None
except (ImportError, ValueError):  # pragma: no cover - broken interpreter paths
    HAVE_PYARROW = False


def arrow_disabled() -> bool:
    """True when the ``REPRO_DISABLE_ARROW`` kill-switch is set.

    Same contract as :func:`jit_disabled`: read per call so tests and
    operators can toggle it mid-process; any non-empty value other than
    ``0`` keeps the result store on the pure-JSON encodings.
    """
    value = os.environ.get("REPRO_DISABLE_ARROW", "")
    return value not in ("", "0")
