"""Small cross-version compatibility shims.

``SLOTS`` is splatted into ``@dataclass(...)`` decorators of hot-path record
types so they are allocated without a per-instance ``__dict__`` on modern
interpreters.  Slotted frozen dataclasses only pickle correctly from Python
3.11 onward (needed by the campaign process-pool backend), so the flag is
gated on 3.11 rather than 3.10 where the keyword first appeared.
"""

from __future__ import annotations

import sys
from typing import Any, Dict

SLOTS: Dict[str, Any] = {"slots": True} if sys.version_info >= (3, 11) else {}
