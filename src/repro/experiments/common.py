"""Shared settings and helpers for the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.platform.cluster import Cluster
from repro.platform.odroid_xu3 import build_a15_cluster
from repro.sim.runner import ExperimentRunner


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by all experiment drivers.

    Attributes
    ----------
    num_frames:
        Length of the generated application(s).  The paper's Table I
        sequence is ~3000 frames; the default is smaller so the drivers stay
        fast in test/benchmark runs, and the benchmark harness raises it.
    num_seeds:
        Number of independent runs to average where the paper reports an
        average (Table II, Table III).
    num_cores:
        Number of A15 cores simulated (the paper uses all four).
    """

    num_frames: int = 600
    num_seeds: int = 3
    num_cores: int = 4

    def make_runner(self) -> ExperimentRunner:
        """Build a fresh A15-cluster experiment runner."""
        return ExperimentRunner(cluster=self.make_cluster())

    def make_cluster(self) -> Cluster:
        """Build the A15 cluster model used by every experiment."""
        return build_a15_cluster(num_cores=self.num_cores)


#: Paper-reported values, kept next to the drivers so EXPERIMENTS.md and the
#: benchmark output can show paper-vs-measured side by side.
PAPER_TABLE1 = {
    "Linux Ondemand [5]": (1.29, 0.77),
    "Multi-core DVFS control [20]": (1.20, 0.89),
    "Proposed": (1.11, 0.96),
}

PAPER_TABLE2 = {
    "MPEG4 (30 fps)": (144, 83),
    "H.264 (15 fps)": (149, 90),
    "FFT (32 fps)": (119, 74),
}

PAPER_TABLE3 = {
    "Multi-core DVFS control [20]": 205,
    "Our approach": 105,
}

PAPER_FIGURE3 = {
    "gamma": 0.6,
    "early_misprediction_percent": 8.0,
    "late_misprediction_percent": 3.0,
}
