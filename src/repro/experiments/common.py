"""Shared settings and helpers for the experiment drivers.

Every driver describes its sweep as a :class:`~repro.campaign.spec.CampaignSpec`
and executes it through the :class:`~repro.campaign.executor.CampaignExecutor`
built by :meth:`ExperimentSettings.make_executor`, so switching an entire
reproduction from serial to multi-process execution is a single settings
change (or the ``REPRO_CAMPAIGN_BACKEND`` environment variable).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.campaign.executor import CampaignExecutor
from repro.campaign.spec import FactorySpec
from repro.platform.cluster import Cluster
from repro.platform.odroid_xu3 import build_a15_cluster
from repro.sim.runner import ExperimentRunner


def default_backend() -> str:
    """Campaign backend selected by ``REPRO_CAMPAIGN_BACKEND`` (default serial)."""
    return os.environ.get("REPRO_CAMPAIGN_BACKEND", "serial")


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by all experiment drivers.

    Attributes
    ----------
    num_frames:
        Length of the generated application(s).  The paper's Table I
        sequence is ~3000 frames; the default is smaller so the drivers stay
        fast in test/benchmark runs, and the benchmark harness raises it.
    num_seeds:
        Number of independent runs to average where the paper reports an
        average (Table II, Table III).
    num_cores:
        Number of A15 cores simulated (the paper uses all four).
    backend:
        Campaign execution backend (``"serial"`` or ``"process"``); the
        default follows ``REPRO_CAMPAIGN_BACKEND``.  Both backends produce
        identical results — the process pool only changes wall-clock time.
    max_workers:
        Worker count for the process backend (``None`` = CPU count).
    """

    num_frames: int = 600
    num_seeds: int = 3
    num_cores: int = 4
    backend: str = field(default_factory=default_backend)
    max_workers: Optional[int] = None

    def make_executor(self) -> CampaignExecutor:
        """Build the campaign executor every driver runs its sweep on."""
        return CampaignExecutor(backend=self.backend, max_workers=self.max_workers)

    def cluster_spec(self) -> FactorySpec:
        """Declarative spec of the A15 cluster used by every experiment."""
        return FactorySpec.of("a15", num_cores=self.num_cores)

    def make_runner(self) -> ExperimentRunner:
        """Build a fresh A15-cluster experiment runner (single-run API)."""
        return ExperimentRunner(cluster=self.make_cluster())

    def make_cluster(self) -> Cluster:
        """Build the A15 cluster model used by every experiment."""
        return build_a15_cluster(num_cores=self.num_cores)


#: Paper-reported values, kept next to the drivers so EXPERIMENTS.md and the
#: benchmark output can show paper-vs-measured side by side.
PAPER_TABLE1 = {
    "Linux Ondemand [5]": (1.29, 0.77),
    "Multi-core DVFS control [20]": (1.20, 0.89),
    "Proposed": (1.11, 0.96),
}

PAPER_TABLE2 = {
    "MPEG4 (30 fps)": (144, 83),
    "H.264 (15 fps)": (149, 90),
    "FFT (32 fps)": (119, 74),
}

PAPER_TABLE3 = {
    "Multi-core DVFS control [20]": 205,
    "Our approach": 105,
}

PAPER_FIGURE3 = {
    "gamma": 0.6,
    "early_misprediction_percent": 8.0,
    "late_misprediction_percent": 3.0,
}
