"""Shared settings and helpers for the experiment drivers.

Every driver describes its sweep as a :class:`~repro.campaign.spec.CampaignSpec`
and executes it through :meth:`ExperimentSettings.run_campaign`, so switching
an entire reproduction from serial to multi-process execution is a single
settings change (or the ``REPRO_CAMPAIGN_BACKEND`` environment variable), and
pointing ``checkpoint_dir`` (or ``REPRO_CAMPAIGN_CHECKPOINT_DIR``) at a
directory makes every driver crash-resumable via incremental checkpoints.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.campaign.executor import CampaignExecutor, RetryPolicy
from repro.campaign.results import CampaignResult
from repro.campaign.spec import CampaignSpec, FactorySpec
from repro.platform.cluster import Cluster
from repro.platform.odroid_xu3 import build_a15_cluster
from repro.sim.runner import ExperimentRunner


def default_backend() -> str:
    """Campaign backend selected by ``REPRO_CAMPAIGN_BACKEND`` (default serial)."""
    return os.environ.get("REPRO_CAMPAIGN_BACKEND", "serial")


def default_checkpoint_dir() -> Optional[str]:
    """Checkpoint directory from ``REPRO_CAMPAIGN_CHECKPOINT_DIR`` (default off)."""
    return os.environ.get("REPRO_CAMPAIGN_CHECKPOINT_DIR") or None


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by all experiment drivers.

    Attributes
    ----------
    num_frames:
        Length of the generated application(s).  The paper's Table I
        sequence is ~3000 frames; the default is smaller so the drivers stay
        fast in test/benchmark runs, and the benchmark harness raises it.
    num_seeds:
        Number of independent runs to average where the paper reports an
        average (Table II, Table III).
    num_cores:
        Number of A15 cores simulated (the paper uses all four).
    backend:
        Campaign execution backend (``"serial"`` or ``"process"``); the
        default follows ``REPRO_CAMPAIGN_BACKEND``.  Both backends produce
        identical results — the process pool only changes wall-clock time.
    max_workers:
        Worker count for the process backend (``None`` = CPU count).
    checkpoint_dir:
        When set (or via ``REPRO_CAMPAIGN_CHECKPOINT_DIR``), every driver
        checkpoints its campaign to ``<dir>/<campaign>.checkpoint.json``
        as scenarios complete and resumes from an existing checkpoint, so
        a crashed/killed reproduction run picks up where it left off.
    checkpoint_every:
        Scenario completions between checkpoint writes.
    max_attempts:
        Per-scenario execution attempts (> 1 retries crashing scenarios).
    retry_backoff_s:
        Base seconds between retry attempts (capped exponential backoff
        with deterministic jitter; 0 retries immediately).
    timeout_s:
        Per-scenario wall-clock budget; a scenario still running after
        this many seconds is recorded as ``failed`` with a timeout error
        instead of hanging the whole sweep.  ``None`` disables the guard.
    """

    num_frames: int = 600
    num_seeds: int = 3
    num_cores: int = 4
    backend: str = field(default_factory=default_backend)
    max_workers: Optional[int] = None
    checkpoint_dir: Optional[str] = field(default_factory=default_checkpoint_dir)
    checkpoint_every: int = 10
    max_attempts: int = 1
    retry_backoff_s: float = 0.0
    timeout_s: Optional[float] = None

    def make_executor(self) -> CampaignExecutor:
        """Build the campaign executor every driver runs its sweep on."""
        return CampaignExecutor(
            backend=self.backend,
            max_workers=self.max_workers,
            retry=RetryPolicy(
                max_attempts=self.max_attempts,
                backoff_s=self.retry_backoff_s,
                timeout_s=self.timeout_s,
            ),
        )

    def checkpoint_path(self, campaign: CampaignSpec) -> Optional[str]:
        """Per-campaign checkpoint file under :attr:`checkpoint_dir` (or ``None``)."""
        if not self.checkpoint_dir:
            return None
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        return os.path.join(self.checkpoint_dir, f"{campaign.name}.checkpoint.json")

    def run_campaign(self, campaign: CampaignSpec) -> CampaignResult:
        """Execute ``campaign`` with this settings' executor + checkpointing.

        Resumes from the campaign's checkpoint file when one exists, and
        raises :class:`~repro.errors.SimulationError` if any scenario ends
        up ``failed`` — the experiment drivers need every cell of their
        table, so a partial sweep is an error (the checkpoint retains the
        completed work for the next attempt).
        """
        checkpoint = self.checkpoint_path(campaign)
        # load_checkpoint quarantines a checkpoint truncated by a crash
        # instead of dying on it — the driver restarts from scratch.
        resume = (
            CampaignResult.load_checkpoint(checkpoint) if checkpoint else None
        )
        store = self.make_executor().run(
            campaign,
            resume=resume,
            checkpoint_path=checkpoint,
            checkpoint_every=self.checkpoint_every,
        )
        store.raise_on_failures()
        return store

    def cluster_spec(self) -> FactorySpec:
        """Declarative spec of the A15 cluster used by every experiment."""
        return FactorySpec.of("a15", num_cores=self.num_cores)

    def make_runner(self) -> ExperimentRunner:
        """Build a fresh A15-cluster experiment runner (single-run API)."""
        return ExperimentRunner(cluster=self.make_cluster())

    def make_cluster(self) -> Cluster:
        """Build the A15 cluster model used by every experiment."""
        return build_a15_cluster(num_cores=self.num_cores)


#: Paper-reported values, kept next to the drivers so EXPERIMENTS.md and the
#: benchmark output can show paper-vs-measured side by side.
PAPER_TABLE1 = {
    "Linux Ondemand [5]": (1.29, 0.77),
    "Multi-core DVFS control [20]": (1.20, 0.89),
    "Proposed": (1.11, 0.96),
}

PAPER_TABLE2 = {
    "MPEG4 (30 fps)": (144, 83),
    "H.264 (15 fps)": (149, 90),
    "FFT (32 fps)": (119, 74),
}

PAPER_TABLE3 = {
    "Multi-core DVFS control [20]": 205,
    "Our approach": 105,
}

PAPER_FIGURE3 = {
    "gamma": 0.6,
    "early_misprediction_percent": 8.0,
    "late_misprediction_percent": 3.0,
}
