"""Fig. 3 — workload misprediction for MPEG-4 and learning impact on slack.

The paper decodes MPEG-4 at 24 SVGA fps with EWMA smoothing factor γ = 0.6
and plots, per frame, the predicted and actual workload (cycle count) and
the average slack ratio.  It reports mispredictions during the exploration
frames (the first ~25) and again after frame ~90, with an average
misprediction of roughly 8% over the first 100 frames dropping to about 3%
afterwards.

This driver regenerates the three series of the figure (predicted workload,
actual workload, average slack ratio) and the two summary statistics.  The
shape to verify: the early-window misprediction exceeds the steady-state
misprediction, and the average slack settles once the exploration phase
ends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.reporting import format_table
from repro.campaign.spec import CampaignSpec, FactorySpec, ScenarioSpec
from repro.experiments.common import PAPER_FIGURE3, ExperimentSettings
from repro.sim.results import SimulationResult

#: The paper's analysis window: "the first 100 frames".
EARLY_WINDOW_FRAMES = 100


@dataclass
class Figure3Result:
    """Structured output of the Fig. 3 reproduction."""

    predicted_cycles: List[float]
    actual_cycles: List[float]
    average_slack: List[float]
    early_misprediction_percent: float
    late_misprediction_percent: float
    exploration_phase_epochs: int
    ewma_gamma: float
    simulation: SimulationResult
    paper_early_percent: float = PAPER_FIGURE3["early_misprediction_percent"]
    paper_late_percent: float = PAPER_FIGURE3["late_misprediction_percent"]

    @property
    def num_frames(self) -> int:
        """Number of frames in the regenerated series."""
        return len(self.actual_cycles)


def build_figure3_campaign(
    settings: ExperimentSettings = ExperimentSettings(),
    seed: int = 7,
    frames_per_second: float = 24.0,
) -> CampaignSpec:
    """The Fig. 3 run as a one-scenario campaign with the prediction probe.

    The figure tracks the workload of the cluster's critical path, which in
    the many-core formulation is predicted per core; core 0 carries the
    dominant decode thread, so its predictor is the one the probe extracts.
    """
    num_frames = max(300, min(settings.num_frames, 600))
    scenario = ScenarioSpec(
        label="figure3",
        application=FactorySpec.of(
            "mpeg4", num_frames=num_frames, frames_per_second=frames_per_second
        ),
        governor=FactorySpec.of("proposed"),
        cluster=settings.cluster_spec(),
        seed=seed,
        probe=FactorySpec.of("rl-prediction", core=0, early_window=EARLY_WINDOW_FRAMES),
    )
    return CampaignSpec(name="figure3", scenarios=(scenario,))


def run_figure3(
    settings: ExperimentSettings = ExperimentSettings(),
    seed: int = 7,
    frames_per_second: float = 24.0,
) -> Figure3Result:
    """Run the Fig. 3 misprediction analysis on the MPEG-4 decode workload."""
    campaign = build_figure3_campaign(settings, seed, frames_per_second)
    outcome = settings.run_campaign(campaign).outcome("figure3")
    probe = outcome.probe or {}
    return Figure3Result(
        predicted_cycles=probe["predicted_cycles"],
        actual_cycles=probe["actual_cycles"],
        average_slack=probe["average_slack"],
        early_misprediction_percent=probe["early_misprediction_percent"],
        late_misprediction_percent=probe["late_misprediction_percent"],
        exploration_phase_epochs=probe["exploration_count"],
        ewma_gamma=probe["ewma_gamma"],
        simulation=outcome.result,
    )


def format_figure3(result: Figure3Result) -> str:
    """Render the Fig. 3 summary statistics next to the paper's numbers."""
    body = [
        (
            f"Mean misprediction, frames 0-{EARLY_WINDOW_FRAMES}",
            f"{result.early_misprediction_percent:.1f}%",
            f"~{result.paper_early_percent:.0f}%",
        ),
        (
            f"Mean misprediction, frames {EARLY_WINDOW_FRAMES}+",
            f"{result.late_misprediction_percent:.1f}%",
            f"~{result.paper_late_percent:.0f}%",
        ),
        ("EWMA smoothing factor gamma", f"{result.ewma_gamma:.1f}", "0.6"),
        ("Exploration-phase frames", f"{result.exploration_phase_epochs}", "~25 (exploration frames)"),
    ]
    return format_table(
        headers=["Quantity", "Reproduction", "Paper"],
        rows=body,
        title="Fig. 3 — MPEG-4 workload misprediction and learning impact",
    )
