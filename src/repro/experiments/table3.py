"""Table III — comparative evaluation of worst-case learning overhead.

The paper evaluates the time overhead of learning (sensor sampling,
processing, V-F transitions) by counting the decision epochs over which a
learning governor still pays its learning-time cost while decoding with
ffmpeg at a reference time of 31 ms per frame:

=============================  ==========================
Methodology                    Time overhead (T_OVH)
                               (in decision epochs)
=============================  ==========================
Multi-core DVFS control [20]   205
Our approach                   105
=============================  ==========================

Because the proposed RTM shares a single Q-table between the cores, its
learning converges in roughly half the decision epochs of the per-core-table
baseline — that halving is the shape this driver verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.reporting import format_table
from repro.analysis.stats import mean
from repro.campaign.spec import CampaignSpec, FactorySpec
from repro.experiments.common import PAPER_TABLE3, ExperimentSettings

#: The paper's ffmpeg decode uses a 31 ms per-frame reference time.
FFMPEG_REFERENCE_TIME_S = 0.031

#: The two learning governors whose overhead the table compares.
_GOVERNORS = {
    "baseline": FactorySpec.of("multicore-dvfs"),
    "proposed": FactorySpec.of("proposed"),
}


@dataclass(frozen=True)
class Table3Result:
    """Learning-overhead comparison (averaged over seeds)."""

    baseline_learning_epochs: float
    proposed_learning_epochs: float
    baseline_converged_epoch: Optional[float]
    proposed_converged_epoch: Optional[float]
    baseline_overhead_s: float
    proposed_overhead_s: float
    paper_baseline_epochs: int = PAPER_TABLE3["Multi-core DVFS control [20]"]
    paper_proposed_epochs: int = PAPER_TABLE3["Our approach"]

    @property
    def epoch_reduction_factor(self) -> float:
        """How many times fewer learning epochs the proposed approach needs."""
        if self.proposed_learning_epochs <= 0:
            return 0.0
        return self.baseline_learning_epochs / self.proposed_learning_epochs


def build_table3_campaign(
    settings: ExperimentSettings = ExperimentSettings(), base_seed: int = 5
) -> CampaignSpec:
    """The Table III sweep: the ffmpeg decode × two governors × the seeds."""
    num_frames = max(400, settings.num_frames)
    return CampaignSpec.from_grid(
        "table3",
        applications=[FactorySpec.of("ffmpeg-decode", num_frames=num_frames)],
        governors=_GOVERNORS,
        cluster=settings.cluster_spec(),
        seeds=tuple(base_seed + offset for offset in range(settings.num_seeds)),
    )


def run_table3(settings: ExperimentSettings = ExperimentSettings(), base_seed: int = 5) -> Table3Result:
    """Run the Table III learning-overhead comparison.

    The "learning epochs" of a governor are the decision epochs during which
    it still charges its learning-level processing overhead: for the
    proposed RTM these are the epochs of its exploration phase, for the
    multi-core DVFS baseline the epochs during which at least one per-core
    workload bin is still unlearnt.
    """
    campaign = build_table3_campaign(settings, base_seed)
    store = settings.run_campaign(campaign)
    baseline_epochs: List[float] = []
    proposed_epochs: List[float] = []
    baseline_converged: List[float] = []
    proposed_converged: List[float] = []
    baseline_overhead: List[float] = []
    proposed_overhead: List[float] = []
    for key, epochs, converged, overhead in (
        ("baseline", baseline_epochs, baseline_converged, baseline_overhead),
        ("proposed", proposed_epochs, proposed_converged, proposed_overhead),
    ):
        for outcome in store.select(governor_key=key):
            result = outcome.result
            epochs.append(float(result.exploration_count))
            if result.converged_epoch is not None:
                converged.append(float(result.converged_epoch))
            overhead.append(result.total_overhead_s)
    return Table3Result(
        baseline_learning_epochs=mean(baseline_epochs),
        proposed_learning_epochs=mean(proposed_epochs),
        baseline_converged_epoch=mean(baseline_converged) if baseline_converged else None,
        proposed_converged_epoch=mean(proposed_converged) if proposed_converged else None,
        baseline_overhead_s=mean(baseline_overhead),
        proposed_overhead_s=mean(proposed_overhead),
    )


def format_table3(result: Table3Result) -> str:
    """Render the Table III reproduction next to the paper's numbers."""
    body = [
        (
            "Multi-core DVFS control [20]",
            f"{result.baseline_learning_epochs:.0f}",
            f"{result.paper_baseline_epochs}",
        ),
        (
            "Our approach",
            f"{result.proposed_learning_epochs:.0f}",
            f"{result.paper_proposed_epochs}",
        ),
    ]
    table = format_table(
        headers=["Methodology", "T_OVH in decision epochs (ours)", "T_OVH (paper)"],
        rows=body,
        title="Table III — worst-case learning overhead (ffmpeg decode, Tref = 31 ms)",
    )
    return (
        f"{table}\nLearning-epoch reduction factor of the shared Q-table: "
        f"{result.epoch_reduction_factor:.2f}x"
    )
