"""Table I — comparative evaluation of normalised energy and performance.

The paper decodes an H.264 football sequence (~3000 frames) on the four A15
cores under three run-time approaches and reports, for each, the energy
normalised to an offline Oracle and the performance normalised to the
per-frame requirement ``Tref``:

=============================  =================  ======================
Methodology                    Normalised energy  Normalised performance
=============================  =================  ======================
Linux Ondemand [5]             1.29               0.77
Multi-core DVFS control [20]   1.20               0.89
Proposed                       1.11               0.96
=============================  =================  ======================

This driver reproduces the experiment on the simulated platform.  The shape
to verify is: ondemand > multi-core DVFS control > proposed in normalised
energy (all above 1), with the proposed approach's normalised performance
closest to 1, and the proposed approach saving on the order of 16% energy
versus ondemand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.reporting import format_table
from repro.campaign.spec import CampaignSpec, FactorySpec
from repro.experiments.common import PAPER_TABLE1, ExperimentSettings
from repro.sim.comparison import ComparisonRow, compare_to_oracle, pairwise_energy_saving
from repro.sim.results import SimulationResult

#: Mapping from run key to the methodology name used in the paper's table.
_DISPLAY_NAMES = {
    "ondemand": "Linux Ondemand [5]",
    "multicore_dvfs": "Multi-core DVFS control [20]",
    "proposed": "Proposed",
}

#: The four runs of the Table I comparison, keyed by methodology.
_GOVERNORS = {
    "ondemand": FactorySpec.of("ondemand"),
    "multicore_dvfs": FactorySpec.of("multicore-dvfs"),
    "proposed": FactorySpec.of("proposed"),
    "oracle": FactorySpec.of("oracle"),
}


@dataclass
class Table1Result:
    """Structured output of the Table I experiment."""

    rows: List[ComparisonRow]
    results: Dict[str, SimulationResult]
    energy_saving_vs_ondemand_percent: float
    paper_values: Dict[str, tuple] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.paper_values is None:
            self.paper_values = dict(PAPER_TABLE1)

    def row_for(self, methodology: str) -> ComparisonRow:
        """Return the row whose methodology name matches ``methodology``."""
        for row in self.rows:
            if row.methodology == methodology:
                return row
        raise KeyError(f"no row for methodology {methodology!r}")


def build_table1_campaign(
    settings: ExperimentSettings = ExperimentSettings(), seed: int = 11
) -> CampaignSpec:
    """The Table I sweep as a declarative campaign (one app × four governors)."""
    return CampaignSpec.from_grid(
        "table1",
        applications=[FactorySpec.of("h264-football", num_frames=settings.num_frames)],
        governors=_GOVERNORS,
        cluster=settings.cluster_spec(),
        seeds=(seed,),
    )


def run_table1(settings: ExperimentSettings = ExperimentSettings(), seed: int = 11) -> Table1Result:
    """Run the Table I comparison and return its rows.

    Parameters
    ----------
    settings:
        Frame count / core count of the run (the paper uses ~3000 frames)
        and the campaign backend to execute it on.
    seed:
        Seed of the football-sequence workload generator.
    """
    campaign = build_table1_campaign(settings, seed)
    results = settings.run_campaign(campaign).results()
    rows = compare_to_oracle(results, display_names=_DISPLAY_NAMES)
    saving = pairwise_energy_saving(results, candidate_key="proposed", baseline_key="ondemand")
    return Table1Result(
        rows=rows,
        results=results,
        energy_saving_vs_ondemand_percent=saving,
    )


def format_table1(result: Table1Result) -> str:
    """Render the Table I reproduction next to the paper's numbers."""
    body = []
    for row in result.rows:
        paper_energy, paper_performance = result.paper_values.get(row.methodology, (None, None))
        body.append(
            (
                row.methodology,
                f"{row.normalized_energy:.2f}",
                "-" if paper_energy is None else f"{paper_energy:.2f}",
                f"{row.normalized_performance:.2f}",
                "-" if paper_performance is None else f"{paper_performance:.2f}",
            )
        )
    table = format_table(
        headers=[
            "Methodology",
            "Norm. energy (ours)",
            "Norm. energy (paper)",
            "Norm. perf (ours)",
            "Norm. perf (paper)",
        ],
        rows=body,
        title="Table I — normalised energy and performance (H.264 football sequence)",
    )
    saving = result.energy_saving_vs_ondemand_percent
    return f"{table}\nEnergy saving of the proposed approach vs ondemand: {saving:.1f}%"
