"""Table II — comparative evaluation of the number of explorations.

The paper measures how many decision epochs the RL governor spends in its
exploration (learning) phase before switching to exploitation, for three
applications, comparing the EPD-guided exploration of the proposed approach
against the uniform-probability (UPD) exploration of Shen et al. [21]:

================  ==========================  =============
Application       Number of explorations [21]  Our approach
================  ==========================  =============
MPEG4 (30 fps)    144                          83
H.264 (15 fps)    149                          90
FFT (32 fps)      119                          74
================  ==========================  =============

The shape to verify: the proposed approach needs fewer explorations than the
UPD baseline for every application, and the FFT — whose workload barely
varies — needs the fewest of all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.analysis.reporting import format_table
from repro.analysis.stats import mean
from repro.campaign.spec import CampaignSpec, FactorySpec
from repro.experiments.common import PAPER_TABLE2, ExperimentSettings


@dataclass(frozen=True)
class Table2Row:
    """One application's exploration counts (averaged over seeds)."""

    application: str
    explorations_upd: float
    explorations_ours: float
    paper_upd: int
    paper_ours: int

    @property
    def reduction_percent(self) -> float:
        """Relative reduction in explorations achieved by the proposed approach."""
        if self.explorations_upd <= 0:
            return 0.0
        return 100.0 * (self.explorations_upd - self.explorations_ours) / self.explorations_upd


#: The three applications of Table II: paper name -> application spec builder.
_APPLICATIONS: Dict[str, Callable[[int], FactorySpec]] = {
    "MPEG4 (30 fps)": lambda frames: FactorySpec.of(
        "mpeg4", num_frames=frames, frames_per_second=30.0
    ),
    "H.264 (15 fps)": lambda frames: FactorySpec.of("h264", num_frames=frames),
    "FFT (32 fps)": lambda frames: FactorySpec.of("fft", num_frames=frames),
}

#: The two exploration strategies under comparison.
_GOVERNORS = {
    "ours": FactorySpec.of("proposed"),
    "upd": FactorySpec.of("shen-upd"),
}


def build_table2_campaign(
    settings: ExperimentSettings = ExperimentSettings(), base_seed: int = 7
) -> CampaignSpec:
    """The Table II sweep: three applications × two governors × the seeds."""
    num_frames = max(300, min(settings.num_frames, 600))
    return CampaignSpec.from_grid(
        "table2",
        applications={
            name: builder(num_frames) for name, builder in _APPLICATIONS.items()
        },
        governors=_GOVERNORS,
        cluster=settings.cluster_spec(),
        seeds=tuple(base_seed + offset for offset in range(settings.num_seeds)),
    )


def run_table2(settings: ExperimentSettings = ExperimentSettings(), base_seed: int = 7) -> List[Table2Row]:
    """Run the Table II exploration-count comparison.

    Each application is generated with ``settings.num_seeds`` different
    seeds; the exploration counts are averaged, matching the paper's
    "average number of explorations".
    """
    campaign = build_table2_campaign(settings, base_seed)
    store = settings.run_campaign(campaign)
    rows: List[Table2Row] = []
    for name in _APPLICATIONS:
        ours_counts = [
            float(outcome.result.exploration_count)
            for outcome in store.select(application_key=name, governor_key="ours")
        ]
        upd_counts = [
            float(outcome.result.exploration_count)
            for outcome in store.select(application_key=name, governor_key="upd")
        ]
        paper_upd, paper_ours = PAPER_TABLE2[name]
        rows.append(
            Table2Row(
                application=name,
                explorations_upd=mean(upd_counts),
                explorations_ours=mean(ours_counts),
                paper_upd=paper_upd,
                paper_ours=paper_ours,
            )
        )
    return rows


def format_table2(rows: List[Table2Row]) -> str:
    """Render the Table II reproduction next to the paper's numbers."""
    body = [
        (
            row.application,
            f"{row.explorations_upd:.0f}",
            f"{row.paper_upd}",
            f"{row.explorations_ours:.0f}",
            f"{row.paper_ours}",
            f"{row.reduction_percent:.0f}%",
        )
        for row in rows
    ]
    return format_table(
        headers=[
            "Application",
            "UPD [21] (ours)",
            "UPD [21] (paper)",
            "Proposed (ours)",
            "Proposed (paper)",
            "Reduction",
        ],
        rows=body,
        title="Table II — average number of explorations",
    )
