"""Experiment drivers: one module per table/figure of the paper's evaluation.

Each driver declares its sweep as a :class:`~repro.campaign.spec.CampaignSpec`
(the ``build_*_campaign`` helpers) and executes it through the campaign
executor configured on :class:`ExperimentSettings`, then aggregates the
outcomes into structured rows mirroring the paper's table; each also
provides a ``format_*`` helper that renders the rows as an ASCII table for
side-by-side comparison with the paper.
"""

from repro.experiments.common import (
    ExperimentSettings,
    default_backend,
    default_checkpoint_dir,
)
from repro.experiments.table1 import (
    Table1Result,
    build_table1_campaign,
    format_table1,
    run_table1,
)
from repro.experiments.table2 import (
    Table2Row,
    build_table2_campaign,
    format_table2,
    run_table2,
)
from repro.experiments.table3 import (
    Table3Result,
    build_table3_campaign,
    format_table3,
    run_table3,
)
from repro.experiments.figure3 import (
    Figure3Result,
    build_figure3_campaign,
    format_figure3,
    run_figure3,
)

__all__ = [
    "ExperimentSettings",
    "default_backend",
    "default_checkpoint_dir",
    "Table1Result",
    "build_table1_campaign",
    "run_table1",
    "format_table1",
    "Table2Row",
    "build_table2_campaign",
    "run_table2",
    "format_table2",
    "Table3Result",
    "build_table3_campaign",
    "run_table3",
    "format_table3",
    "Figure3Result",
    "build_figure3_campaign",
    "run_figure3",
    "format_figure3",
]
