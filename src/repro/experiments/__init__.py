"""Experiment drivers: one module per table/figure of the paper's evaluation.

Each driver builds the workload and governors the paper used, runs them on
the simulated A15 cluster, and returns structured rows mirroring the paper's
table; each also provides a ``format_*`` helper that renders the rows as an
ASCII table for side-by-side comparison with the paper.
"""

from repro.experiments.common import ExperimentSettings
from repro.experiments.table1 import Table1Result, run_table1, format_table1
from repro.experiments.table2 import Table2Row, run_table2, format_table2
from repro.experiments.table3 import Table3Result, run_table3, format_table3
from repro.experiments.figure3 import Figure3Result, run_figure3, format_figure3

__all__ = [
    "ExperimentSettings",
    "Table1Result",
    "run_table1",
    "format_table1",
    "Table2Row",
    "run_table2",
    "format_table2",
    "Table3Result",
    "run_table3",
    "format_table3",
    "Figure3Result",
    "run_figure3",
    "format_figure3",
]
