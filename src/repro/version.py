"""Version information for the repro package."""

__version__ = "1.0.0"

#: Paper reproduced by this library.
PAPER_TITLE = (
    "Machine Learning for Run-Time Energy Optimisation in Many-Core Systems"
)
PAPER_VENUE = "DATE 2017"
PAPER_AUTHORS = (
    "Dwaipayan Biswas",
    "Vibishna Balagopal",
    "Rishad Shafik",
    "Bashir M. Al-Hashimi",
    "Geoff V. Merrett",
)
