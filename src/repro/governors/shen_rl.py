"""UPD-exploration Q-learning baseline (Shen et al., TODAES 2013) — the paper's ref. [21].

Shen et al.'s autonomous power manager uses the same model-free Q-learning
machinery as the proposed RTM, but explores with the conventional **uniform
probability distribution** over actions instead of the paper's
slack-informed exponential distribution (EPD).  The paper's Table II
measures exactly this difference: with uniform exploration the learner needs
substantially more explorative decision epochs before its policy settles.

Implementation-wise this baseline is therefore the proposed
:class:`~repro.rtm.rl_governor.RLGovernor` with the exploration policy
swapped for :class:`~repro.rtm.exploration.UniformPolicy`; everything else
(EWMA prediction, state space, Bellman update, reward) is identical, which
isolates the exploration-policy effect the paper reports.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.rtm.qlearning import QLearningParameters
from repro.rtm.rl_governor import RLGovernor, RLGovernorConfig


class ShenRLGovernor(RLGovernor):
    """Q-learning DVFS governor with uniform (UPD) exploration."""

    name = "shen-rl-upd"

    def __init__(self, config: Optional[RLGovernorConfig] = None) -> None:
        base = config or RLGovernorConfig()
        upd_config = RLGovernorConfig(
            workload_levels=base.workload_levels,
            slack_levels=base.slack_levels,
            ewma_gamma=base.ewma_gamma,
            learning=replace(base.learning),
            reward=base.reward,
            exploration_beta=base.exploration_beta,
            use_exponential_exploration=False,
            overhead=base.overhead,
            convergence_window=base.convergence_window,
            seed=base.seed,
        )
        super().__init__(upd_config)
        self.name = "shen-rl-upd"

    def describe(self) -> str:
        return (
            "shen-rl-upd: Q-learning RTM with uniform-probability (UPD) exploration "
            "(Shen et al., TODAES'13)"
        )


def make_upd_learning_parameters() -> QLearningParameters:
    """Learning parameters matching the proposed approach but with conventional ε decay.

    Provided for ablations that want to study the ε schedule separately from
    the exploration distribution.
    """
    return QLearningParameters(epsilon_decay_on_any_reward=True)
