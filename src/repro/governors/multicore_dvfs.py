"""Multi-core DVFS control baseline (Ge & Qiu, DAC 2011) — the paper's ref. [20].

Ge & Qiu's controller learns, for each core and each observed workload bin,
the frequency needed to keep the core at a target utilisation, and selects
V-F settings from those learnt tables (their original work also couples this
to a thermal constraint, which the paper explicitly neglects "for
equivalence of comparison", so no thermal term appears here).

Two properties of this baseline drive the paper's comparison:

* its per-core tables are **not shared**, so with C cores the learning phase
  must populate roughly C times as many entries as the proposed shared-table
  approach — this is the Table III "time overhead" gap (205 vs 105 decision
  epochs);
* its target utilisation is conservative (it aims to finish frames well
  inside the budget), so it systematically over-performs — the Table I
  normalised performance of 0.89 with normalised energy 1.20.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.rtm.governor import EpochObservation, FrameHint, Governor, PlatformInfo
from repro.rtm.overhead import ConvergenceDetector, OverheadModel
from repro.rtm.prediction import LastValuePredictor, WorkloadPredictor
from repro.rtm.state import Discretizer
from repro.workload.application import PerformanceRequirement


@dataclass(frozen=True)
class MultiCoreDVFSParameters:
    """Tunables of the Ge & Qiu-style learning controller.

    Attributes
    ----------
    target_utilisation:
        Fraction of the frame budget the controller aims to use; below 1 so
        that prediction errors rarely cause deadline misses (the source of
        its systematic over-performance).
    workload_bins:
        Number of per-core workload bins in each learning table.
    min_visits:
        Number of observations of a bin before its entry is trusted; until
        then the controller over-provisions for that core.
    table_decay:
        Per-update decay applied to a bin's learnt frequency requirement.
        The entry tracks the *largest* requirement observed in the bin
        (decayed slowly), i.e. the controller provisions for the worst case
        it has seen — the conservative behaviour that makes this baseline
        over-perform.
    frequency_margin:
        Multiplicative safety margin applied to the learnt requirement when
        selecting the operating point.
    panic_on_miss:
        If True, a deadline miss in the previous epoch sends the cluster to
        its maximum frequency for the next epoch (the controller's recovery
        action), a significant contributor to its energy consumption on
        bursty workloads.
    """

    target_utilisation: float = 0.85
    workload_bins: int = 5
    min_visits: int = 15
    table_decay: float = 0.995
    frequency_margin: float = 1.25
    panic_on_miss: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.target_utilisation <= 1.0:
            raise ConfigurationError("target_utilisation must lie in (0, 1]")
        if self.workload_bins < 1:
            raise ConfigurationError("workload_bins must be >= 1")
        if self.min_visits < 1:
            raise ConfigurationError("min_visits must be >= 1")
        if not 0.0 < self.table_decay <= 1.0:
            raise ConfigurationError("table_decay must lie in (0, 1]")
        if self.frequency_margin < 1.0:
            raise ConfigurationError("frequency_margin must be >= 1")


class MultiCoreDVFSGovernor(Governor):
    """Per-core learning-table DVFS controller with a conservative utilisation target."""

    name = "multicore-dvfs"

    def __init__(self, parameters: Optional[MultiCoreDVFSParameters] = None) -> None:
        super().__init__()
        self.parameters = parameters or MultiCoreDVFSParameters()
        self.overhead = OverheadModel()
        self._predictors: List[WorkloadPredictor] = []
        self._bin_discretizer: Optional[Discretizer] = None
        # One table per core: learnt required frequency (Hz) per workload bin.
        self._frequency_tables: List[List[Optional[float]]] = []
        self._visit_counts: List[List[int]] = []
        self._round_robin_core = 0
        self._exploration_count = 0
        self._convergence = ConvergenceDetector(window=20)
        self._last_overhead_s = 0.0

    # -- lifecycle --------------------------------------------------------------------
    def setup(self, platform: PlatformInfo, requirement: PerformanceRequirement) -> None:
        super().setup(platform, requirement)
        p = self.parameters
        self._predictors = [LastValuePredictor() for _ in range(platform.num_cores)]
        self._bin_discretizer = Discretizer(0.0, 1.0, p.workload_bins)
        self._frequency_tables = [
            [None] * p.workload_bins for _ in range(platform.num_cores)
        ]
        self._visit_counts = [[0] * p.workload_bins for _ in range(platform.num_cores)]
        self._round_robin_core = 0
        self._exploration_count = 0
        self._convergence = ConvergenceDetector(window=20)
        self._last_overhead_s = 0.0

    # -- reporting ----------------------------------------------------------------------
    @property
    def exploration_count(self) -> int:
        """Epochs in which at least one core's bin was still unlearnt."""
        return self._exploration_count

    @property
    def converged_epoch(self) -> Optional[int]:
        """Epoch at which the selected operating point settled (Table III quantity)."""
        return self._convergence.converged_epoch

    @property
    def processing_overhead_s(self) -> float:
        """Per-epoch decision overhead charged to the application."""
        return self._last_overhead_s

    # -- helpers --------------------------------------------------------------------------
    def _capacity_cycles(self) -> float:
        return self.platform.capacity_cycles(self.requirement.tref_s)

    def _bin_of(self, predicted_cycles: float) -> int:
        assert self._bin_discretizer is not None
        fraction = min(1.0, predicted_cycles / self._capacity_cycles())
        return self._bin_discretizer.level(fraction)

    def _required_frequency(self, cycles: float) -> float:
        """Frequency needed to retire ``cycles`` within the target share of the budget."""
        budget = self.requirement.tref_s * self.parameters.target_utilisation
        return cycles / budget

    # -- per-epoch decision ----------------------------------------------------------------
    def decide(
        self,
        previous: Optional[EpochObservation],
        hint: Optional[FrameHint] = None,
    ) -> int:
        table = self.platform.vf_table
        p = self.parameters
        if previous is None:
            self._last_overhead_s = self.overhead.epoch_overhead_s(learning=True)
            return len(table) - 1

        # Learn from the finished epoch: update the round-robin core's table
        # entry for the bin its *observed* workload fell into (one entry per
        # epoch, mirroring the decision-epoch budget of the proposed RTM —
        # but with per-core tables the entries multiply with the core count).
        focus = self._round_robin_core
        observed = (
            previous.cycles_per_core[focus]
            if focus < len(previous.cycles_per_core)
            else 0.0
        )
        observed_bin = self._bin_of(observed)
        required = self._required_frequency(observed)
        entry = self._frequency_tables[focus][observed_bin]
        if entry is None:
            self._frequency_tables[focus][observed_bin] = required
        else:
            # Track the worst-case requirement seen in the bin, decayed very
            # slowly so stale peaks are eventually forgotten.
            self._frequency_tables[focus][observed_bin] = max(
                required, entry * p.table_decay
            )
        self._visit_counts[focus][observed_bin] += 1
        self._round_robin_core = (focus + 1) % self.platform.num_cores

        # Predict each core's next workload and look up its learnt requirement.
        still_learning = False
        required_frequencies = []
        for core_index, predictor in enumerate(self._predictors):
            core_observed = (
                previous.cycles_per_core[core_index]
                if core_index < len(previous.cycles_per_core)
                else 0.0
            )
            predicted = predictor.observe(core_observed)
            bin_index = self._bin_of(predicted)
            learnt = self._frequency_tables[core_index][bin_index]
            visits = self._visit_counts[core_index][bin_index]
            if learnt is None or visits < p.min_visits:
                # Unlearnt bin: over-provision for this core (exploration).
                still_learning = True
                required_frequencies.append(self._required_frequency(predicted) * 1.25)
            else:
                required_frequencies.append(learnt)

        if still_learning:
            self._exploration_count += 1

        # The shared V-F domain must satisfy the most demanding core, with the
        # controller's safety margin on top; a deadline miss in the previous
        # epoch triggers its maximum-frequency recovery action.
        if p.panic_on_miss and not previous.met_deadline:
            action = len(table) - 1
        else:
            target = (
                max(required_frequencies) * p.frequency_margin
                if required_frequencies
                else table.max_point.frequency_hz
            )
            target = min(target, table.max_point.frequency_hz)
            action = table.nearest_index_for_frequency(target)
        self._convergence.observe(action, explored=still_learning)
        self._last_overhead_s = self.overhead.epoch_overhead_s(learning=still_learning)
        return action

    def describe(self) -> str:
        p = self.parameters
        return (
            f"multicore-dvfs (Ge & Qiu style): per-core learnt frequency tables, "
            f"target utilisation {p.target_utilisation:.0%}"
        )
