"""The Linux ``powersave`` governor: always the slowest operating point."""

from __future__ import annotations

from repro.governors.base import StaticGovernor


class PowersaveGovernor(StaticGovernor):
    """Always selects the lowest available frequency."""

    name = "powersave"

    def __init__(self) -> None:
        super().__init__(index=None)

    def _resolve_index(self) -> int:
        return 0

    def describe(self) -> str:
        return "powersave: pin the cluster at its slowest operating point"
