"""The Linux ``userspace`` governor: hold whatever frequency the user set."""

from __future__ import annotations

from repro.errors import GovernorError
from repro.governors.base import StaticGovernor


class UserspaceGovernor(StaticGovernor):
    """Holds a caller-selected operating point; the caller may change it between epochs."""

    name = "userspace"

    def __init__(self, index: int = 0) -> None:
        super().__init__(index=index)

    def set_index(self, index: int) -> None:
        """Change the held operating-point index (takes effect at the next epoch)."""
        if index < 0:
            raise GovernorError("operating-point index must be non-negative")
        self._requested_index = index

    def set_frequency(self, frequency_hz: float) -> None:
        """Hold the slowest operating point at least as fast as ``frequency_hz``."""
        self._requested_index = self.platform.vf_table.nearest_index_for_frequency(frequency_hz)

    def describe(self) -> str:
        return f"userspace: hold operating-point index {self._requested_index}"
