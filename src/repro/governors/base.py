"""Shared helpers for the baseline governors.

The governor *interface* lives in :mod:`repro.rtm.governor` (it is shared
with the proposed RTM); this module adds the small amount of machinery the
stock-policy baselines have in common.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import GovernorError
from repro.rtm.governor import EpochObservation, FrameHint, Governor
from repro.workload.application import Application


class StaticGovernor(Governor):
    """A governor that always selects the same operating-point index.

    This is the building block for the ``performance`` (always fastest),
    ``powersave`` (always slowest) and ``userspace`` (caller-chosen) Linux
    policies.
    """

    name = "static"

    def __init__(self, index: Optional[int] = None) -> None:
        super().__init__()
        self._requested_index = index

    def _resolve_index(self) -> int:
        """Index the governor should hold; subclasses override for min/max behaviour."""
        if self._requested_index is None:
            raise GovernorError(f"governor {self.name!r} has no operating point configured")
        return self._requested_index

    def _validated_index(self) -> int:
        index = self._resolve_index()
        if not 0 <= index < self.platform.num_actions:
            raise GovernorError(
                f"{self.name!r} configured with index {index}, but the table has "
                f"{self.platform.num_actions} operating points"
            )
        return index

    def decide(
        self,
        previous: Optional[EpochObservation],
        hint: Optional[FrameHint] = None,
    ) -> int:
        return self._validated_index()

    def static_schedule(self, application: Application) -> Optional[List[int]]:
        """A pinned governor's schedule is its one index repeated per frame.

        The schedule snapshots the index configured at probe time; a caller
        that mutates a :class:`~repro.governors.userspace.UserspaceGovernor`
        *during* a run must run it on the scalar engine (the engine probes
        once, before the first frame).
        """
        return [self._validated_index()] * application.num_frames


def observed_load(observation: EpochObservation) -> float:
    """CPU load of an epoch as a cpufreq-style governor computes it.

    Load is the busy time of the epoch's critical path divided by the epoch's
    wall-clock interval, i.e. the fraction of the sampling window the CPU was
    not idle.  Values are clamped to [0, 1].
    """
    if observation.interval_s <= 0:
        return 0.0
    load = observation.busy_time_s / observation.interval_s
    return max(0.0, min(1.0, load))
