"""The Linux ``ondemand`` governor (Pallipadi & Starikovskiy, OLS 2006).

Ondemand is the reactive baseline of the paper's Table I.  Its policy, as
implemented in the kernel the paper used (3.10.x):

* sample the CPU load over the last sampling window;
* if the load exceeds ``up_threshold`` (default 80% on mainline, 95% on many
  vendor kernels) jump straight to the maximum frequency;
* otherwise pick the lowest frequency that would keep the load just below
  ``up_threshold`` for the same amount of work, i.e.
  ``f_next = f_current * load / up_threshold`` rounded up to the next
  available operating point.

Ondemand knows nothing about application deadlines — it only sees CPU load —
which is exactly why the paper finds it over-performs (normalised
performance 0.77) and wastes energy (normalised energy 1.29).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError, GovernorError
from repro.governors.base import observed_load
from repro.rtm.governor import EpochObservation, FrameHint, Governor


@dataclass(frozen=True)
class OndemandParameters:
    """Tunables of the ondemand policy.

    Attributes
    ----------
    up_threshold:
        Load above which the governor jumps to the maximum frequency.
    sampling_down_factor:
        Number of consecutive high-load windows the governor stays at the
        maximum frequency before it re-evaluates (kernel default 1; vendor
        kernels often raise it to reduce flapping).
    """

    up_threshold: float = 0.80
    sampling_down_factor: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.up_threshold <= 1.0:
            raise ConfigurationError("up_threshold must lie in (0, 1]")
        if self.sampling_down_factor < 1:
            raise ConfigurationError("sampling_down_factor must be >= 1")


class OndemandGovernor(Governor):
    """Reactive load-threshold DVFS policy."""

    name = "ondemand"

    def __init__(self, parameters: Optional[OndemandParameters] = None) -> None:
        super().__init__()
        self.parameters = parameters or OndemandParameters()
        self._hold_remaining = 0
        self._table = None
        self._max_index: Optional[int] = None
        self._min_frequency_hz = 0.0
        self._up_threshold = self.parameters.up_threshold
        self._sampling_down_factor = self.parameters.sampling_down_factor

    def setup(self, platform, requirement) -> None:  # type: ignore[override]
        super().setup(platform, requirement)
        self._hold_remaining = 0
        # Per-decision constants, hoisted out of the hot loop.
        self._table = platform.vf_table
        self._max_index = len(platform.vf_table) - 1
        self._min_frequency_hz = platform.vf_table.min_point.frequency_hz
        self._up_threshold = self.parameters.up_threshold
        self._sampling_down_factor = self.parameters.sampling_down_factor

    def decide(
        self,
        previous: Optional[EpochObservation],
        hint: Optional[FrameHint] = None,
    ) -> int:
        max_index = self._max_index
        if max_index is None:
            raise GovernorError(f"governor {self.name!r} used before setup()")
        if previous is None:
            # Ondemand starts from whatever frequency was in force; starting
            # at the maximum is the safe (and common after-boot) situation.
            return max_index

        table = self._table
        load = observed_load(previous)
        current_frequency = table[previous.operating_index].frequency_hz

        if load > self._up_threshold:
            self._hold_remaining = self._sampling_down_factor
            return max_index

        if self._hold_remaining > 1:
            # Stay at the maximum for the configured number of windows.
            self._hold_remaining -= 1
            return max_index
        self._hold_remaining = 0

        # Scale down proportionally so the next window's load sits just under
        # the threshold, then round up to the next available operating point
        # (CPUFREQ_RELATION_L).
        target_frequency = current_frequency * load / self._up_threshold
        target_frequency = max(target_frequency, self._min_frequency_hz)
        return table.nearest_index_for_frequency(target_frequency)

    def decision_state(self):
        """Base snapshot plus the hold counter (ondemand's only hidden state).

        ``sampling_down_factor`` windows at the maximum are tracked by a
        countdown the observation stream cannot reveal; the parity harness
        diffs it so two backends that disagree only in the *pending* hold
        state are still caught.
        """
        state = super().decision_state()
        state["up_threshold"] = self.parameters.up_threshold
        state["sampling_down_factor"] = self.parameters.sampling_down_factor
        state["hold_remaining"] = self._hold_remaining
        return state

    def describe(self) -> str:
        return (
            f"ondemand: jump to max above {self.parameters.up_threshold:.0%} load, "
            "proportional scale-down otherwise"
        )
