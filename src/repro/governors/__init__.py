"""Baseline DVFS governors.

These are the comparison points of the paper's evaluation:

* :class:`OndemandGovernor` — Linux's ondemand policy [5], used in Table I;
* :class:`MultiCoreDVFSGovernor` — the learning-based multi-core DVFS
  control of Ge & Qiu (DAC'11) [20], used in Tables I and III;
* :class:`ShenRLGovernor` — the UPD-exploration Q-learning power manager of
  Shen et al. (TODAES'13) [21], used in Table II;
* :class:`OracleGovernor` — offline-optimal per-frame V-F selection, the
  normalisation baseline of Table I;
* :class:`PerformanceGovernor`, :class:`PowersaveGovernor`,
  :class:`ConservativeGovernor`, :class:`UserspaceGovernor` — the remaining
  stock Linux policies, provided for completeness and used in the examples
  and ablations.
"""

from repro.governors.base import StaticGovernor
from repro.governors.ondemand import OndemandGovernor, OndemandParameters
from repro.governors.conservative import ConservativeGovernor, ConservativeParameters
from repro.governors.performance import PerformanceGovernor
from repro.governors.powersave import PowersaveGovernor
from repro.governors.userspace import UserspaceGovernor
from repro.governors.oracle import OracleGovernor
from repro.governors.multicore_dvfs import MultiCoreDVFSGovernor, MultiCoreDVFSParameters
from repro.governors.shen_rl import ShenRLGovernor

__all__ = [
    "StaticGovernor",
    "OndemandGovernor",
    "OndemandParameters",
    "ConservativeGovernor",
    "ConservativeParameters",
    "PerformanceGovernor",
    "PowersaveGovernor",
    "UserspaceGovernor",
    "OracleGovernor",
    "MultiCoreDVFSGovernor",
    "MultiCoreDVFSParameters",
    "ShenRLGovernor",
]
