"""The Linux ``performance`` governor: always the fastest operating point."""

from __future__ import annotations

from repro.governors.base import StaticGovernor


class PerformanceGovernor(StaticGovernor):
    """Always selects the highest available frequency."""

    name = "performance"

    def __init__(self) -> None:
        super().__init__(index=None)

    def _resolve_index(self) -> int:
        return self.platform.num_actions - 1

    def describe(self) -> str:
        return "performance: pin the cluster at its fastest operating point"
