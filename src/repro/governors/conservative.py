"""The Linux ``conservative`` governor.

Conservative is ondemand's gentler sibling: instead of jumping straight to
the maximum frequency on high load it steps the frequency up and down
gradually.  It is not part of the paper's comparison tables but is included
for completeness (it ships with the kernel the paper used) and as an extra
point in the governor-comparison example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError, GovernorError
from repro.governors.base import observed_load
from repro.rtm.governor import EpochObservation, FrameHint, Governor


@dataclass(frozen=True)
class ConservativeParameters:
    """Tunables of the conservative policy.

    Attributes
    ----------
    up_threshold:
        Load above which the frequency is stepped up.
    down_threshold:
        Load below which the frequency is stepped down.
    freq_step:
        Step size as a fraction of the table (kernel default 5% of max
        frequency; here expressed as a number of table indices per step).
    """

    up_threshold: float = 0.80
    down_threshold: float = 0.20
    freq_step_indices: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.up_threshold <= 1.0:
            raise ConfigurationError("up_threshold must lie in (0, 1]")
        if not 0.0 <= self.down_threshold < self.up_threshold:
            raise ConfigurationError("down_threshold must lie in [0, up_threshold)")
        if self.freq_step_indices < 1:
            raise ConfigurationError("freq_step_indices must be >= 1")


class ConservativeGovernor(Governor):
    """Gradual step-up/step-down DVFS policy."""

    name = "conservative"

    def __init__(self, parameters: Optional[ConservativeParameters] = None) -> None:
        super().__init__()
        self.parameters = parameters or ConservativeParameters()
        self._max_index: Optional[int] = None
        self._up_threshold = self.parameters.up_threshold
        self._down_threshold = self.parameters.down_threshold
        self._freq_step_indices = self.parameters.freq_step_indices

    def setup(self, platform, requirement) -> None:  # type: ignore[override]
        super().setup(platform, requirement)
        # Per-decision constants, hoisted out of the hot loop.
        self._max_index = len(platform.vf_table) - 1

    def decide(
        self,
        previous: Optional[EpochObservation],
        hint: Optional[FrameHint] = None,
    ) -> int:
        max_index = self._max_index
        if max_index is None:
            raise GovernorError(f"governor {self.name!r} used before setup()")
        if previous is None:
            return max_index
        load = observed_load(previous)
        index = previous.operating_index
        if load > self._up_threshold:
            index += self._freq_step_indices
        elif load < self._down_threshold:
            index -= self._freq_step_indices
        # Inline clamp (VFTable.clamp_index semantics).
        if index < 0:
            return 0
        if index > max_index:
            return max_index
        return index

    def decision_state(self):
        """Base snapshot plus the threshold configuration under diff."""
        state = super().decision_state()
        state["up_threshold"] = self.parameters.up_threshold
        state["down_threshold"] = self.parameters.down_threshold
        state["freq_step_indices"] = self.parameters.freq_step_indices
        return state

    def describe(self) -> str:
        p = self.parameters
        return (
            f"conservative: step up above {p.up_threshold:.0%} load, "
            f"step down below {p.down_threshold:.0%}"
        )
