"""Oracle governor: offline-optimal per-frame V-F selection.

The paper normalises every approach's energy against an "Oracle" obtained
by offline determination of the optimal V-F setting for the observed CPU
workloads.  With perfect knowledge of the upcoming frame's cycle demand the
energy-optimal choice on a platform with non-negligible idle power is the
*slowest operating point that still meets the deadline* (the convexity of
``P(V, f)`` makes any faster point strictly worse once the idle remainder of
the frame period is accounted for).

The Oracle therefore consumes the :class:`~repro.rtm.governor.FrameHint`
that the simulation engine passes to every governor and that honest online
governors ignore.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import GovernorError
from repro.rtm.governor import EpochObservation, FrameHint, Governor
from repro.workload.application import Application


class OracleGovernor(Governor):
    """Per-frame optimal governor with perfect workload knowledge.

    Parameters
    ----------
    guard_band:
        Fractional safety margin applied to the deadline.  The small default
        covers the DVFS transition latency and governor bookkeeping charged
        to each epoch, so the Oracle's choice still meets the deadline after
        those overheads.
    """

    name = "oracle"

    def __init__(self, guard_band: float = 0.02) -> None:
        super().__init__()
        if not 0.0 <= guard_band < 1.0:
            raise GovernorError("guard_band must lie in [0, 1)")
        self.guard_band = guard_band

    def decide(
        self,
        previous: Optional[EpochObservation],
        hint: Optional[FrameHint] = None,
    ) -> int:
        if hint is None:
            raise GovernorError(
                "the Oracle governor requires a FrameHint with the upcoming frame's demand"
            )
        table = self.platform.vf_table
        effective_deadline = hint.deadline_s * (1.0 - self.guard_band)
        return table.lowest_index_meeting(hint.max_cycles, effective_deadline)

    def static_schedule(self, application: Application) -> Optional[List[int]]:
        """The Oracle's whole schedule, computed up front from the frame trace.

        Per-frame this is exactly :meth:`decide` on the hint the engine
        would pass: ``lowest_index_meeting`` over the guard-banded deadline,
        so the vectorised fast path chooses bit-identical operating points.
        """
        table = self.platform.vf_table
        num_cores = self.platform.num_cores
        margin = 1.0 - self.guard_band
        max_cycles = [max(frame.cycles_per_core(num_cores)) for frame in application]
        deadlines = [frame.deadline_s * margin for frame in application]
        try:
            return table.lowest_indices_meeting(max_cycles, deadlines)
        except ImportError:  # pragma: no cover - numpy-less installs
            return [
                table.lowest_index_meeting(cycles, deadline)
                for cycles, deadline in zip(max_cycles, deadlines)
            ]

    def describe(self) -> str:
        return "oracle: slowest deadline-meeting operating point with perfect knowledge"
