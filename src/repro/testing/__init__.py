"""Testing infrastructure shipped with the library.

Unlike ``tests/`` (the repository's own suite), the subpackages here are
importable machinery that CI jobs, the nightly fuzzer and downstream
extensions run against the *installed* library: currently
:mod:`repro.testing.parity`, the governor/engine differential replay
harness with its golden decision-trace store and property-based scenario
fuzzer.
"""
