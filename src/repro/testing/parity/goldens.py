"""Golden decision-trace store: record deliberately, check everywhere.

Goldens live under ``tests/goldens`` as one compact JSON file per
(workload, governor) scenario: the scenario spec (so a check rebuilds
exactly what was recorded), the reference decision trace with its
run-length-encoded per-frame OPP-index column, and a format version.

The asymmetry is the point of the design: ``repro-parity check`` runs on
every push and replays every eligible backend against the stored traces,
while ``repro-parity record`` — the only way a golden changes — is a
deliberate, reviewed act.  A governor or engine PR that silently changes a
decision trace fails the check with the first divergent frame; if the
change is intended, the PR re-records and the golden diff shows reviewers
exactly which frames moved.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.spec import ScenarioSpec
from repro.errors import ParityError
from repro.testing.parity.harness import (
    ParityReport,
    run_parity,
    smoke_parity_campaign,
)
from repro.testing.parity.trace import (
    DEFAULT_FLOAT_TOLERANCE,
    REFERENCE_ENGINE,
    DecisionTrace,
    capture_decision_trace,
)

#: Golden-file format version; bump on incompatible trace-encoding changes.
GOLDEN_FORMAT = 1

#: Default golden directory, relative to the repository root.
DEFAULT_GOLDENS_DIR = os.path.join("tests", "goldens")


def golden_path(goldens_dir: str, scenario: ScenarioSpec) -> str:
    """The golden file recording ``scenario``'s reference trace.

    Scenario labels use ``/`` as a grid separator; filenames flatten it to
    ``--`` (``mpeg4/ondemand`` -> ``mpeg4--ondemand.json``).
    """
    slug = scenario.label.replace("/", "--").replace(" ", "_")
    return os.path.join(goldens_dir, f"{slug}.json")


def write_golden(path: str, scenario: ScenarioSpec, trace: DecisionTrace) -> None:
    """Atomically write one golden file (write-temp + ``os.replace``)."""
    document = {
        "format": GOLDEN_FORMAT,
        "scenario": scenario.to_dict(),
        "trace": trace.to_dict(),
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    temp_path = f"{path}.tmp"
    with open(temp_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    os.replace(temp_path, path)


def load_golden(path: str) -> Tuple[ScenarioSpec, DecisionTrace]:
    """Load one golden file back into its (scenario, reference trace) pair."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except FileNotFoundError:
        raise ParityError(
            f"no golden recorded at {path!r} — run `repro-parity record` "
            f"to create it deliberately"
        ) from None
    except json.JSONDecodeError as exc:
        raise ParityError(f"golden file {path!r} is not valid JSON: {exc}") from exc
    if document.get("format") != GOLDEN_FORMAT:
        raise ParityError(
            f"golden file {path!r} has format {document.get('format')!r}, "
            f"this library reads format {GOLDEN_FORMAT} — re-record it"
        )
    scenario = ScenarioSpec.from_dict(document["scenario"])
    trace = DecisionTrace.from_dict(document["trace"])
    if trace.scenario_id != scenario.scenario_id:
        raise ParityError(
            f"golden file {path!r} is internally inconsistent: trace was "
            f"recorded for scenario {trace.scenario_id}, file describes "
            f"{scenario.scenario_id} — re-record it"
        )
    return scenario, trace


def record_goldens(
    scenarios: Optional[Sequence[ScenarioSpec]] = None,
    goldens_dir: str = DEFAULT_GOLDENS_DIR,
    engine: str = REFERENCE_ENGINE,
) -> List[str]:
    """Record (overwrite) the golden traces for ``scenarios``.

    Defaults to the smoke parity matrix — every paper governor on every
    smoke workload — traced on the ``scalar`` reference backend.  Returns
    the written paths.
    """
    if scenarios is None:
        scenarios = smoke_parity_campaign().scenarios
    written: List[str] = []
    for scenario in scenarios:
        trace = capture_decision_trace(scenario, engine=engine)
        path = golden_path(goldens_dir, scenario)
        write_golden(path, scenario, trace)
        written.append(path)
    return written


def check_goldens(
    scenarios: Optional[Sequence[ScenarioSpec]] = None,
    goldens_dir: str = DEFAULT_GOLDENS_DIR,
    engines: Optional[Sequence[str]] = None,
    float_tolerance: float = DEFAULT_FLOAT_TOLERANCE,
) -> ParityReport:
    """Replay every scenario on every eligible backend against its golden.

    The stored golden is the comparison baseline, so the ``scalar``
    reference itself is among the replayed backends: decision drift in the
    *reference* loop is caught exactly like drift in a fast path.  Missing
    goldens raise :class:`~repro.errors.ParityError` listing every absent
    file (the check never silently narrows its matrix).
    """
    if scenarios is None:
        scenarios = smoke_parity_campaign().scenarios
    references: Dict[str, DecisionTrace] = {}
    checked: List[ScenarioSpec] = []
    missing: List[str] = []
    for scenario in scenarios:
        path = golden_path(goldens_dir, scenario)
        if not os.path.exists(path):
            missing.append(path)
            continue
        golden_scenario, trace = load_golden(path)
        if golden_scenario.scenario_id != scenario.scenario_id:
            raise ParityError(
                f"golden file {path!r} records scenario "
                f"{golden_scenario.scenario_id} but the live matrix expects "
                f"{scenario.scenario_id}: the smoke scenario definition "
                f"changed — re-record the goldens"
            )
        references[scenario.label] = trace
        checked.append(scenario)
    if missing:
        raise ParityError(
            "missing golden decision traces (run `repro-parity record`): "
            + ", ".join(missing)
        )
    return run_parity(
        checked,
        engines=engines,
        float_tolerance=float_tolerance,
        reference_traces=references,
    )
