"""Decision-trace capture and differential comparison.

A :class:`DecisionTrace` is everything a governor *decided* and everything
it could have *observed* during one simulation run: the per-frame operating
points, the DVFS transitions the actuator applied, the deadline-miss and
exploration sets, the per-frame timing/energy/temperature columns (the
epoch observations), and the governor's final
:meth:`~repro.rtm.governor.Governor.decision_state` snapshot — which for a
learning governor includes the complete Q-table.

Two engine backends are *parity-equivalent* on a scenario exactly when
their decision traces agree: integer decision data must match exactly,
float columns within a tiny tolerance (the vectorised trace engine is
proven to 1e-9 against the scalar reference; the table-driven engines are
bit-identical).  :func:`diff_traces` implements that comparison and, on a
mismatch, reports the **first divergent frame with both sides' state** —
the actionable artefact a failing parity gate hands to the next engine or
governor PR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.campaign import registry
from repro.campaign.spec import ScenarioSpec
from repro.errors import ParityError
from repro.rtm.governor import Governor
from repro.sim.engine import SimulationEngine
from repro.workload.application import Application

#: The backend every other backend is diffed against.
REFERENCE_ENGINE = "scalar"

#: Relative/absolute tolerance for float columns.  Decision data (operating
#: points, miss sets, transitions, visit counts) is always compared exactly;
#: this only loosens the physics columns, where the vectorised engine's
#: different summation order is proven equivalent to 1e-9.
DEFAULT_FLOAT_TOLERANCE = 1e-9


def _floats_equal(a: float, b: float, tolerance: float) -> bool:
    if a == b:
        return True
    try:
        return abs(a - b) <= tolerance * max(1.0, abs(a), abs(b))
    except TypeError:
        return False


def _rle_encode(values: List[int]) -> List[List[int]]:
    """Run-length encode ``values`` as ``[[value, count], ...]``.

    Governors hold an operating point for many consecutive frames, so the
    per-frame OPP-index column compresses extremely well; this is the
    compact encoding the golden files use.
    """
    runs: List[List[int]] = []
    for value in values:
        if runs and runs[-1][0] == value:
            runs[-1][1] += 1
        else:
            runs.append([int(value), 1])
    return runs


def _rle_decode(runs: List[List[int]]) -> List[int]:
    """Inverse of :func:`_rle_encode`."""
    values: List[int] = []
    for value, count in runs:
        values.extend([int(value)] * int(count))
    return values


@dataclass
class DecisionTrace:
    """The complete decision record of one simulation run.

    Attributes
    ----------
    governor / application / scenario_id / engine:
        Identification: governor and application names, the scenario's
        content hash, and the engine backend that produced the trace.
    num_frames:
        Number of decision epochs.
    operating_index:
        Per-frame operating-point index in force (the chosen OPPs).
    explored_frames / miss_frames:
        Sorted frame indices flagged explorative / missing their deadline.
    transitions:
        The actuator's DVFS transitions in order, as ``(from, to)`` index
        pairs.
    transition_latency_s / transition_energy_j:
        The actuator's cumulative transition costs.
    frame_time_s / energy_j / temperature_c:
        Per-frame observation columns (what the governor was shown).
    total_energy_j / exploration_count / converged_epoch:
        Run-level aggregates.
    final_state:
        The governor's :meth:`~repro.rtm.governor.Governor.decision_state`
        after the run — for learning governors this includes the full
        Q-table values and visit counts.
    """

    governor: str
    application: str
    scenario_id: str
    engine: str
    num_frames: int
    operating_index: List[int]
    explored_frames: List[int]
    miss_frames: List[int]
    transitions: List[Tuple[int, int]]
    transition_latency_s: float
    transition_energy_j: float
    frame_time_s: List[float]
    energy_j: List[float]
    temperature_c: List[float]
    total_energy_j: float
    exploration_count: int
    converged_epoch: Optional[int]
    final_state: Dict[str, Any] = field(default_factory=dict)

    def frame_state(self, frame: int) -> Dict[str, Any]:
        """One frame's decision and observation, for divergence reports."""
        return {
            "engine": self.engine,
            "frame": frame,
            "operating_index": self.operating_index[frame],
            "frame_time_s": self.frame_time_s[frame],
            "energy_j": self.energy_j[frame],
            "temperature_c": self.temperature_c[frame],
            "explored": frame in self.explored_frames,
            "missed_deadline": frame in self.miss_frames,
        }

    # -- JSON (the golden-file encoding) --------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Compact JSON form: the OPP-index column is run-length encoded."""
        return {
            "governor": self.governor,
            "application": self.application,
            "scenario_id": self.scenario_id,
            "engine": self.engine,
            "num_frames": self.num_frames,
            "operating_index_rle": _rle_encode(self.operating_index),
            "explored_frames": list(self.explored_frames),
            "miss_frames": list(self.miss_frames),
            "transitions": [[int(a), int(b)] for a, b in self.transitions],
            "transition_latency_s": self.transition_latency_s,
            "transition_energy_j": self.transition_energy_j,
            "frame_time_s": list(self.frame_time_s),
            "energy_j": list(self.energy_j),
            "temperature_c": list(self.temperature_c),
            "total_energy_j": self.total_energy_j,
            "exploration_count": self.exploration_count,
            "converged_epoch": self.converged_epoch,
            "final_state": self.final_state,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DecisionTrace":
        """Inverse of :meth:`to_dict`."""
        trace = cls(
            governor=data["governor"],
            application=data["application"],
            scenario_id=data["scenario_id"],
            engine=data["engine"],
            num_frames=int(data["num_frames"]),
            operating_index=_rle_decode(data["operating_index_rle"]),
            explored_frames=[int(i) for i in data["explored_frames"]],
            miss_frames=[int(i) for i in data["miss_frames"]],
            transitions=[(int(a), int(b)) for a, b in data["transitions"]],
            transition_latency_s=float(data["transition_latency_s"]),
            transition_energy_j=float(data["transition_energy_j"]),
            frame_time_s=[float(v) for v in data["frame_time_s"]],
            energy_j=[float(v) for v in data["energy_j"]],
            temperature_c=[float(v) for v in data["temperature_c"]],
            total_energy_j=float(data["total_energy_j"]),
            exploration_count=int(data["exploration_count"]),
            converged_epoch=data.get("converged_epoch"),
            final_state=dict(data.get("final_state", {})),
        )
        if len(trace.operating_index) != trace.num_frames:
            raise ParityError(
                f"corrupt decision trace: RLE decodes to "
                f"{len(trace.operating_index)} frames, header says {trace.num_frames}"
            )
        return trace


# ---------------------------------------------------------------------------
# Capture.
# ---------------------------------------------------------------------------
def build_scenario_components(
    scenario: ScenarioSpec,
) -> Tuple[Any, Application, Governor]:
    """Fresh (cluster, application, governor) from the scenario's factories.

    Mirrors the campaign executor's component construction so a trace
    captured here replays exactly what ``run_scenario`` would execute.
    """
    cluster = registry.cluster_factory(scenario.cluster.name)(**scenario.cluster.kwargs)
    app_kwargs = dict(scenario.application.kwargs)
    if scenario.seed is not None:
        app_kwargs["seed"] = scenario.seed
    application = registry.application_factory(scenario.application.name)(**app_kwargs)
    governor = registry.governor_factory(scenario.governor.name)(**scenario.governor.kwargs)
    return cluster, application, governor


def capture_decision_trace(
    scenario: ScenarioSpec, engine: str = REFERENCE_ENGINE
) -> DecisionTrace:
    """Run ``scenario`` on ``engine`` and capture its full decision trace.

    Components are built fresh from the scenario's named factories (no
    state leaks between captures), the run is pinned to the named backend
    through the ordinary registry validation, and the trace is assembled
    from the result columns, the cluster's DVFS actuator and the governor's
    post-run :meth:`~repro.rtm.governor.Governor.decision_state`.
    """
    cluster, application, governor = build_scenario_components(scenario)
    sim = SimulationEngine(cluster, scenario.config, engine=engine)
    result = sim.run(application, governor)

    records = result.records
    operating_index = [int(r.operating_index) for r in records]
    explored_frames = [r.index for r in records if r.explored]
    miss_frames = [r.index for r in records if not r.met_deadline]
    actuator = cluster.dvfs
    transitions = [(t.from_index, t.to_index) for t in actuator.transitions]
    return DecisionTrace(
        governor=scenario.governor.name,
        application=scenario.application.name,
        scenario_id=scenario.scenario_id,
        engine=engine,
        num_frames=len(records),
        operating_index=operating_index,
        explored_frames=explored_frames,
        miss_frames=miss_frames,
        transitions=transitions,
        transition_latency_s=actuator.total_transition_time_s,
        transition_energy_j=actuator.total_transition_energy_j,
        frame_time_s=[r.frame_time_s for r in records],
        energy_j=[r.energy_j for r in records],
        temperature_c=[r.temperature_c for r in records],
        total_energy_j=result.total_energy_j,
        exploration_count=result.exploration_count,
        converged_epoch=result.converged_epoch,
        final_state=governor.decision_state(),
    )


# ---------------------------------------------------------------------------
# Differential comparison.
# ---------------------------------------------------------------------------
@dataclass
class TraceDivergence:
    """The first point at which two decision traces disagree.

    Attributes
    ----------
    field:
        Which trace field diverged (``"operating_index"``,
        ``"miss_frames"``, ``"final_state.qtable_values"``, ...).
    frame:
        First divergent frame index, when the field is per-frame
        (``None`` for run-level fields such as the final governor state).
    reference / candidate:
        The diverging values on each side.
    reference_state / candidate_state:
        Both sides' full frame state at the divergent frame (empty dicts
        for run-level divergences).
    reference_engine / candidate_engine:
        Which backends produced each side.
    """

    field: str
    frame: Optional[int]
    reference: Any
    candidate: Any
    reference_engine: str
    candidate_engine: str
    reference_state: Dict[str, Any] = field(default_factory=dict)
    candidate_state: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """Human-readable one-paragraph report naming the divergent frame."""
        where = (
            f"at frame {self.frame}" if self.frame is not None else "at run level"
        )
        lines = [
            f"decision traces diverge {where} in field {self.field!r}: "
            f"reference engine {self.reference_engine!r} has "
            f"{self.reference!r}, candidate engine {self.candidate_engine!r} "
            f"has {self.candidate!r}"
        ]
        if self.reference_state:
            lines.append(f"  reference frame state: {self.reference_state}")
        if self.candidate_state:
            lines.append(f"  candidate frame state: {self.candidate_state}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON form used by the CI divergence-report artifact."""
        return {
            "field": self.field,
            "frame": self.frame,
            "reference": self.reference,
            "candidate": self.candidate,
            "reference_engine": self.reference_engine,
            "candidate_engine": self.candidate_engine,
            "reference_state": self.reference_state,
            "candidate_state": self.candidate_state,
            "message": self.describe(),
        }


def _first_int_mismatch(a: List[int], b: List[int]) -> Optional[int]:
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return i
    if len(a) != len(b):
        return min(len(a), len(b))
    return None


def _first_float_mismatch(
    a: List[float], b: List[float], tolerance: float
) -> Optional[int]:
    for i, (x, y) in enumerate(zip(a, b)):
        if not _floats_equal(x, y, tolerance):
            return i
    if len(a) != len(b):
        return min(len(a), len(b))
    return None


def _state_equal(a: Any, b: Any, tolerance: float) -> bool:
    """Structural equality with float tolerance, for decision-state dicts."""
    if isinstance(a, Mapping) and isinstance(b, Mapping):
        return set(a) == set(b) and all(
            _state_equal(a[key], b[key], tolerance) for key in a
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            _state_equal(x, y, tolerance) for x, y in zip(a, b)
        )
    if isinstance(a, bool) or isinstance(b, bool):
        return a == b
    if isinstance(a, float) or isinstance(b, float):
        if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
            return False
        return _floats_equal(float(a), float(b), tolerance)
    return a == b


def diff_traces(
    reference: DecisionTrace,
    candidate: DecisionTrace,
    float_tolerance: float = DEFAULT_FLOAT_TOLERANCE,
) -> Optional[TraceDivergence]:
    """First divergence between two decision traces, or ``None`` if they agree.

    Integer decision data (chosen operating points, miss/exploration sets,
    DVFS transitions, exploration counts) is compared exactly; float
    observation columns and the final governor state within
    ``float_tolerance``.  Fields are checked in decision-relevance order so
    the reported divergence is the most actionable one: the chosen OPP
    sequence first, then the sets derived from it, then the physics
    columns, then run-level state.
    """

    def divergence(field_name: str, frame: Optional[int], ref: Any, cand: Any):
        with_frames = frame is not None and frame < min(
            reference.num_frames, candidate.num_frames
        )
        return TraceDivergence(
            field=field_name,
            frame=frame,
            reference=ref,
            candidate=cand,
            reference_engine=reference.engine,
            candidate_engine=candidate.engine,
            reference_state=reference.frame_state(frame) if with_frames else {},
            candidate_state=candidate.frame_state(frame) if with_frames else {},
        )

    if reference.num_frames != candidate.num_frames:
        return divergence(
            "num_frames", None, reference.num_frames, candidate.num_frames
        )

    frame = _first_int_mismatch(reference.operating_index, candidate.operating_index)
    if frame is not None:
        return divergence(
            "operating_index",
            frame,
            reference.operating_index[frame],
            candidate.operating_index[frame],
        )

    for field_name in ("explored_frames", "miss_frames"):
        ref_set = set(getattr(reference, field_name))
        cand_set = set(getattr(candidate, field_name))
        if ref_set != cand_set:
            first = min(ref_set.symmetric_difference(cand_set))
            return divergence(
                field_name, first, first in ref_set, first in cand_set
            )

    for field_name in ("frame_time_s", "energy_j", "temperature_c"):
        frame = _first_float_mismatch(
            getattr(reference, field_name),
            getattr(candidate, field_name),
            float_tolerance,
        )
        if frame is not None:
            return divergence(
                field_name,
                frame,
                getattr(reference, field_name)[frame],
                getattr(candidate, field_name)[frame],
            )

    if reference.transitions != candidate.transitions:
        position = _first_int_mismatch(
            [a * 1000 + b for a, b in reference.transitions],
            [a * 1000 + b for a, b in candidate.transitions],
        )
        ref_at = (
            reference.transitions[position]
            if position is not None and position < len(reference.transitions)
            else None
        )
        cand_at = (
            candidate.transitions[position]
            if position is not None and position < len(candidate.transitions)
            else None
        )
        return divergence("transitions", None, ref_at, cand_at)

    for field_name in ("transition_latency_s", "transition_energy_j", "total_energy_j"):
        if not _floats_equal(
            getattr(reference, field_name),
            getattr(candidate, field_name),
            float_tolerance,
        ):
            return divergence(
                field_name,
                None,
                getattr(reference, field_name),
                getattr(candidate, field_name),
            )

    if reference.exploration_count != candidate.exploration_count:
        return divergence(
            "exploration_count",
            None,
            reference.exploration_count,
            candidate.exploration_count,
        )
    if reference.converged_epoch != candidate.converged_epoch:
        return divergence(
            "converged_epoch",
            None,
            reference.converged_epoch,
            candidate.converged_epoch,
        )

    ref_state, cand_state = reference.final_state, candidate.final_state
    for key in sorted(set(ref_state) | set(cand_state)):
        if not _state_equal(
            ref_state.get(key), cand_state.get(key), float_tolerance
        ):
            return divergence(
                f"final_state.{key}",
                None,
                ref_state.get(key),
                cand_state.get(key),
            )
    return None
