"""Differential replay harness: one scenario, every (governor x backend) pair.

The harness answers the question every engine or governor PR must answer
before it lands: *do all engine backends still hand every governor
bit-identical observations?*  It replays a
:class:`~repro.campaign.spec.ScenarioSpec` through every backend the
registry declares eligible for trace capture
(:func:`repro.sim.backends.trace_capture_backends`), diffs each decision
trace against the ``scalar`` reference, and collects the outcomes into a
:class:`ParityReport` — including the first divergent frame with both
sides' state whenever a pair disagrees.

The module also owns the canonical *smoke parity matrix*: the paper's
governors (:func:`paper_governors`) crossed with the CI smoke workloads
(:func:`smoke_applications`), which is what ``repro-parity check`` runs
against the committed goldens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.campaign.spec import CampaignSpec, FactorySpec, ScenarioSpec
from repro.rtm.governor import PlatformInfo
from repro.sim import backends
from repro.testing.parity.trace import (
    DEFAULT_FLOAT_TOLERANCE,
    REFERENCE_ENGINE,
    DecisionTrace,
    TraceDivergence,
    build_scenario_components,
    capture_decision_trace,
    diff_traces,
)

#: Seed shared with the CI smoke campaign so parity runs and campaign smoke
#: runs exercise the same frame traces.
SMOKE_SEED = 11

#: Frames per smoke workload: long enough for the RL governors to leave the
#: exploration phase, short enough that governors x backends x workloads
#: stays a seconds-scale gate.
SMOKE_FRAMES = 120


def smoke_applications(num_frames: int = SMOKE_FRAMES) -> Dict[str, FactorySpec]:
    """The smoke workloads (label -> application factory spec).

    Shared with ``benchmarks/make_smoke_campaign.py`` so the parity gate and
    the sharded-campaign smoke job cannot drift apart.
    """
    return {
        "mpeg4": FactorySpec.of("mpeg4", num_frames=num_frames),
        "fft": FactorySpec.of("fft", num_frames=num_frames),
    }


def paper_governors() -> Dict[str, FactorySpec]:
    """The paper's comparison governors (label -> governor factory spec).

    The static policies (performance/powersave), the reactive Linux
    baselines (ondemand/conservative), the offline Oracle, the proposed RL
    runtime manager and the Shen-style UPD learner — i.e. every policy the
    paper's tables compare, each of which must see bit-identical
    observations on every engine backend.
    """
    return {
        "performance": FactorySpec.of("performance"),
        "powersave": FactorySpec.of("powersave"),
        "ondemand": FactorySpec.of("ondemand"),
        "conservative": FactorySpec.of("conservative"),
        "oracle": FactorySpec.of("oracle"),
        "proposed": FactorySpec.of("proposed"),
        "shen-upd": FactorySpec.of("shen-upd"),
    }


def smoke_parity_campaign(num_frames: int = SMOKE_FRAMES) -> CampaignSpec:
    """Every paper governor x every smoke workload, as one campaign spec."""
    return CampaignSpec.from_grid(
        "parity-smoke",
        applications=smoke_applications(num_frames),
        governors=paper_governors(),
        seeds=(SMOKE_SEED,),
    )


def eligible_engines(scenario: ScenarioSpec) -> List[str]:
    """Engine backends that can replay ``scenario`` with trace capture.

    Builds the scenario's components once and negotiates against the live
    registry, so the answer always reflects what is actually registered
    (a third-party backend declaring ``supports_trace_capture`` joins the
    parity matrix with no harness edits).
    """
    cluster, application, governor = build_scenario_components(scenario)
    governor.setup(
        PlatformInfo(num_cores=cluster.num_cores, vf_table=cluster.vf_table),
        application.requirement,
    )
    request = backends.EngineRequest(
        cluster=cluster,
        application=application,
        governor=governor,
        config=scenario.config,
    )
    return [entry.name for entry in backends.trace_capture_backends(request)]


@dataclass
class PairResult:
    """Outcome of replaying one scenario on one engine backend."""

    label: str
    governor: str
    application: str
    engine: str
    status: str  # "ok" | "divergent" | "error"
    divergence: Optional[TraceDivergence] = None
    error: str = ""

    def to_dict(self) -> Dict:
        data = {
            "label": self.label,
            "governor": self.governor,
            "application": self.application,
            "engine": self.engine,
            "status": self.status,
        }
        if self.divergence is not None:
            data["divergence"] = self.divergence.to_dict()
        if self.error:
            data["error"] = self.error
        return data


@dataclass
class ParityReport:
    """Aggregated outcome of a differential replay run."""

    reference_engine: str
    results: List[PairResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every replayed pair matched the reference trace."""
        return all(result.status == "ok" for result in self.results)

    @property
    def failures(self) -> List[PairResult]:
        """The divergent or errored pairs."""
        return [result for result in self.results if result.status != "ok"]

    def to_dict(self) -> Dict:
        return {
            "reference_engine": self.reference_engine,
            "ok": self.ok,
            "pairs": len(self.results),
            "results": [result.to_dict() for result in self.results],
        }

    def summary(self) -> str:
        """Multi-line human-readable report (one line per pair, then failures)."""
        lines = []
        for result in self.results:
            lines.append(
                f"{result.status:>9}  {result.label:<28} engine={result.engine}"
            )
        failures = self.failures
        lines.append(
            f"{len(self.results)} (governor x engine) pairs checked against "
            f"{self.reference_engine!r}: "
            f"{len(self.results) - len(failures)} ok, {len(failures)} failing"
        )
        for result in failures:
            if result.divergence is not None:
                lines.append(f"-- {result.label} [{result.engine}]")
                lines.append(result.divergence.describe())
            elif result.error:
                lines.append(f"-- {result.label} [{result.engine}]: {result.error}")
        return "\n".join(lines)


def run_parity(
    scenarios: Sequence[ScenarioSpec],
    engines: Optional[Sequence[str]] = None,
    reference_engine: str = REFERENCE_ENGINE,
    float_tolerance: float = DEFAULT_FLOAT_TOLERANCE,
    reference_traces: Optional[Dict[str, DecisionTrace]] = None,
) -> ParityReport:
    """Replay every scenario through every eligible backend and diff traces.

    Parameters
    ----------
    scenarios:
        The scenarios to replay (typically a parity campaign's scenarios).
    engines:
        Restrict the candidate backends; ``None`` replays every eligible
        trace-capable backend from the live registry.
    reference_engine:
        The backend whose trace is the comparison baseline.
    float_tolerance:
        Tolerance for the float observation columns (decision data is
        always compared exactly).
    reference_traces:
        Optional pre-recorded reference traces keyed by scenario label
        (the golden store passes these); when present the reference is
        *not* re-simulated and every eligible backend — including
        ``reference_engine`` itself — is diffed against the stored trace.

    A backend that raises is reported as an ``"error"`` pair rather than
    aborting the sweep, so one broken backend cannot hide divergences in
    the others.
    """
    report = ParityReport(reference_engine=reference_engine)
    for scenario in scenarios:
        candidates = eligible_engines(scenario)
        if engines is not None:
            candidates = [name for name in candidates if name in set(engines)]
        stored = (reference_traces or {}).get(scenario.label)
        if stored is None:
            reference = capture_decision_trace(scenario, engine=reference_engine)
            candidates = [name for name in candidates if name != reference_engine]
        else:
            reference = stored
        for engine in candidates:
            try:
                candidate = capture_decision_trace(scenario, engine=engine)
            except Exception as exc:  # noqa: BLE001 - reported, not silenced
                report.results.append(
                    PairResult(
                        label=scenario.label,
                        governor=scenario.governor.name,
                        application=scenario.application.name,
                        engine=engine,
                        status="error",
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
                continue
            divergence = diff_traces(
                reference, candidate, float_tolerance=float_tolerance
            )
            report.results.append(
                PairResult(
                    label=scenario.label,
                    governor=scenario.governor.name,
                    application=scenario.application.name,
                    engine=engine,
                    status="ok" if divergence is None else "divergent",
                    divergence=divergence,
                )
            )
    return report
