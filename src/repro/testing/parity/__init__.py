"""Governor/engine parity harness: differential replay, goldens, fuzzing.

The paper's core claim is a *comparison* of DVFS governors on identical
workloads, so the reproduction is only as credible as the guarantee that
every governor sees bit-identical observations on every engine backend.
This package turns that guarantee into executable infrastructure:

:mod:`repro.testing.parity.trace`
    :class:`~repro.testing.parity.trace.DecisionTrace` — the complete
    decision record of one run (per-frame operating points, DVFS
    transitions, miss/exploration sets, timing/energy columns and the
    governor's final :meth:`~repro.rtm.governor.Governor.decision_state`)
    — plus :func:`~repro.testing.parity.trace.diff_traces`, which reports
    the first divergent frame with both sides' state.

:mod:`repro.testing.parity.harness`
    The differential replay harness: one
    :class:`~repro.campaign.spec.ScenarioSpec` through every eligible
    (governor x engine backend) pair from the
    :mod:`repro.sim.backends` registry, diffing every trace against the
    ``scalar`` reference.

:mod:`repro.testing.parity.goldens`
    The golden decision-trace store under ``tests/goldens`` and the
    record/check workflow that makes golden regeneration deliberate.

:mod:`repro.testing.parity.fuzz`
    Property-based scenario generation (seeded stdlib ``random``,
    numpy-optional): random V/F tables, frame traces, thermal modes,
    governor configs and shard splits, asserting cross-backend parity plus
    global invariants on every sample.

The ``repro-parity`` CLI (:mod:`repro.testing.parity.cli`) exposes the
``check`` / ``record`` / ``fuzz`` workflows; CI runs ``check`` on every
push and a 200-seed ``fuzz`` sweep nightly.

Importing this package also registers the fuzzer's scenario factories
(``fuzz-trace``, ``fuzz-cluster``, ``fuzz-ondemand``, ``fuzz-conservative``)
with the campaign registries, so fuzzed specs resolve wherever the package
is imported.
"""

from repro.testing.parity.fuzz import (
    FuzzFailure,
    FuzzReport,
    fuzz_seed,
    generate_scenario,
    minimize_scenario,
    run_fuzz,
)
from repro.testing.parity.goldens import (
    GOLDEN_FORMAT,
    check_goldens,
    golden_path,
    load_golden,
    record_goldens,
    write_golden,
)
from repro.testing.parity.harness import (
    PairResult,
    ParityReport,
    eligible_engines,
    paper_governors,
    run_parity,
    smoke_applications,
    smoke_parity_campaign,
)
from repro.testing.parity.trace import (
    REFERENCE_ENGINE,
    DecisionTrace,
    TraceDivergence,
    capture_decision_trace,
    diff_traces,
)

__all__ = [
    "DecisionTrace",
    "FuzzFailure",
    "FuzzReport",
    "GOLDEN_FORMAT",
    "PairResult",
    "ParityReport",
    "REFERENCE_ENGINE",
    "TraceDivergence",
    "capture_decision_trace",
    "check_goldens",
    "diff_traces",
    "eligible_engines",
    "fuzz_seed",
    "generate_scenario",
    "golden_path",
    "load_golden",
    "minimize_scenario",
    "paper_governors",
    "record_goldens",
    "run_fuzz",
    "run_parity",
    "smoke_applications",
    "smoke_parity_campaign",
    "write_golden",
]
