"""Property-based scenario fuzzing for the parity harness.

Hand-written parity suites only cover the scenarios somebody thought of.
This module samples the scenario space itself — random V/F tables, random
frame traces, thermal modes, governor configurations and shard splits —
from a seeded stdlib :mod:`random` generator (numpy-optional, mirroring
:mod:`repro._compat`: without numpy only the scalar reference is eligible
and the run still checks every other property), and asserts on every
sample:

* **spec round-trip** — the fuzzed :class:`~repro.campaign.spec.ScenarioSpec`
  survives JSON serialisation unchanged (it is pure data);
* **physical invariants** — per-frame energy is non-negative, every chosen
  operating point lies inside the sampled V/F table, frame times are
  positive;
* **cross-backend parity** — every eligible engine backend reproduces the
  reference decision trace (:func:`repro.testing.parity.harness.run_parity`);
* **shard/merge identity** — a small campaign built around the scenario,
  run as shards and merged, equals the unsharded run byte-for-byte.

Every failure is reproducible from its integer seed alone
(``repro-parity fuzz --seed N``), and :func:`minimize_scenario` greedily
shrinks a failing scenario (fewer frames, fewer operating points, thermal
off, fewer cores) while it still fails, so the artefact CI uploads is the
smallest known reproducer, not the random original.

Importing this module registers the fuzz factories (``fuzz-trace``,
``fuzz-cluster``, ``fuzz-ondemand``, ``fuzz-conservative``) with the
campaign registries; the specs the fuzzer emits are ordinary campaign
data and resolve wherever :mod:`repro.testing.parity` is imported.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.campaign.executor import CampaignExecutor
from repro.campaign.registry import (
    register_application,
    register_cluster,
    register_governor,
)
from repro.campaign.results import CampaignResult
from repro.campaign.spec import CampaignSpec, FactorySpec, ScenarioSpec
from repro.governors.conservative import ConservativeGovernor, ConservativeParameters
from repro.governors.ondemand import OndemandGovernor, OndemandParameters
from repro.platform.cluster import Cluster
from repro.platform.core import Core
from repro.platform.odroid_xu3 import A15_POWER_PARAMETERS
from repro.platform.power import PowerModel
from repro.platform.thermal import ThermalModel, ThermalParameters
from repro.platform.vf_table import make_linear_vf_table
from repro.testing.parity.harness import run_parity
from repro.testing.parity.trace import (
    DEFAULT_FLOAT_TOLERANCE,
    DecisionTrace,
    capture_decision_trace,
)
from repro.workload.generators import WorkloadGenerator
from repro.workload.threads import ImbalancedSplit


# ---------------------------------------------------------------------------
# Fuzz factories: the random components, as ordinary registry citizens.
# ---------------------------------------------------------------------------
class _FuzzWorkload(WorkloadGenerator):
    """A seeded random frame trace: jittered base demand with load spikes."""

    def __init__(
        self,
        base_cycles: float,
        jitter: float,
        spike_probability: float,
        spike_magnitude: float,
        frames_per_second: float,
        num_threads: int,
        seed: int,
    ) -> None:
        super().__init__(
            name="fuzz-trace",
            frames_per_second=frames_per_second,
            num_threads=num_threads,
            split_model=ImbalancedSplit(0.2),
            seed=seed,
        )
        self.base_cycles = base_cycles
        self.jitter = jitter
        self.spike_probability = spike_probability
        self.spike_magnitude = spike_magnitude

    def frame_cycles(self, frame_index: int, rng: random.Random) -> float:
        cycles = self.base_cycles * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))
        if rng.random() < self.spike_probability:
            cycles *= self.spike_magnitude
        return max(cycles, 1.0)


@register_application("fuzz-trace")
def fuzz_trace_application(
    num_frames: int = 60,
    seed: int = 0,
    base_cycles: float = 8e6,
    jitter: float = 0.3,
    spike_probability: float = 0.05,
    spike_magnitude: float = 3.0,
    frames_per_second: float = 30.0,
    num_threads: int = 4,
):
    """A reproducible random application: same params + seed -> same frames."""
    generator = _FuzzWorkload(
        base_cycles=base_cycles,
        jitter=jitter,
        spike_probability=spike_probability,
        spike_magnitude=spike_magnitude,
        frames_per_second=frames_per_second,
        num_threads=num_threads,
        seed=seed,
    )
    return generator.generate(num_frames)


@register_cluster("fuzz-cluster")
def fuzz_cluster(
    num_cores: int = 4,
    opp_count: int = 8,
    f_min_mhz: float = 200.0,
    f_max_mhz: float = 2000.0,
    v_min: float = 0.90,
    v_max: float = 1.35,
    v_exponent: float = 1.5,
    enable_thermal: bool = False,
    throttle_c: float = 95.0,
    record_history: bool = False,
) -> Cluster:
    """A synthetic cluster on a generated V/F table (A15 power constants)."""
    table = make_linear_vf_table(
        f_min_hz=f_min_mhz * 1e6,
        f_max_hz=f_max_mhz * 1e6,
        steps=opp_count,
        v_min=v_min,
        v_max=v_max,
        exponent=v_exponent,
    )
    thermal = ThermalModel(
        parameters=ThermalParameters(
            ambient_c=30.0,
            resistance_c_per_w=7.0,
            capacitance_j_per_c=4.0,
            initial_c=50.0,
            throttle_c=throttle_c,
        ),
        enabled=enable_thermal,
    )
    return Cluster(
        name="fuzz-cluster",
        cores=[Core(core_id=i) for i in range(num_cores)],
        vf_table=table,
        power_model=PowerModel(parameters=A15_POWER_PARAMETERS),
        thermal_model=thermal,
        record_history=record_history,
    )


@register_governor("fuzz-ondemand")
def fuzz_ondemand(up_threshold: float = 0.80, sampling_down_factor: int = 1):
    """Ondemand with its tunables exposed as JSON-scalar spec parameters."""
    return OndemandGovernor(
        OndemandParameters(
            up_threshold=up_threshold, sampling_down_factor=sampling_down_factor
        )
    )


@register_governor("fuzz-conservative")
def fuzz_conservative(
    up_threshold: float = 0.80,
    down_threshold: float = 0.20,
    freq_step_indices: int = 1,
):
    """Conservative with its tunables exposed as JSON-scalar spec parameters."""
    return ConservativeGovernor(
        ConservativeParameters(
            up_threshold=up_threshold,
            down_threshold=down_threshold,
            freq_step_indices=freq_step_indices,
        )
    )


# ---------------------------------------------------------------------------
# Scenario generation.
# ---------------------------------------------------------------------------
def _sample_governor(rng: random.Random) -> FactorySpec:
    kind = rng.choice(
        ["performance", "powersave", "userspace", "oracle",
         "fuzz-ondemand", "fuzz-conservative", "proposed", "proposed-single"]
    )
    if kind == "userspace":
        return FactorySpec.of("userspace", index=rng.randrange(0, 2))
    if kind == "fuzz-ondemand":
        return FactorySpec.of(
            "fuzz-ondemand",
            up_threshold=round(rng.uniform(0.5, 0.95), 3),
            sampling_down_factor=rng.randint(1, 3),
        )
    if kind == "fuzz-conservative":
        up = round(rng.uniform(0.5, 0.95), 3)
        return FactorySpec.of(
            "fuzz-conservative",
            up_threshold=up,
            down_threshold=round(rng.uniform(0.05, up - 0.2), 3),
            freq_step_indices=rng.randint(1, 3),
        )
    if kind in ("proposed", "proposed-single"):
        return FactorySpec.of(
            kind,
            seed=rng.randrange(0, 1_000_000),
            ewma_gamma=round(rng.uniform(0.3, 0.9), 3),
            workload_levels=rng.randint(3, 7),
            slack_levels=rng.randint(3, 7),
        )
    return FactorySpec.of(kind)


def generate_scenario(seed: int) -> ScenarioSpec:
    """Deterministically sample one random scenario from ``seed``.

    The scenario is pure campaign data: a ``fuzz-cluster`` with a random
    V/F table and thermal mode, a ``fuzz-trace`` application with a random
    frame trace, and a random governor configuration.  Userspace indices
    are sampled within the table's bounds by construction.
    """
    rng = random.Random(seed)
    opp_count = rng.randint(2, 16)
    f_min = rng.choice([100.0, 200.0, 400.0])
    f_max = f_min + rng.choice([400.0, 800.0, 1600.0])
    cluster = FactorySpec.of(
        "fuzz-cluster",
        num_cores=rng.randint(1, 4),
        opp_count=opp_count,
        f_min_mhz=f_min,
        f_max_mhz=f_max,
        v_min=round(rng.uniform(0.85, 0.95), 4),
        v_max=round(rng.uniform(1.1, 1.4), 4),
        v_exponent=round(rng.uniform(1.0, 2.0), 3),
        enable_thermal=rng.random() < 0.4,
        throttle_c=rng.choice([80.0, 95.0, 110.0]),
    )
    # Scale demand to the table so utilisation spans under- and over-load.
    frame_budget_cycles = (f_max * 1e6) / rng.choice([15.0, 30.0, 60.0])
    application = FactorySpec.of(
        "fuzz-trace",
        num_frames=rng.randint(24, 96),
        base_cycles=round(frame_budget_cycles * rng.uniform(0.2, 1.2), 1),
        jitter=round(rng.uniform(0.0, 0.6), 3),
        spike_probability=round(rng.uniform(0.0, 0.15), 3),
        spike_magnitude=round(rng.uniform(1.5, 4.0), 3),
        frames_per_second=rng.choice([15.0, 30.0, 60.0]),
        num_threads=rng.randint(1, 4),
    )
    governor = _sample_governor(rng)
    if governor.name == "userspace":
        governor = governor.with_params(index=rng.randrange(0, opp_count))
    return ScenarioSpec(
        label=f"fuzz-{seed}",
        application=application,
        governor=governor,
        cluster=cluster,
        seed=rng.randrange(0, 1_000_000),
    )


# ---------------------------------------------------------------------------
# Per-seed property checks.
# ---------------------------------------------------------------------------
def _check_spec_round_trip(scenario: ScenarioSpec) -> List[str]:
    encoded = json.dumps(scenario.to_dict(), sort_keys=True)
    decoded = ScenarioSpec.from_dict(json.loads(encoded))
    if decoded != scenario:
        return ["scenario spec does not survive a JSON round-trip"]
    if decoded.scenario_id != scenario.scenario_id:
        return ["scenario id changes across a JSON round-trip"]
    return []


def _check_invariants(scenario: ScenarioSpec, trace: DecisionTrace) -> List[str]:
    failures: List[str] = []
    opp_count = dict(scenario.cluster.params)["opp_count"]
    for frame, index in enumerate(trace.operating_index):
        if not 0 <= index < opp_count:
            failures.append(
                f"frame {frame}: chosen operating point {index} outside "
                f"table bounds [0, {opp_count})"
            )
            break
    for frame, energy in enumerate(trace.energy_j):
        if energy < 0.0:
            failures.append(f"frame {frame}: negative energy {energy!r}")
            break
    for frame, frame_time in enumerate(trace.frame_time_s):
        if frame_time <= 0.0:
            failures.append(f"frame {frame}: non-positive frame time {frame_time!r}")
            break
    if trace.total_energy_j < 0.0:
        failures.append(f"negative total energy {trace.total_energy_j!r}")
    return failures


def _check_shard_merge(scenario: ScenarioSpec, rng: random.Random) -> List[str]:
    """Sharded + merged campaign == unsharded campaign, byte for byte."""
    seeds = [rng.randrange(0, 1_000_000) for _ in range(3)]
    campaign = CampaignSpec(
        name=f"fuzz-campaign-{scenario.label}",
        scenarios=tuple(
            ScenarioSpec(
                label=f"{scenario.label}/seed={workload_seed}",
                application=scenario.application,
                governor=scenario.governor,
                cluster=scenario.cluster,
                config=scenario.config,
                seed=workload_seed,
            )
            for workload_seed in seeds
        ),
    )
    shard_count = rng.choice([2, 3])
    executor = CampaignExecutor(backend="serial")
    unsharded = executor.run(campaign)
    shards = [
        executor.run(campaign.shard(index, shard_count))
        for index in range(shard_count)
    ]
    merged = CampaignResult.merge(shards).ordered_for(campaign)
    if merged.to_dict() != unsharded.to_dict():
        return [
            f"sharded ({shard_count} shards) + merged campaign differs "
            f"from the unsharded run"
        ]
    return []


@dataclass
class FuzzFailure:
    """One failing fuzz seed, with its (minimized) reproducer."""

    seed: int
    scenario: ScenarioSpec
    failures: List[str]
    minimized: Optional[ScenarioSpec] = None

    def to_dict(self) -> Dict:
        data = {
            "seed": self.seed,
            "failures": self.failures,
            "scenario": self.scenario.to_dict(),
            "reproduce": f"repro-parity fuzz --seed {self.seed}",
        }
        if self.minimized is not None:
            data["minimized_scenario"] = self.minimized.to_dict()
        return data


@dataclass
class FuzzReport:
    """Outcome of a multi-seed fuzz sweep."""

    seeds: List[int] = field(default_factory=list)
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict:
        return {
            "seeds_run": len(self.seeds),
            "first_seed": self.seeds[0] if self.seeds else None,
            "last_seed": self.seeds[-1] if self.seeds else None,
            "ok": self.ok,
            "failures": [failure.to_dict() for failure in self.failures],
        }


def fuzz_seed(
    seed: int, float_tolerance: float = DEFAULT_FLOAT_TOLERANCE
) -> Optional[FuzzFailure]:
    """Run every property check for one seed; ``None`` when all hold."""
    scenario = generate_scenario(seed)
    failures: List[str] = []
    failures += _check_spec_round_trip(scenario)
    try:
        trace = capture_decision_trace(scenario)
    except Exception as exc:  # noqa: BLE001 - a crash is a finding
        failures.append(
            f"reference simulation failed: {type(exc).__name__}: {exc}"
        )
        return FuzzFailure(seed=seed, scenario=scenario, failures=failures)
    failures += _check_invariants(scenario, trace)
    report = run_parity([scenario], float_tolerance=float_tolerance)
    for pair in report.failures:
        if pair.divergence is not None:
            failures.append(
                f"backend {pair.engine!r} diverges from the reference:\n"
                f"{pair.divergence.describe()}"
            )
        else:
            failures.append(f"backend {pair.engine!r} failed: {pair.error}")
    failures += _check_shard_merge(scenario, random.Random(seed ^ 0x5EED))
    if failures:
        return FuzzFailure(seed=seed, scenario=scenario, failures=failures)
    return None


# ---------------------------------------------------------------------------
# Minimization.
# ---------------------------------------------------------------------------
def _shrink_candidates(scenario: ScenarioSpec) -> List[ScenarioSpec]:
    """One-step simplifications of ``scenario``, most aggressive first."""
    app = dict(scenario.application.params)
    cluster = dict(scenario.cluster.params)
    candidates: List[ScenarioSpec] = []

    def with_app(**overrides) -> ScenarioSpec:
        return ScenarioSpec(
            label=scenario.label,
            application=scenario.application.with_params(**overrides),
            governor=scenario.governor,
            cluster=scenario.cluster,
            config=scenario.config,
            seed=scenario.seed,
        )

    def with_cluster(**overrides) -> ScenarioSpec:
        return ScenarioSpec(
            label=scenario.label,
            application=scenario.application,
            governor=scenario.governor,
            cluster=scenario.cluster.with_params(**overrides),
            config=scenario.config,
            seed=scenario.seed,
        )

    if app.get("num_frames", 0) > 4:
        candidates.append(with_app(num_frames=max(4, app["num_frames"] // 2)))
    if cluster.get("enable_thermal", False):
        candidates.append(with_cluster(enable_thermal=False))
    if cluster.get("opp_count", 0) > 2:
        candidates.append(
            with_cluster(opp_count=max(2, cluster["opp_count"] // 2))
        )
    if cluster.get("num_cores", 1) > 1:
        candidates.append(with_cluster(num_cores=1))
    if app.get("spike_probability", 0.0) > 0.0:
        candidates.append(with_app(spike_probability=0.0))
    if app.get("jitter", 0.0) > 0.0:
        candidates.append(with_app(jitter=0.0))
    # Shrinking the table can strand a userspace pin outside it; re-clamp.
    clamped: List[ScenarioSpec] = []
    for candidate in candidates:
        if candidate.governor.name == "userspace":
            bound = dict(candidate.cluster.params)["opp_count"]
            pin = dict(candidate.governor.params).get("index", 0)
            if pin >= bound:
                candidate = ScenarioSpec(
                    label=candidate.label,
                    application=candidate.application,
                    governor=candidate.governor.with_params(index=bound - 1),
                    cluster=candidate.cluster,
                    config=candidate.config,
                    seed=candidate.seed,
                )
        clamped.append(candidate)
    return clamped


def minimize_scenario(
    scenario: ScenarioSpec,
    still_fails: Callable[[ScenarioSpec], bool],
    max_steps: int = 32,
) -> ScenarioSpec:
    """Greedily shrink ``scenario`` while ``still_fails`` keeps returning True.

    Tries the one-step simplifications of :func:`_shrink_candidates` in
    order, restarting from the first that still fails, until no candidate
    fails or ``max_steps`` shrink steps were taken.  The result is the
    smallest reproducer this greedy walk can find — not a global minimum,
    but reliably small enough to read.
    """
    current = scenario
    for _ in range(max_steps):
        for candidate in _shrink_candidates(current):
            try:
                failed = still_fails(candidate)
            except Exception:  # noqa: BLE001 - crashing still counts as failing
                failed = True
            if failed:
                current = candidate
                break
        else:
            break
    return current


def _scenario_failures(
    scenario: ScenarioSpec, float_tolerance: float
) -> List[str]:
    """The non-shard property checks, for minimization re-runs."""
    failures = list(_check_spec_round_trip(scenario))
    try:
        trace = capture_decision_trace(scenario)
    except Exception as exc:  # noqa: BLE001
        return failures + [
            f"reference simulation failed: {type(exc).__name__}: {exc}"
        ]
    failures += _check_invariants(scenario, trace)
    report = run_parity([scenario], float_tolerance=float_tolerance)
    failures += [
        f"backend {pair.engine!r} failed" for pair in report.failures
    ]
    return failures


def run_fuzz(
    seeds: Iterable[int],
    float_tolerance: float = DEFAULT_FLOAT_TOLERANCE,
    minimize: bool = True,
    progress: Optional[Callable[[int, Optional[FuzzFailure]], None]] = None,
) -> FuzzReport:
    """Fuzz every seed in ``seeds``; minimize and collect the failures."""
    report = FuzzReport()
    for seed in seeds:
        failure = fuzz_seed(seed, float_tolerance=float_tolerance)
        report.seeds.append(seed)
        if failure is not None and minimize:
            failure.minimized = minimize_scenario(
                failure.scenario,
                lambda candidate: bool(
                    _scenario_failures(candidate, float_tolerance)
                ),
            )
        if failure is not None:
            report.failures.append(failure)
        if progress is not None:
            progress(seed, failure)
    return report
