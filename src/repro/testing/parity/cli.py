"""``repro-parity`` — the governor/engine parity gate from the shell.

Usage::

    repro-parity check [--goldens-dir tests/goldens] [--report report.json]
    repro-parity record [--goldens-dir tests/goldens]
    repro-parity fuzz --seeds 200 [--start 0] [--artifacts DIR]
    repro-parity fuzz --seed 41  # reproduce one nightly failure locally

``check`` replays every paper governor on every smoke workload through
every eligible engine backend and diffs the decision traces against the
committed goldens; on divergence it prints the first divergent frame with
both sides' state and (with ``--report``) writes the full divergence
report as JSON for CI to upload.  ``record`` deliberately re-records the
goldens after an intended decision-trace change.  ``fuzz`` runs the
property-based scenario sweep; failures are minimized and written (with
``--artifacts``) as one JSON reproducer per failing seed, each naming the
exact ``repro-parity fuzz --seed N`` command that replays it.

Exit codes: 0 all checks passed, 1 divergence/property failure,
2 usage error (e.g. missing goldens).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.errors import ParityError, ReproError
from repro.testing.parity.fuzz import run_fuzz
from repro.testing.parity.goldens import (
    DEFAULT_GOLDENS_DIR,
    check_goldens,
    record_goldens,
)
from repro.testing.parity.trace import DEFAULT_FLOAT_TOLERANCE

EXIT_OK = 0
EXIT_FAILURES = 1
EXIT_USAGE = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-parity",
        description="Differential governor/engine parity harness.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser(
        "check", help="replay all backends against the committed goldens"
    )
    check.add_argument(
        "--goldens-dir",
        default=DEFAULT_GOLDENS_DIR,
        help=f"golden trace directory (default: {DEFAULT_GOLDENS_DIR})",
    )
    check.add_argument(
        "--engine",
        action="append",
        dest="engines",
        metavar="NAME",
        help="restrict to this backend (repeatable; default: all eligible)",
    )
    check.add_argument(
        "--report",
        metavar="PATH",
        help="write the full parity report (incl. divergences) as JSON",
    )
    check.add_argument(
        "--float-tolerance",
        type=float,
        default=DEFAULT_FLOAT_TOLERANCE,
        help="rel/abs tolerance for float observation columns",
    )

    record = sub.add_parser(
        "record", help="(re-)record the golden decision traces"
    )
    record.add_argument(
        "--goldens-dir",
        default=DEFAULT_GOLDENS_DIR,
        help=f"golden trace directory (default: {DEFAULT_GOLDENS_DIR})",
    )

    fuzz = sub.add_parser(
        "fuzz", help="property-based random-scenario parity sweep"
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        help="fuzz exactly this seed (reproduce a reported failure)",
    )
    fuzz.add_argument(
        "--seeds",
        type=int,
        default=25,
        help="number of consecutive seeds to fuzz (default: 25)",
    )
    fuzz.add_argument(
        "--start",
        type=int,
        default=0,
        help="first seed of the sweep (default: 0)",
    )
    fuzz.add_argument(
        "--artifacts",
        metavar="DIR",
        help="write one JSON reproducer per failing seed into DIR",
    )
    fuzz.add_argument(
        "--no-minimize",
        action="store_true",
        help="skip shrinking failing scenarios (faster, larger reproducers)",
    )
    fuzz.add_argument(
        "--float-tolerance",
        type=float,
        default=DEFAULT_FLOAT_TOLERANCE,
        help="rel/abs tolerance for float observation columns",
    )
    return parser


def _write_json(path: str, document: dict) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")


def _cmd_check(args: argparse.Namespace) -> int:
    try:
        report = check_goldens(
            goldens_dir=args.goldens_dir,
            engines=args.engines,
            float_tolerance=args.float_tolerance,
        )
    except ParityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    print(report.summary())
    if args.report:
        _write_json(args.report, report.to_dict())
        print(f"report written to {args.report}")
    return EXIT_OK if report.ok else EXIT_FAILURES


def _cmd_record(args: argparse.Namespace) -> int:
    written = record_goldens(goldens_dir=args.goldens_dir)
    for path in written:
        print(f"recorded {path}")
    print(f"{len(written)} golden decision traces recorded")
    return EXIT_OK


def _cmd_fuzz(args: argparse.Namespace) -> int:
    if args.seed is not None:
        seeds: List[int] = [args.seed]
    else:
        seeds = list(range(args.start, args.start + args.seeds))

    def progress(seed: int, failure) -> None:
        status = "FAIL" if failure is not None else "ok"
        print(f"seed {seed}: {status}", flush=True)

    report = run_fuzz(
        seeds,
        float_tolerance=args.float_tolerance,
        minimize=not args.no_minimize,
        progress=progress,
    )
    print(
        f"{len(report.seeds)} seeds fuzzed, {len(report.failures)} failing"
    )
    for failure in report.failures:
        print(f"-- seed {failure.seed} (repro-parity fuzz --seed {failure.seed})")
        for message in failure.failures:
            print(f"   {message}")
    if args.artifacts:
        os.makedirs(args.artifacts, exist_ok=True)
        _write_json(
            os.path.join(args.artifacts, "fuzz-report.json"), report.to_dict()
        )
        for failure in report.failures:
            _write_json(
                os.path.join(args.artifacts, f"seed-{failure.seed}.json"),
                failure.to_dict(),
            )
        print(f"artifacts written to {args.artifacts}")
    return EXIT_OK if report.ok else EXIT_FAILURES


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "check":
            return _cmd_check(args)
        if args.command == "record":
            return _cmd_record(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
