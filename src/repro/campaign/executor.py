"""Campaign execution: serial and process-pool backends.

The unit of work is :func:`run_scenario` — a module-level function so the
process-pool backend can pickle it.  Each invocation builds its *own*
cluster from the scenario spec: clusters are stateful (meters, PMU, thermal
and DVFS history) and must never be shared between concurrent runs.

Both backends return outcomes in campaign order — the process pool maps
scenarios with order-preserving :meth:`~concurrent.futures.Executor.map` —
and every scenario is fully determined by its spec (workload seed, governor
config seed, cluster seed), so a parallel run is bit-identical to a serial
run of the same campaign.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.campaign import registry
from repro.campaign.results import CampaignResult, ScenarioOutcome
from repro.campaign.spec import CampaignSpec, ScenarioSpec
from repro.sim.engine import SimulationEngine

#: Optional per-scenario completion callback (label, index, total).
ProgressCallback = Callable[[str, int, int], None]


def run_scenario(scenario: ScenarioSpec) -> ScenarioOutcome:
    """Execute one scenario from scratch and return its outcome.

    Builds a fresh cluster, application and governor from the scenario's
    named factories, runs the closed-loop simulation, then applies the
    scenario's probe (if any) while the governor is still live.

    Scenarios whose governor exposes a static schedule (the pinned Linux
    policies and the Oracle) automatically run on the vectorised fast path
    (see :mod:`repro.sim.fastpath`) unless the scenario's config sets
    ``prefer_fast_path=False``; clusters built through the registry default
    to ``record_history=False``, so campaign memory stays bounded however
    many frames a scenario sweeps.
    """
    cluster = registry.cluster_factory(scenario.cluster.name)(**scenario.cluster.kwargs)
    app_kwargs = dict(scenario.application.kwargs)
    if scenario.seed is not None:
        app_kwargs["seed"] = scenario.seed
    application = registry.application_factory(scenario.application.name)(**app_kwargs)
    governor = registry.governor_factory(scenario.governor.name)(**scenario.governor.kwargs)

    engine = SimulationEngine(cluster, scenario.config)
    result = engine.run(application, governor)

    probe_data = None
    if scenario.probe is not None:
        probe = registry.probe_factory(scenario.probe.name)
        probe_data = probe(governor, result, **scenario.probe.kwargs)
    return ScenarioOutcome(scenario=scenario, result=result, probe=probe_data)


class SerialBackend:
    """Runs scenarios one after another in the calling process."""

    name = "serial"

    def map(self, scenarios: Sequence[ScenarioSpec]) -> Iterable[ScenarioOutcome]:
        for scenario in scenarios:
            yield run_scenario(scenario)


class ProcessPoolBackend:
    """Runs scenarios concurrently on a :class:`ProcessPoolExecutor`.

    ``max_workers`` defaults to the machine's CPU count capped by the
    number of scenarios.  Results are yielded in submission order
    regardless of completion order, so output is identical to the serial
    backend.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be a positive integer")
        self.max_workers = max_workers

    def map(self, scenarios: Sequence[ScenarioSpec]) -> Iterable[ScenarioOutcome]:
        if not scenarios:
            return
        workers = self.max_workers or min(len(scenarios), os.cpu_count() or 1)
        workers = min(workers, len(scenarios))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for outcome in pool.map(run_scenario, scenarios):
                yield outcome


#: Backend registry used by :class:`CampaignExecutor` and the CLI.
BACKENDS = ("serial", "process")


def make_backend(backend: str, max_workers: Optional[int] = None):
    """Build a backend by name (``"serial"`` or ``"process"``)."""
    if backend == "serial":
        return SerialBackend()
    if backend == "process":
        return ProcessPoolBackend(max_workers=max_workers)
    raise ConfigurationError(f"unknown campaign backend {backend!r}; expected one of {BACKENDS}")


class CampaignExecutor:
    """Runs campaigns on a pluggable backend with resume support."""

    def __init__(self, backend: str = "serial", max_workers: Optional[int] = None) -> None:
        self.backend = make_backend(backend, max_workers)

    def run(
        self,
        campaign: CampaignSpec,
        resume: Optional[CampaignResult] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> CampaignResult:
        """Execute every scenario of ``campaign`` not already in ``resume``.

        Parameters
        ----------
        campaign:
            The campaign to run.
        resume:
            A previously saved (possibly partial) result store; scenarios
            whose id it already contains are skipped and their stored
            outcomes carried over.
        progress:
            Optional callback invoked after each newly executed scenario
            with ``(label, completed_count, total_pending)``.

        Returns
        -------
        CampaignResult
            A store with one outcome per campaign scenario, in the
            campaign's scenario order.
        """
        store = CampaignResult(campaign_name=campaign.name)
        if resume is not None:
            for outcome in resume:
                store.add(outcome)
        pending: List[ScenarioSpec] = store.pending(campaign)
        for index, outcome in enumerate(self.backend.map(pending)):
            store.add(outcome)
            if progress is not None:
                progress(outcome.label, index + 1, len(pending))
        return store.ordered_for(campaign)


def run_campaign(
    campaign: CampaignSpec,
    backend: str = "serial",
    max_workers: Optional[int] = None,
    resume: Optional[CampaignResult] = None,
) -> CampaignResult:
    """One-call convenience wrapper around :class:`CampaignExecutor`."""
    return CampaignExecutor(backend=backend, max_workers=max_workers).run(
        campaign, resume=resume
    )
