"""Campaign execution: fault-tolerant serial and process-pool backends.

The unit of work is :func:`run_scenario` — a module-level function so the
process-pool backend can pickle it.  Each invocation builds its *own*
cluster from the scenario spec: clusters are stateful (meters, PMU, thermal
and DVFS history) and must never be shared between concurrent runs.

Fault tolerance: backends execute scenarios through
:func:`run_scenario_safely`, which converts an exception on the final
allowed attempt into a ``failed`` :class:`ScenarioOutcome` (error message +
traceback captured) instead of letting it abort the campaign, and honours
the executor's :class:`RetryPolicy` in between.  Backends yield
``(index, outcome)`` pairs in *completion* order so the executor can
checkpoint incrementally — a slow early scenario never blocks persistence
of the work completing behind it — while the externally returned
:class:`CampaignResult` is re-ordered to campaign order, keeping a parallel
run bit-identical to a serial run of the same campaign (every scenario is
fully determined by its spec: workload seed, governor config seed, cluster
seed).
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
import traceback as traceback_module
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ReproError, ScenarioTimeoutError
from repro.campaign import registry
from repro.campaign import store as result_store
from repro.campaign.results import CampaignResult, ScenarioOutcome
from repro.campaign.spec import CampaignSpec, ScenarioSpec
from repro.platform.cluster import ThermalWorkloadTable, WorkloadTable
from repro.rtm.governor import Governor
from repro.sim import backends as engine_backends
from repro.sim import batchpath, jitpath, tablepath, thermalpath
from repro.sim.engine import SimulationEngine

#: Optional per-scenario completion callback (label, index, total).
ProgressCallback = Callable[[str, int, int], None]

#: A backend's stream of results: (index into the submitted sequence, outcome),
#: yielded in completion order.
IndexedOutcomes = Iterable[Tuple[int, ScenarioOutcome]]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times — and on what schedule — a scenario may be (re)run.

    The same policy drives both layers of fault tolerance: the executor's
    in-process retries around :func:`run_scenario_safely`, and the
    distributed service's lease requeue/backoff in
    :mod:`repro.campaign.service`.

    Attributes
    ----------
    max_attempts:
        Total executions allowed per scenario (1 = no retries).  Only the
        final attempt's exception is recorded in a failed outcome.
    backoff_s:
        Base delay in seconds before re-running a failed attempt.  Kept
        under its original name (old specs and call sites load unchanged)
        but now seeds a *capped exponential* schedule: attempt ``k``
        waits ``backoff_s * 2**(k-1)`` seconds, capped at
        :attr:`backoff_cap_s`, then spread by deterministic jitter.  With
        one retry this degenerates to the historical fixed sleep.
    backoff_cap_s:
        Upper bound on the exponential delay (before jitter).
    backoff_jitter:
        Fractional jitter amplitude in ``[0, 1]``: the delay is scaled by
        a factor in ``[1 - jitter, 1 + jitter]`` drawn deterministically
        from ``(backoff_seed, key, attempt)``, so concurrent workers
        de-synchronise their retries without losing reproducibility.
    backoff_seed:
        Seed folded into the jitter hash.
    timeout_s:
        Optional per-attempt wall-clock budget.  A scenario still running
        after this many seconds is recorded as a ``failed`` attempt with
        :class:`~repro.errors.ScenarioTimeoutError` instead of wedging
        its worker forever (``None`` = no limit).
    """

    max_attempts: int = 1
    backoff_s: float = 0.0
    backoff_cap_s: float = 60.0
    backoff_jitter: float = 0.1
    backoff_seed: int = 0
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0:
            raise ConfigurationError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_cap_s < 0:
            raise ConfigurationError(
                f"backoff_cap_s must be >= 0, got {self.backoff_cap_s}"
            )
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ConfigurationError(
                f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError(
                f"timeout_s must be positive or None, got {self.timeout_s}"
            )

    def delay_for(self, attempt: int, key: str = "") -> float:
        """Seconds to wait after failed ``attempt`` (1-based) before retrying.

        Deterministic: the same ``(policy, attempt, key)`` always yields
        the same delay — pass a stable ``key`` (e.g. the scenario id) so
        different scenarios spread out while any one scenario's schedule
        stays reproducible.
        """
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        if self.backoff_s <= 0:
            return 0.0
        delay = min(self.backoff_s * (2.0 ** (attempt - 1)), self.backoff_cap_s)
        if self.backoff_jitter > 0.0:
            token = f"{self.backoff_seed}:{key}:{attempt}".encode("utf-8")
            digest = hashlib.sha256(token).digest()
            unit = int.from_bytes(digest[:8], "big") / 2.0**64  # [0, 1)
            delay *= 1.0 + self.backoff_jitter * (2.0 * unit - 1.0)
        return delay


class CampaignInterrupted(ReproError):
    """A campaign run was interrupted (Ctrl-C) after completing some scenarios.

    Carries the partial result store so callers can persist it; when the
    executor was given a checkpoint path the store has already been saved
    there before this exception was raised.
    """

    def __init__(
        self,
        campaign: CampaignSpec,
        partial: CampaignResult,
        checkpoint_path: Optional[str] = None,
    ) -> None:
        self.campaign = campaign
        self.partial = partial
        self.checkpoint_path = checkpoint_path
        saved = f" (checkpoint saved to {checkpoint_path})" if checkpoint_path else ""
        super().__init__(
            f"campaign {campaign.name!r} interrupted after "
            f"{len(partial)}/{len(campaign)} scenarios{saved}"
        )


#: Per-worker-process cache of precomputed closed-loop physics tables.
#: Keyed by everything the tables depend on — application factory + seed,
#: cluster factory, deadline-padding flag, plus the table kind (isothermal
#: vs thermally-decomposed) — so scenarios of one campaign grid that sweep
#: governors over the same application and cluster (the common Table-I
#: shape) precompute the (frame x operating-point) tables once per worker
#: instead of once per scenario.  Thermal tables additionally carry their
#: lazily-filled per-temperature power slices, which therefore stay warm
#: across the scenarios sharing the entry.  Entries are validated against
#: the live cluster's physics on every reuse (see
#: :meth:`~repro.platform.cluster.WorkloadTable.matches` /
#: :meth:`~repro.platform.cluster.ThermalWorkloadTable.matches`), so a
#: stale or colliding entry degrades to a rebuild, never to wrong numbers.
_TABLE_CACHE: "OrderedDict[Tuple, object]" = OrderedDict()
_TABLE_CACHE_MAX_ENTRIES = 8

#: Per-worker-process table-cache traffic counters.  A hit means a scenario
#: reused tables precomputed by an earlier scenario of the same worker; the
#: hit rate is therefore a direct readout of how well the campaign's
#: scenario grouping (and the batch planner's compatibility keys) line up
#: with the cache key.
_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def table_cache_stats() -> dict:
    """This process's physics-table cache counters (hits/misses/evictions)."""
    return dict(_CACHE_STATS)


def reset_table_cache_stats() -> None:
    """Zero the cache counters (the cache itself is left warm)."""
    for key in _CACHE_STATS:
        _CACHE_STATS[key] = 0


#: Upper bound on the quantised power slices prewarmed per thermal table;
#: trajectories spanning more buckets than this fall back to lazy filling.
_MAX_PREWARMED_SLICES = 64


def _warm_thermal_tables(tables: ThermalWorkloadTable, cluster) -> None:
    """Prefill a fresh shared thermal table's quantised power slices.

    The junction of a campaign run starts at the model's current
    temperature and relaxes towards the steady state of the power actually
    drawn, which is bounded by every core busy at the hottest operating
    point.  Warming the buckets spanning that range through
    :meth:`~repro.platform.cluster.ThermalWorkloadTable.prefill_power_slices`
    moves the leakage ``exp`` evaluations out of every scenario's hot loop;
    buckets outside the estimate (or beyond the prewarm bound) still fill
    lazily, so this is purely a cache warm, never a correctness input.
    """
    bucket = tables.bucket_c
    if bucket <= 0.0 or not cluster.thermal_model.enabled:
        return
    start = cluster.thermal_model.temperature_c
    busy, _ = cluster.power_model.power_table(cluster.vf_table.points, start)
    peak_power = max(busy) * cluster.num_cores + tables.uncore_power_w
    ceiling = cluster.thermal_model.steady_state_c(peak_power)
    low, high = min(start, ceiling), max(start, ceiling)
    count = int((high - low) / bucket) + 1
    if count > _MAX_PREWARMED_SLICES:
        return
    tables.prefill_power_slices(
        cluster, [low + step * bucket for step in range(count)]
    )


def _cached_table_provider(scenario: ScenarioSpec) -> tablepath.TableProvider:
    """A table provider backed by the worker cache.

    Serves whichever table kind the winning backend asks for: thermally
    decomposed tables (:mod:`repro.sim.thermalpath`, prewarmed via
    :func:`_warm_thermal_tables`) when the scenario pins the thermal
    backend or its cluster has the thermal model enabled, isothermal
    tables (:mod:`repro.sim.tablepath`) otherwise.
    """
    base_key = (
        scenario.application,
        scenario.seed,
        scenario.cluster,
        scenario.config.idle_until_deadline,
    )

    def provider(cluster, application, config):
        # The table kind follows the backend that will consume it: a pinned
        # engine decides directly (thermalpath also runs thermally-disabled
        # clusters), anything else by whether the thermal model is live.
        if scenario.engine == "thermalpath":
            thermal = True
        elif scenario.engine == "tablepath":
            thermal = False
        else:
            thermal = cluster.thermal_model.enabled
        if thermal:
            kind, table_type = "thermal", ThermalWorkloadTable
            precompute = thermalpath.precompute_tables
        else:
            kind, table_type = "isothermal", WorkloadTable
            precompute = tablepath.precompute_tables
        key = base_key + (kind,)
        tables = _TABLE_CACHE.get(key)
        if (
            isinstance(tables, table_type)
            and tables.num_frames == application.num_frames
            and tables.matches(cluster, config.idle_until_deadline)
        ):
            _TABLE_CACHE.move_to_end(key)
            _CACHE_STATS["hits"] += 1
            return tables
        _CACHE_STATS["misses"] += 1
        tables = precompute(cluster, application, config)
        if thermal:
            _warm_thermal_tables(tables, cluster)
        _TABLE_CACHE[key] = tables
        if len(_TABLE_CACHE) > _TABLE_CACHE_MAX_ENTRIES:
            _TABLE_CACHE.popitem(last=False)
            _CACHE_STATS["evictions"] += 1
        return tables

    return provider


def run_scenario(scenario: ScenarioSpec) -> ScenarioOutcome:
    """Execute one scenario from scratch and return its (``done``) outcome.

    Builds a fresh cluster, application and governor from the scenario's
    named factories, runs the closed-loop simulation, then applies the
    scenario's probe (if any) while the governor is still live.  Exceptions
    propagate — use :func:`run_scenario_safely` to record them instead.

    Engine selection goes through the backend registry in
    :mod:`repro.sim.backends`: the scenario's ``engine`` field either pins
    a backend by name (validated against its declared capabilities) or —
    the default ``"auto"`` — negotiates the fastest eligible one:
    static-schedule governors take the vectorised trace engine, closed-loop
    governors the (isothermal or thermally-coupled) table-driven engine,
    with precomputed physics shared through a per-worker cache across
    scenarios of the same application + cluster.  The backend that ran is
    recorded on the result as ``engine_used``.  Clusters built through the
    registry default to ``record_history=False``, so campaign memory stays
    bounded however many frames a scenario sweeps.
    """
    cluster = registry.cluster_factory(scenario.cluster.name)(**scenario.cluster.kwargs)
    app_kwargs = dict(scenario.application.kwargs)
    if scenario.seed is not None:
        app_kwargs["seed"] = scenario.seed
    application = registry.application_factory(scenario.application.name)(**app_kwargs)
    governor = registry.governor_factory(scenario.governor.name)(**scenario.governor.kwargs)

    engine = SimulationEngine(
        cluster,
        scenario.config,
        table_provider=_cached_table_provider(scenario),
        engine=scenario.engine,
    )
    result = engine.run(application, governor)

    probe_data = None
    if scenario.probe is not None:
        probe = registry.probe_factory(scenario.probe.name)
        probe_data = probe(governor, result, **scenario.probe.kwargs)
    return ScenarioOutcome(scenario=scenario, result=result, probe=probe_data)


def _run_scenario_with_timeout(
    scenario: ScenarioSpec, timeout_s: float
) -> ScenarioOutcome:
    """Run one scenario on a watchdog thread, bounded to ``timeout_s`` seconds.

    The scenario executes on a daemon thread and the caller waits at most
    ``timeout_s``; on expiry a :class:`~repro.errors.ScenarioTimeoutError`
    is raised (and recorded by :func:`run_scenario_safely` like any other
    attempt failure).  The abandoned thread cannot be killed — it is left
    to finish (or hang) as a daemon and its eventual result is discarded,
    which is the price of never wedging the worker.
    """
    box: dict = {}

    def target() -> None:
        try:
            box["outcome"] = run_scenario(scenario)
        except BaseException as exc:  # noqa: BLE001 — re-raised on the caller
            box["error"] = exc

    thread = threading.Thread(
        target=target, name=f"scenario-{scenario.scenario_id}", daemon=True
    )
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise ScenarioTimeoutError(
            f"scenario {scenario.label!r} still running after timeout_s={timeout_s}"
        )
    if "error" in box:
        raise box["error"]
    return box["outcome"]


def run_scenario_safely(
    scenario: ScenarioSpec,
    max_attempts: int = 1,
    backoff_s: float = 0.0,
    retry: Optional[RetryPolicy] = None,
) -> ScenarioOutcome:
    """Execute one scenario, converting failure into a ``failed`` outcome.

    Runs :func:`run_scenario` up to ``max_attempts`` times.  The first
    successful attempt wins (its outcome is stamped with the attempt
    count); if every attempt raises, the final exception's message and
    traceback are captured in a ``failed`` outcome so the campaign records
    the crash instead of dying from it.  ``KeyboardInterrupt`` (and other
    non-``Exception`` interrupts) still propagate.

    Pass ``retry`` to drive the run from a full :class:`RetryPolicy`
    (capped exponential backoff with deterministic jitter, optional
    per-attempt ``timeout_s`` guard); the positional ``max_attempts`` /
    ``backoff_s`` arguments are kept for existing call sites and are
    ignored when a policy is given.
    """
    policy = retry if retry is not None else RetryPolicy(
        max_attempts=max_attempts, backoff_s=backoff_s
    )
    for attempt in range(1, policy.max_attempts + 1):
        try:
            if policy.timeout_s is not None:
                outcome = _run_scenario_with_timeout(scenario, policy.timeout_s)
            else:
                outcome = run_scenario(scenario)
        except Exception as exc:  # noqa: BLE001 — the whole point is to record it
            if attempt >= policy.max_attempts:
                return ScenarioOutcome.failure(
                    scenario,
                    error=f"{type(exc).__name__}: {exc}",
                    traceback_text=traceback_module.format_exc(),
                    attempts=attempt,
                )
            delay = policy.delay_for(attempt, scenario.scenario_id)
            if delay > 0:
                time.sleep(delay)
        else:
            if attempt > 1:
                outcome = ScenarioOutcome(
                    scenario=outcome.scenario,
                    result=outcome.result,
                    probe=outcome.probe,
                    attempts=attempt,
                )
            return outcome
    raise AssertionError("unreachable")  # pragma: no cover


# ---------------------------------------------------------------------------
# Batch planning: group compatible scenarios for the batched engine.
# ---------------------------------------------------------------------------

#: One unit of backend work: (batched, [(index into the submitted sequence,
#: scenario), ...]).  Singleton units carry batched=False and run through
#: :func:`run_scenario_safely`; batched units through
#: :func:`run_scenario_batch_safely`.
WorkUnit = Tuple[bool, List[Tuple[int, ScenarioSpec]]]

#: Memoised "does this governor factory yield a closed-loop governor"
#: probe, keyed by the (frozen, hashable) governor FactorySpec.
_CLOSED_LOOP_GOVERNORS: dict = {}


def _governor_is_closed_loop(scenario: ScenarioSpec) -> bool:
    """Whether the scenario's governor decides frame by frame.

    Static-schedule governors negotiate the trace-vectorised ``fastpath``
    backend under ``auto`` and gain nothing from scenario batching, so the
    planner leaves them alone.  The probe builds one throwaway governor per
    distinct factory spec and checks whether it overrides
    :meth:`~repro.rtm.governor.Governor.static_schedule`.
    """
    spec = scenario.governor
    cached = _CLOSED_LOOP_GOVERNORS.get(spec)
    if cached is None:
        try:
            governor = registry.governor_factory(spec.name)(**spec.kwargs)
        except Exception:  # noqa: BLE001 - the real run will report it
            cached = False
        else:
            cached = (
                type(governor).static_schedule is Governor.static_schedule
            )
        _CLOSED_LOOP_GOVERNORS[spec] = cached
    return cached


def _batchable(scenario: ScenarioSpec) -> bool:
    """Whether the batch planner may group ``scenario`` into a batched unit.

    ``auto`` and explicit ``batchpath`` pins go to the batched engine;
    explicit ``jitpath`` pins are grouped too (the compiled kernels run
    batches member-by-member — no lock-step needed once the frame loop is
    compiled) but only when the compiled path is actually available, so a
    numba-less worker reports the pin mismatch through engine negotiation
    rather than a mid-batch failure.
    """
    if scenario.engine == engine_backends.JITPATH:
        if not jitpath.available():
            return False
    elif scenario.engine not in ("auto", engine_backends.BATCHPATH):
        return False
    if not scenario.config.prefer_fast_path:
        return False
    return _governor_is_closed_loop(scenario)


def plan_batches(
    scenarios: Sequence[ScenarioSpec], batch_size: int
) -> List[WorkUnit]:
    """Group pending scenarios into batched and singleton work units.

    Scenarios are batch-compatible when they share the application factory
    (plus seed override), the cluster factory and the simulation config —
    the cluster spec fixes the physics *and* the thermal mode, so one
    precomputed table serves the whole group.  Compatible closed-loop
    scenarios are grouped (chunked to ``batch_size``) and dispatched to the
    batched engine; everything else stays a singleton.  Eligible scenarios
    are routed through ``batchpath`` *even as a group of one* so the
    ``engine_used`` stamp — and therefore the serialised outcome — does not
    depend on how the campaign was sharded.

    Units are emitted in first-member campaign order, so serial execution
    (and checkpoint growth) tracks the campaign's scenario order.
    """
    if batch_size < 0:
        raise ConfigurationError(f"batch_size must be >= 0, got {batch_size}")
    if batch_size == 0 or batchpath._np is None:
        return [(False, [(index, s)]) for index, s in enumerate(scenarios)]
    groups: "OrderedDict[Tuple, List[Tuple[int, ScenarioSpec]]]" = OrderedDict()
    units: List[Tuple[int, WorkUnit]] = []
    for index, scenario in enumerate(scenarios):
        if _batchable(scenario):
            key = (
                scenario.application,
                scenario.seed,
                scenario.cluster,
                scenario.config,
                # jitpath-pinned scenarios form their own groups: the unit's
                # dispatch engine is decided by its first member.  Constant
                # False for auto/batchpath scenarios, so pre-existing
                # campaigns group (and checkpoint) exactly as before.
                scenario.engine == engine_backends.JITPATH,
            )
            groups.setdefault(key, []).append((index, scenario))
        else:
            units.append((index, (False, [(index, scenario)])))
    for grouped in groups.values():
        for start in range(0, len(grouped), batch_size):
            chunk = grouped[start : start + batch_size]
            units.append((chunk[0][0], (True, chunk)))
    units.sort(key=lambda entry: entry[0])
    return [unit for _, unit in units]


def run_scenario_batch(scenarios: Sequence[ScenarioSpec]) -> List[ScenarioOutcome]:
    """Execute a planned group of compatible scenarios on the batched engine.

    Builds one shared application and a fresh cluster + governor per
    scenario, steps them simultaneously through
    :func:`repro.sim.batchpath.run_batch` (physics tables served by the
    worker cache), then applies each scenario's probe while its governor is
    still live.  Outcomes come back in scenario order, each stamped with
    ``engine_used="batchpath"``.  Exceptions propagate — use
    :func:`run_scenario_batch_safely` for the per-scenario fallback.
    """
    scenarios = list(scenarios)
    first = scenarios[0]
    app_kwargs = dict(first.application.kwargs)
    if first.seed is not None:
        app_kwargs["seed"] = first.seed
    application = registry.application_factory(first.application.name)(**app_kwargs)

    members = []
    for scenario in scenarios:
        cluster = registry.cluster_factory(scenario.cluster.name)(
            **scenario.cluster.kwargs
        )
        governor = registry.governor_factory(scenario.governor.name)(
            **scenario.governor.kwargs
        )
        members.append((cluster, governor))

    provider = _cached_table_provider(first)
    tables = provider(members[0][0], application, first.config)
    if first.engine == engine_backends.JITPATH:
        engine_used = engine_backends.JITPATH
        results = jitpath.run_batch(
            members,
            application,
            first.config,
            tables=tables,
        )
    else:
        engine_used = engine_backends.BATCHPATH
        results = batchpath.run_batch(
            members,
            application,
            first.config,
            tables=tables,
            scalar_cutoffs=batchpath.DEFAULT_SCALAR_CUTOFFS,
        )

    outcomes = []
    for scenario, result, (cluster, governor) in zip(scenarios, results, members):
        result.engine_used = engine_used
        probe_data = None
        if scenario.probe is not None:
            probe = registry.probe_factory(scenario.probe.name)
            probe_data = probe(governor, result, **scenario.probe.kwargs)
        outcomes.append(
            ScenarioOutcome(scenario=scenario, result=result, probe=probe_data)
        )
    return outcomes


def run_scenario_batch_safely(
    scenarios: Sequence[ScenarioSpec],
    max_attempts: int = 1,
    backoff_s: float = 0.0,
    retry: Optional[RetryPolicy] = None,
) -> List[ScenarioOutcome]:
    """Batch execution with per-scenario degradation on failure.

    Any exception from the batched run — one bad scenario, an incompatible
    member the planner mis-grouped, a backend bug — falls back to running
    every member through :func:`run_scenario_safely`, which applies the
    retry policy and records genuinely failing scenarios as ``failed``
    outcomes without poisoning their batch-mates.
    """
    try:
        return run_scenario_batch(scenarios)
    except Exception:  # noqa: BLE001 - degrade to the per-scenario path
        return [
            run_scenario_safely(scenario, max_attempts, backoff_s, retry=retry)
            for scenario in scenarios
        ]


class SerialBackend:
    """Runs scenarios one after another in the calling process."""

    name = "serial"

    def run_unordered(
        self, scenarios: Sequence[ScenarioSpec], retry: RetryPolicy
    ) -> Iterator[Tuple[int, ScenarioOutcome]]:
        units = [(False, [(index, s)]) for index, s in enumerate(scenarios)]
        return self.run_units(units, retry)

    def run_units(
        self, units: Sequence[WorkUnit], retry: RetryPolicy
    ) -> Iterator[Tuple[int, ScenarioOutcome]]:
        for batched, entries in units:
            if batched:
                outcomes = run_scenario_batch_safely(
                    [scenario for _, scenario in entries], retry=retry
                )
                for (index, _), outcome in zip(entries, outcomes):
                    yield index, outcome
            else:
                index, scenario = entries[0]
                yield index, run_scenario_safely(scenario, retry=retry)


class ProcessPoolBackend:
    """Runs scenarios concurrently on a :class:`ProcessPoolExecutor`.

    ``max_workers`` defaults to the machine's CPU count capped by the
    number of scenarios.  Outcomes are yielded in *completion* order (the
    executor re-orders them), so incremental checkpoints are never held up
    by a slow early scenario; retries happen inside the worker process.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be a positive integer")
        self.max_workers = max_workers

    def run_unordered(
        self, scenarios: Sequence[ScenarioSpec], retry: RetryPolicy
    ) -> Iterator[Tuple[int, ScenarioOutcome]]:
        units = [(False, [(index, s)]) for index, s in enumerate(scenarios)]
        return self.run_units(units, retry)

    def run_units(
        self, units: Sequence[WorkUnit], retry: RetryPolicy
    ) -> Iterator[Tuple[int, ScenarioOutcome]]:
        if not units:
            return
        workers = self.max_workers or min(len(units), os.cpu_count() or 1)
        workers = min(workers, len(units))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {}
            for batched, entries in units:
                if batched:
                    future = pool.submit(
                        run_scenario_batch_safely,
                        [scenario for _, scenario in entries],
                        retry=retry,
                    )
                else:
                    future = pool.submit(
                        run_scenario_safely, entries[0][1], retry=retry
                    )
                futures[future] = (batched, [index for index, _ in entries])
            try:
                remaining = set(futures)
                while remaining:
                    completed, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for future in completed:
                        batched, indices = futures[future]
                        if batched:
                            for index, outcome in zip(indices, future.result()):
                                yield index, outcome
                        else:
                            yield indices[0], future.result()
            except BaseException:
                # Run abandoned — GeneratorExit from the consumer, Ctrl-C
                # landing in wait(), or a broken pool: drop the queued
                # scenarios instead of draining them during pool shutdown.
                pool.shutdown(wait=False, cancel_futures=True)
                raise


#: Backend registry used by :class:`CampaignExecutor` and the CLI.
BACKENDS = ("serial", "process")


def make_backend(backend: str, max_workers: Optional[int] = None):
    """Build a backend by name (``"serial"`` or ``"process"``)."""
    if backend == "serial":
        return SerialBackend()
    if backend == "process":
        return ProcessPoolBackend(max_workers=max_workers)
    raise ConfigurationError(f"unknown campaign backend {backend!r}; expected one of {BACKENDS}")


class CampaignExecutor:
    """Runs campaigns on a pluggable backend with resume and checkpointing."""

    def __init__(
        self,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        batch_size: int = 0,
        store: str = result_store.STORE_AUTO,
    ) -> None:
        if batch_size < 0:
            raise ConfigurationError(f"batch_size must be >= 0, got {batch_size}")
        self.backend = make_backend(backend, max_workers)
        self.retry = retry or RetryPolicy()
        self.batch_size = batch_size
        result_store.negotiate_store(store)  # reject unknown names up front
        self.store_format = store

    def run(
        self,
        campaign: CampaignSpec,
        resume: Optional[CampaignResult] = None,
        progress: Optional[ProgressCallback] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_every: int = 10,
    ) -> CampaignResult:
        """Execute every scenario of ``campaign`` still pending in ``resume``.

        Parameters
        ----------
        campaign:
            The campaign to run.
        resume:
            A previously saved (possibly partial) result store; scenarios
            it already records as ``done`` are skipped and their stored
            outcomes carried over, while ``failed`` ones are re-run.
        progress:
            Optional callback invoked after each newly executed scenario
            with ``(label, completed_count, total_pending)``.
        checkpoint_path:
            When given, completed work is persisted to this path as the
            campaign runs.  With the legacy ``json`` store the whole file
            is atomically rewritten every ``checkpoint_every``
            completions; with the columnar store each outcome is
            *appended* as it completes (O(1) per scenario, never
            O(campaign)) and ``checkpoint_every`` only sets the flush
            cadence.  Either way the file is written once more on
            ``KeyboardInterrupt`` (which is re-raised as
            :class:`CampaignInterrupted` carrying the partial store), and
            a final time with the completed, campaign-ordered store.
        checkpoint_every:
            Completions between checkpoint writes/flushes (>= 1).

        Returns
        -------
        CampaignResult
            A store with one outcome per campaign scenario, in the
            campaign's scenario order — bit-identical across backends and
            across interrupted-then-resumed runs.
        """
        if checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        store = CampaignResult(campaign_name=campaign.name)
        if resume is not None:
            for outcome in resume:
                store.add(outcome)
        pending: List[ScenarioSpec] = store.pending(campaign)
        units = plan_batches(pending, self.batch_size)
        resolved = result_store.negotiate_store(self.store_format)
        writer: Optional[result_store.StoreWriter] = None
        if checkpoint_path is not None and resolved != result_store.STORE_JSON:
            # Seed the columnar checkpoint once (atomic rewrite of the
            # resume state), then append each completion in O(1).
            result_store.save_store(store, checkpoint_path, resolved)
            writer = result_store.StoreWriter.open_append(checkpoint_path)
        completed = 0
        try:
            for _, outcome in self.backend.run_units(units, self.retry):
                store.add(outcome)
                if writer is not None:
                    writer.append(outcome)
                completed += 1
                if progress is not None:
                    progress(outcome.label, completed, len(pending))
                if checkpoint_path is not None and completed % checkpoint_every == 0:
                    if writer is not None:
                        writer.flush()
                    else:
                        store.save(checkpoint_path)
        except BaseException as exc:
            # Emergency checkpoint: whatever killed the run — Ctrl-C, a
            # broken worker pool, a crashing progress callback — the work
            # completed since the last periodic write must survive.  The
            # columnar writer already holds every completion; closing it
            # flushes the tail appends to disk.
            if checkpoint_path is not None:
                if writer is not None:
                    writer.close()
                    writer = None
                else:
                    store.save(checkpoint_path)
            if isinstance(exc, KeyboardInterrupt):
                raise CampaignInterrupted(campaign, store, checkpoint_path) from exc
            raise
        if writer is not None:
            writer.close()
        ordered = store.ordered_for(campaign)
        if checkpoint_path is not None:
            # Final atomic rewrite in campaign order (both formats), so
            # the surviving checkpoint equals --output bit for bit.
            ordered.save(checkpoint_path, store=self.store_format)
        return ordered


def run_campaign(
    campaign: CampaignSpec,
    backend: str = "serial",
    max_workers: Optional[int] = None,
    resume: Optional[CampaignResult] = None,
    retry: Optional[RetryPolicy] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 10,
    batch_size: int = 0,
    store: str = result_store.STORE_AUTO,
) -> CampaignResult:
    """One-call convenience wrapper around :class:`CampaignExecutor`."""
    return CampaignExecutor(
        backend=backend,
        max_workers=max_workers,
        retry=retry,
        batch_size=batch_size,
        store=store,
    ).run(
        campaign,
        resume=resume,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
    )
