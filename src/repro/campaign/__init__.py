"""Campaign subsystem: declarative scenario specs and batch execution.

The paper's evaluation is a grid of application × governor × platform
runs.  This subpackage turns every such sweep into data plus one executor
call:

* :mod:`repro.campaign.spec` — hashable, JSON-serialisable
  :class:`ScenarioSpec` / :class:`CampaignSpec` with grid expansion;
* :mod:`repro.campaign.registry` — the name -> factory registries that
  resolve spec component names (extensible via ``register_*``);
* :mod:`repro.campaign.executor` — :class:`CampaignExecutor` with serial
  and process-pool backends, deterministic result ordering, per-scenario
  retries (:class:`RetryPolicy`), incremental atomic checkpointing, and
  resume that skips ``done`` scenarios while re-running ``failed`` ones;
* :mod:`repro.campaign.results` — the :class:`CampaignResult` store with
  per-scenario status (``done``/``failed`` + captured traceback), JSON
  round-trip persistence and shard-store :meth:`~CampaignResult.merge`,
  feeding the existing :func:`~repro.sim.comparison.compare_to_oracle`
  analysis unchanged;
* :mod:`repro.campaign.service` — the fault-tolerant distributed layer:
  a lease/heartbeat :class:`Coordinator` with journalled crash-resume,
  the JSON-over-HTTP transport, pull-based :class:`WorkerSite`\\ s with
  graceful degradation, and :func:`run_campaign_service`;
* :mod:`repro.campaign.faults` — the deterministic fault-injection
  harness proving any fault schedule yields a result bit-identical to an
  unsharded serial run;
* :mod:`repro.campaign.cli` — the ``repro-campaign`` console entry point
  (run, ``--shard I/N``, and the ``merge`` / ``serve`` / ``work``
  subcommands).

Quickstart
----------
>>> from repro.campaign import CampaignSpec, FactorySpec, run_campaign
>>> campaign = CampaignSpec.from_grid(
...     "demo",
...     applications=[FactorySpec.of("mpeg4", num_frames=120)],
...     governors=[FactorySpec.of("ondemand"), FactorySpec.of("oracle")],
... )
>>> store = run_campaign(campaign, backend="serial")
>>> sorted(store.results())
['ondemand', 'oracle']
"""

from repro.campaign.spec import (
    CampaignSpec,
    DEFAULT_CLUSTER,
    FactorySpec,
    ScenarioSpec,
)
from repro.campaign.registry import (
    application_factory,
    cluster_factory,
    governor_factory,
    probe_factory,
    register_application,
    register_cluster,
    register_governor,
    register_probe,
    registered_names,
)
from repro.campaign.results import (
    STATUS_DONE,
    STATUS_FAILED,
    CampaignResult,
    ScenarioOutcome,
    quarantine_corrupt_file,
)
from repro.campaign.executor import (
    BACKENDS,
    CampaignExecutor,
    CampaignInterrupted,
    ProcessPoolBackend,
    RetryPolicy,
    SerialBackend,
    run_campaign,
    run_scenario,
    run_scenario_safely,
)
from repro.campaign.service import (
    Coordinator,
    CoordinatorServer,
    HTTPClient,
    LocalClient,
    ServiceEvent,
    WorkerSite,
    WorkerStats,
    run_campaign_service,
)
from repro.campaign.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultRunReport,
    FaultSchedule,
    run_with_faults,
)

__all__ = [
    "CampaignSpec",
    "ScenarioSpec",
    "FactorySpec",
    "DEFAULT_CLUSTER",
    "CampaignResult",
    "ScenarioOutcome",
    "STATUS_DONE",
    "STATUS_FAILED",
    "CampaignExecutor",
    "CampaignInterrupted",
    "RetryPolicy",
    "SerialBackend",
    "ProcessPoolBackend",
    "BACKENDS",
    "run_campaign",
    "run_scenario",
    "run_scenario_safely",
    "quarantine_corrupt_file",
    "Coordinator",
    "CoordinatorServer",
    "HTTPClient",
    "LocalClient",
    "ServiceEvent",
    "WorkerSite",
    "WorkerStats",
    "run_campaign_service",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultRunReport",
    "FaultSchedule",
    "run_with_faults",
    "register_application",
    "register_governor",
    "register_cluster",
    "register_probe",
    "application_factory",
    "governor_factory",
    "cluster_factory",
    "probe_factory",
    "registered_names",
]
