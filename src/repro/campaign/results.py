"""Campaign result store: ordered scenario outcomes with persistence.

A :class:`CampaignResult` aggregates one :class:`ScenarioOutcome` per
completed scenario, keyed by the scenario's content hash.  It round-trips
through JSON so long campaigns can checkpoint to disk and *resume*: the
executor skips any scenario whose id is already present in the store it
was handed.

The store feeds the existing analysis layer unchanged —
:meth:`CampaignResult.results` returns the plain ``label ->
SimulationResult`` mapping that :func:`repro.sim.comparison.compare_to_oracle`
and the Table-I normalisation consume.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.errors import SimulationError
from repro.campaign.spec import CampaignSpec, ScenarioSpec
from repro.sim.results import SimulationResult


@dataclass(frozen=True)
class ScenarioOutcome:
    """One completed scenario: its spec, its simulation result, its probe data."""

    scenario: ScenarioSpec
    result: SimulationResult
    probe: Optional[Dict[str, Any]] = None

    @property
    def scenario_id(self) -> str:
        """Content hash of the scenario that produced this outcome."""
        return self.scenario.scenario_id

    @property
    def label(self) -> str:
        """The scenario's campaign label."""
        return self.scenario.label

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "scenario": self.scenario.to_dict(),
            "result": self.result.to_dict(),
        }
        if self.probe is not None:
            data["probe"] = self.probe
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioOutcome":
        return cls(
            scenario=ScenarioSpec.from_dict(data["scenario"]),
            result=SimulationResult.from_dict(data["result"]),
            probe=data.get("probe"),
        )


@dataclass
class CampaignResult:
    """Ordered store of scenario outcomes for one campaign."""

    campaign_name: str
    outcomes: Dict[str, ScenarioOutcome] = field(default_factory=dict)

    # -- building -----------------------------------------------------------------
    def add(self, outcome: ScenarioOutcome) -> None:
        """Record a completed scenario (replacing any previous run of it)."""
        self.outcomes[outcome.scenario_id] = outcome

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self) -> Iterator[ScenarioOutcome]:
        return iter(self.outcomes.values())

    def __contains__(self, scenario: ScenarioSpec) -> bool:
        return scenario.scenario_id in self.outcomes

    # -- lookup -------------------------------------------------------------------
    def outcome(self, label: str) -> ScenarioOutcome:
        """The outcome of the scenario labelled ``label``."""
        for candidate in self.outcomes.values():
            if candidate.label == label:
                return candidate
        raise KeyError(f"campaign {self.campaign_name!r} has no outcome labelled {label!r}")

    def result(self, label: str) -> SimulationResult:
        """The simulation result of the scenario labelled ``label``."""
        return self.outcome(label).result

    def results(self) -> Dict[str, SimulationResult]:
        """``label -> SimulationResult`` in campaign order.

        This is the mapping the pre-campaign analysis helpers
        (:func:`~repro.sim.comparison.compare_to_oracle`,
        :func:`~repro.sim.comparison.pairwise_energy_saving`) consume.
        """
        return {outcome.label: outcome.result for outcome in self.outcomes.values()}

    def select(
        self,
        application_key: Optional[str] = None,
        governor_key: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> List[ScenarioOutcome]:
        """Outcomes matching the given grid coordinates (``None`` = any)."""
        matches = []
        for outcome in self.outcomes.values():
            spec = outcome.scenario
            if application_key is not None and spec.application_key != application_key:
                continue
            if governor_key is not None and spec.governor_key != governor_key:
                continue
            if seed is not None and spec.seed != seed:
                continue
            matches.append(outcome)
        return matches

    # -- resume support -----------------------------------------------------------
    def pending(self, campaign: CampaignSpec) -> List[ScenarioSpec]:
        """Scenarios of ``campaign`` that have no stored outcome yet."""
        return [scenario for scenario in campaign.scenarios if scenario not in self]

    def ordered_for(self, campaign: CampaignSpec) -> "CampaignResult":
        """A copy whose outcomes follow ``campaign``'s scenario order.

        Raises
        ------
        SimulationError
            If any scenario of the campaign has no stored outcome.
        """
        ordered = CampaignResult(campaign_name=campaign.name)
        for scenario in campaign.scenarios:
            outcome = self.outcomes.get(scenario.scenario_id)
            if outcome is None:
                raise SimulationError(
                    f"campaign {campaign.name!r} has no outcome for scenario "
                    f"{scenario.label!r} (id {scenario.scenario_id})"
                )
            ordered.add(outcome)
        return ordered

    # -- persistence --------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "campaign_name": self.campaign_name,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes.values()],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignResult":
        store = cls(campaign_name=data["campaign_name"])
        for item in data.get("outcomes", []):
            store.add(ScenarioOutcome.from_dict(item))
        return store

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CampaignResult":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "CampaignResult":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def __repr__(self) -> str:
        return f"CampaignResult({self.campaign_name!r}, {len(self)} outcomes)"
