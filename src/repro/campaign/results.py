"""Campaign result store: ordered scenario outcomes with persistence.

A :class:`CampaignResult` aggregates one :class:`ScenarioOutcome` per
executed scenario, keyed by the scenario's content hash.  Outcomes carry an
explicit status — ``"done"`` for a scenario that produced a simulation
result, ``"failed"`` for one whose execution raised (the error message and
traceback text are captured in the outcome instead of killing the
campaign) — plus the number of attempts the executor spent on it.

The store round-trips through JSON so long campaigns can checkpoint to
disk and *resume*: the executor skips any scenario whose stored outcome is
``done`` and re-runs the ``failed`` ones.  :meth:`CampaignResult.save` is
atomic (write-temp + ``os.replace``), so a crash mid-checkpoint can never
truncate a previously good store.  Disjoint stores of the same campaign —
e.g. the per-shard result files of a :meth:`CampaignSpec.shard` split —
recombine with :meth:`CampaignResult.merge`.

The store feeds the existing analysis layer unchanged —
:meth:`CampaignResult.results` returns the plain ``label ->
SimulationResult`` mapping (``done`` outcomes only) that
:func:`repro.sim.comparison.compare_to_oracle` and the Table-I
normalisation consume.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Mapping, Optional, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.campaign.spec import CampaignSpec, ScenarioSpec
from repro.sim.results import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (results -> metrics)
    from repro.sim.metrics import MetricsSummary

#: Status of a scenario that ran to completion and has a simulation result.
STATUS_DONE = "done"
#: Status of a scenario whose execution raised on every allowed attempt.
STATUS_FAILED = "failed"

#: Everything a corrupt/truncated checkpoint file can raise while parsing:
#: JSON decode errors (``ValueError``), missing keys, wrong value shapes.
CORRUPT_CHECKPOINT_ERRORS = (ValueError, KeyError, TypeError, AttributeError)


def quarantine_corrupt_file(path: str, reason: Exception) -> Optional[str]:
    """Move an unreadable checkpoint aside and warn, instead of raising.

    A crash mid-``os.replace`` on exotic filesystems (or a partial copy)
    can leave a truncated or garbled JSON file where a checkpoint should
    be.  This renames it to ``<path>.corrupt`` (``.corrupt-2``, ... when
    one already exists) so the bad bytes stay available for post-mortem
    while the caller resumes from scratch.  Returns the quarantine path,
    or ``None`` when even the rename failed (the warning still fires).
    """
    quarantine = f"{path}.corrupt"
    suffix = 1
    while os.path.exists(quarantine):
        suffix += 1
        quarantine = f"{path}.corrupt-{suffix}"
    try:
        os.replace(path, quarantine)
    except OSError:
        quarantine = None
    warnings.warn(
        f"checkpoint {path!r} is corrupt ({type(reason).__name__}: {reason}); "
        + (
            f"quarantined to {quarantine!r} and resuming from scratch"
            if quarantine
            else "could not quarantine it; resuming from scratch"
        ),
        RuntimeWarning,
        stacklevel=3,
    )
    return quarantine


@dataclass(frozen=True)
class ScenarioOutcome:
    """One executed scenario: its spec, its result (or captured failure).

    Attributes
    ----------
    scenario:
        The spec that was executed.
    result:
        The simulation result; ``None`` when the scenario failed.
    probe:
        Optional probe payload (``done`` scenarios only).
    status:
        ``"done"`` or ``"failed"``.
    error:
        ``"ExceptionType: message"`` of the last attempt's exception, for
        failed scenarios.
    traceback:
        Full traceback text of the last attempt's exception, for failed
        scenarios.
    attempts:
        How many executions the scenario consumed (> 1 when a retry policy
        re-ran it).
    metrics:
        Optional cached :class:`~repro.sim.metrics.MetricsSummary` as a
        plain dict.  Stamped by the columnar store
        (:mod:`repro.campaign.store`) so summary queries never touch the
        frames; it is a derived cache — excluded from equality and from
        the :meth:`to_dict` wire format, which stays byte-identical to
        the pre-store JSON.
    """

    scenario: ScenarioSpec
    result: Optional[SimulationResult]
    probe: Optional[Dict[str, Any]] = None
    status: str = STATUS_DONE
    error: Optional[str] = None
    traceback: Optional[str] = None
    attempts: int = 1
    metrics: Optional[Dict[str, Any]] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.status not in (STATUS_DONE, STATUS_FAILED):
            raise SimulationError(
                f"scenario outcome status must be {STATUS_DONE!r} or {STATUS_FAILED!r}, "
                f"got {self.status!r}"
            )
        if self.status == STATUS_DONE and self.result is None:
            raise SimulationError(f"done outcome for {self.scenario.label!r} has no result")

    @classmethod
    def failure(
        cls,
        scenario: ScenarioSpec,
        error: str,
        traceback_text: str,
        attempts: int = 1,
    ) -> "ScenarioOutcome":
        """Build the record of a scenario that raised on its final attempt."""
        return cls(
            scenario=scenario,
            result=None,
            status=STATUS_FAILED,
            error=error,
            traceback=traceback_text,
            attempts=attempts,
        )

    @property
    def ok(self) -> bool:
        """Whether the scenario completed with a result."""
        return self.status == STATUS_DONE

    @property
    def scenario_id(self) -> str:
        """Content hash of the scenario that produced this outcome."""
        return self.scenario.scenario_id

    @property
    def label(self) -> str:
        """The scenario's campaign label."""
        return self.scenario.label

    def metrics_summary(self) -> Optional["MetricsSummary"]:
        """The outcome's aggregate metrics, without materialising records.

        Prefers the cached :attr:`metrics` dict (stamped by the columnar
        store at write time — answering from it never touches the frames,
        which for a lazily loaded store means no disk read at all) and
        falls back to :func:`~repro.sim.metrics.summarize_result`'s
        columnar reductions.  ``None`` for failed outcomes.
        """
        if self.result is None:
            return None
        from repro.sim.metrics import MetricsSummary, summarize_result

        if self.metrics is not None:
            try:
                return MetricsSummary(**self.metrics)
            except TypeError:
                pass  # unknown cache shape: recompute from the frames
        return summarize_result(self.result)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "scenario": self.scenario.to_dict(),
            "status": self.status,
            "attempts": self.attempts,
        }
        if self.result is not None:
            data["result"] = self.result.to_dict()
        if self.probe is not None:
            data["probe"] = self.probe
        if self.error is not None:
            data["error"] = self.error
        if self.traceback is not None:
            data["traceback"] = self.traceback
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioOutcome":
        result = data.get("result")
        return cls(
            scenario=ScenarioSpec.from_dict(data["scenario"]),
            result=SimulationResult.from_dict(result) if result is not None else None,
            probe=data.get("probe"),
            status=data.get("status", STATUS_DONE),
            error=data.get("error"),
            traceback=data.get("traceback"),
            attempts=data.get("attempts", 1),
        )


@dataclass
class CampaignResult:
    """Ordered store of scenario outcomes for one campaign."""

    campaign_name: str
    outcomes: Dict[str, ScenarioOutcome] = field(default_factory=dict)

    # -- building -----------------------------------------------------------------
    def add(self, outcome: ScenarioOutcome) -> None:
        """Record a completed scenario (replacing any previous run of it)."""
        self.outcomes[outcome.scenario_id] = outcome

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self) -> Iterator[ScenarioOutcome]:
        return iter(self.outcomes.values())

    def __contains__(self, scenario: ScenarioSpec) -> bool:
        return scenario.scenario_id in self.outcomes

    # -- lookup -------------------------------------------------------------------
    def outcome(self, label: str) -> ScenarioOutcome:
        """The outcome of the scenario labelled ``label``."""
        for candidate in self.outcomes.values():
            if candidate.label == label:
                return candidate
        raise KeyError(f"campaign {self.campaign_name!r} has no outcome labelled {label!r}")

    def result(self, label: str) -> SimulationResult:
        """The simulation result of the scenario labelled ``label``."""
        return self.outcome(label).result

    def results(self) -> Dict[str, SimulationResult]:
        """``label -> SimulationResult`` of the ``done`` outcomes, in campaign order.

        This is the mapping the pre-campaign analysis helpers
        (:func:`~repro.sim.comparison.compare_to_oracle`,
        :func:`~repro.sim.comparison.pairwise_energy_saving`) consume.
        Failed scenarios have no simulation result and are omitted; call
        :meth:`raise_on_failures` first to insist on a fully clean store.
        """
        return {
            outcome.label: outcome.result
            for outcome in self.outcomes.values()
            if outcome.ok and outcome.result is not None
        }

    def done(self) -> List[ScenarioOutcome]:
        """The outcomes that completed with a result, in campaign order."""
        return [outcome for outcome in self.outcomes.values() if outcome.ok]

    def failed(self) -> List[ScenarioOutcome]:
        """The outcomes recorded as failed, in campaign order."""
        return [outcome for outcome in self.outcomes.values() if not outcome.ok]

    def raise_on_failures(self) -> None:
        """Raise :class:`SimulationError` if any stored outcome failed."""
        failures = self.failed()
        if failures:
            detail = "; ".join(
                f"{outcome.label!r}: {outcome.error}" for outcome in failures[:5]
            )
            if len(failures) > 5:
                detail += f"; ... {len(failures) - 5} more"
            raise SimulationError(
                f"campaign {self.campaign_name!r} has {len(failures)} failed "
                f"scenario(s): {detail}"
            )

    def select(
        self,
        application_key: Optional[str] = None,
        governor_key: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> List[ScenarioOutcome]:
        """Outcomes matching the given grid coordinates (``None`` = any)."""
        matches = []
        for outcome in self.outcomes.values():
            spec = outcome.scenario
            if application_key is not None and spec.application_key != application_key:
                continue
            if governor_key is not None and spec.governor_key != governor_key:
                continue
            if seed is not None and spec.seed != seed:
                continue
            matches.append(outcome)
        return matches

    # -- resume support -----------------------------------------------------------
    def pending(self, campaign: CampaignSpec) -> List[ScenarioSpec]:
        """Scenarios of ``campaign`` that still need to run.

        A scenario is pending when it has no stored outcome, or when its
        stored outcome is ``failed`` — resuming retries failures but never
        re-runs ``done`` work.
        """
        pending: List[ScenarioSpec] = []
        for scenario in campaign.scenarios:
            outcome = self.outcomes.get(scenario.scenario_id)
            if outcome is None or not outcome.ok:
                pending.append(scenario)
        return pending

    # -- sharding -----------------------------------------------------------------
    @classmethod
    def merge(cls, stores: Sequence["CampaignResult"]) -> "CampaignResult":
        """Union several result stores of the same campaign by scenario id.

        The inverse of running a campaign as :meth:`CampaignSpec.shard`
        slices: merging the shard stores reconstructs the store an
        unsharded run would have produced (order it with
        :meth:`ordered_for` for bit-identical JSON).

        Raises
        ------
        ConfigurationError
            If no stores are given or the stores belong to differently
            named campaigns.
        SimulationError
            If the same scenario id appears in several stores with
            different payloads (identical duplicates are unioned silently).
        """
        if not stores:
            raise ConfigurationError("merge needs at least one result store")
        names = sorted({store.campaign_name for store in stores})
        if len(names) > 1:
            raise ConfigurationError(
                f"cannot merge result stores of different campaigns: {names}"
            )
        merged = cls(campaign_name=stores[0].campaign_name)
        for store in stores:
            for outcome in store:
                existing = merged.outcomes.get(outcome.scenario_id)
                if existing is not None and existing.to_dict() != outcome.to_dict():
                    raise SimulationError(
                        f"conflicting outcomes for scenario {outcome.label!r} "
                        f"(id {outcome.scenario_id}) while merging campaign "
                        f"{merged.campaign_name!r}"
                    )
                merged.add(outcome)
        return merged

    def ordered_for(self, campaign: CampaignSpec) -> "CampaignResult":
        """A copy whose outcomes follow ``campaign``'s scenario order.

        Raises
        ------
        SimulationError
            If any scenario of the campaign has no stored outcome.
        """
        ordered = CampaignResult(campaign_name=campaign.name)
        for scenario in campaign.scenarios:
            outcome = self.outcomes.get(scenario.scenario_id)
            if outcome is None:
                raise SimulationError(
                    f"campaign {campaign.name!r} has no outcome for scenario "
                    f"{scenario.label!r} (id {scenario.scenario_id})"
                )
            ordered.add(outcome)
        return ordered

    # -- persistence --------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "campaign_name": self.campaign_name,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes.values()],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignResult":
        store = cls(campaign_name=data["campaign_name"])
        for item in data.get("outcomes", []):
            store.add(ScenarioOutcome.from_dict(item))
        return store

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CampaignResult":
        return cls.from_dict(json.loads(text))

    def save(self, path: str, store: str = "json") -> None:
        """Atomically write the store (write-temp + ``os.replace``).

        ``store`` picks the on-disk format through
        :func:`repro.campaign.store.negotiate_store`: the default
        ``"json"`` keeps the legacy monolithic blob byte-identical to
        every earlier release; ``"arrow"`` (or ``"auto"`` on an install
        with pyarrow) writes the columnar store instead.  Whatever the
        format, the rename guarantees a reader (or a crash) never sees a
        half-written store.
        """
        from repro.campaign import store as result_store

        resolved = result_store.negotiate_store(store)
        if resolved != result_store.STORE_JSON:
            result_store.save_store(self, path, resolved)
            return
        temp_path = f"{path}.tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
        os.replace(temp_path, path)

    @classmethod
    def load(cls, path: str, lazy: bool = False) -> "CampaignResult":
        """Load a result store of either format (auto-detected by content).

        ``lazy`` applies to columnar store files: outcomes come back with
        disk-backed deferred frame columns and their cached metrics, so a
        million-scenario store can be summarised without holding any
        per-frame data in memory (first access to a result's columns
        re-reads just that record from disk).  Monolithic JSON files are
        parsed whole regardless — laziness is a property the columnar
        layout provides.
        """
        from repro.campaign import store as result_store

        if result_store.is_store_file(path):
            return result_store.load_store(path, lazy=lazy)
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    @classmethod
    def load_checkpoint(cls, path: str) -> Optional["CampaignResult"]:
        """Load a checkpoint file, degrading gracefully when it is unusable.

        Returns ``None`` when the file does not exist, and — unlike
        :meth:`load` — when it exists but cannot be parsed: the corrupt
        file is moved aside via :func:`quarantine_corrupt_file` (with a
        ``RuntimeWarning``) and the campaign resumes from scratch instead
        of dying on a ``JSONDecodeError``.  Completed work checkpointed
        *before* the corruption was introduced is only lost in that rare
        quarantine case; the atomic save path makes it rarer still.
        Columnar checkpoints do one better: records are independent, so
        the valid prefix of a torn file is salvaged before the file is
        quarantined (see
        :func:`repro.campaign.store.load_store_checkpoint`).
        """
        from repro.campaign import store as result_store

        if result_store.is_store_file(path):
            return result_store.load_store_checkpoint(path)
        try:
            return cls.load(path)
        except FileNotFoundError:
            return None
        except CORRUPT_CHECKPOINT_ERRORS as exc:
            quarantine_corrupt_file(path, exc)
            return None

    def __repr__(self) -> str:
        return f"CampaignResult({self.campaign_name!r}, {len(self)} outcomes)"
