"""Deterministic fault injection for the distributed campaign service.

The service's headline claim — any fault schedule yields a merged
:class:`~repro.campaign.results.CampaignResult` bit-identical to an
unsharded serial run, with no scenario lost or run-but-unrecorded — is
only worth trusting if it is *proved*, repeatedly, against adversarial
schedules.  This module is that proof harness.

:func:`run_with_faults` runs a campaign through a real
:class:`~repro.campaign.service.Coordinator` and simulated worker sites,
entirely in-process and without threads: workers are explicit state
machines stepped round-robin, time is a :class:`FakeClock` the scheduler
advances only when every worker is blocked, and scenario outcomes are
computed by the *real* :func:`~repro.campaign.executor.run_scenario_safely`
(the simulation itself is deterministic, so when its result lands is
independent of what it contains).  Requests and responses take a JSON
round-trip, exactly like the wire.

Faults are injected at **seeded, deterministic points** described by a
:class:`FaultSchedule`:

* ``crash-worker`` — the worker dies after computing a result but before
  submitting it (the classic lost-work window); its lease expires and the
  scenario is requeued.
* ``drop-response`` — a submit is swallowed by the network; the worker
  retries (at-least-once delivery).
* ``duplicate-response`` — a submit is delivered twice; the coordinator
  must flag the second as a duplicate and drop it.
* ``lose-heartbeats`` — the worker stops heartbeating from its next lease
  on; long scenarios outlive their lease, get requeued and re-run
  elsewhere, and the original's late submit must be reconciled
  first-wins.
* ``restart-coordinator`` — the coordinator is discarded after an
  accepted submit and rebuilt from its journal; in-flight leases vanish
  and late submits arrive bearing lease ids the new coordinator has
  never issued.

Every schedule — hand-written or :meth:`FaultSchedule.random` from a seed
— must end with :attr:`FaultRunReport.result` equal, as JSON bytes, to
``run_campaign(campaign, backend="serial")``.
"""

from __future__ import annotations

import json
import os
import random
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ServiceError
from repro.campaign.executor import RetryPolicy, run_scenario_safely
from repro.campaign.results import CampaignResult, ScenarioOutcome
from repro.campaign.spec import CampaignSpec, ScenarioSpec
from repro.campaign.service import (
    STATE_DRAINED,
    STATE_GRANTED,
    STATE_WAIT,
    Coordinator,
    dispatch_op,
)

#: The injectable fault kinds, in a stable order (used by seeded schedules).
FAULT_KINDS = (
    "crash-worker",
    "drop-response",
    "duplicate-response",
    "lose-heartbeats",
    "restart-coordinator",
)


@dataclass(frozen=True)
class FaultEvent:
    """One injection point: the ``at``-th occurrence of ``kind``'s trigger.

    Triggers are counted globally per kind — lease grants for
    ``lose-heartbeats``, completed computations for ``crash-worker``,
    submit attempts for ``drop-response``, accepted submits for
    ``duplicate-response`` and ``restart-coordinator``.  ``worker``
    restricts the event to one site (``None`` = whichever site hits the
    trigger count).
    """

    kind: str
    at: int
    worker: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.at < 1:
            raise ConfigurationError(f"fault trigger index must be >= 1, got {self.at}")


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable set of fault events, optionally derived from a seed."""

    events: Tuple[FaultEvent, ...] = ()
    seed: Optional[int] = None

    @classmethod
    def of(cls, *events: FaultEvent) -> "FaultSchedule":
        return cls(events=tuple(events))

    @classmethod
    def random(
        cls,
        seed: int,
        count: int = 4,
        kinds: Sequence[str] = FAULT_KINDS,
        horizon: int = 3,
    ) -> "FaultSchedule":
        """A deterministic schedule drawn from ``seed``.

        ``count`` events are sampled with kinds from ``kinds`` and trigger
        indices in ``[1, horizon]`` — the same seed always produces the
        same schedule, so a failing seed is a reproducible regression.
        """
        rng = random.Random(seed)
        events = tuple(
            FaultEvent(kind=rng.choice(list(kinds)), at=rng.randint(1, horizon))
            for _ in range(count)
        )
        return cls(events=events, seed=seed)


@dataclass
class FaultRunReport:
    """What a fault-injected run did, alongside its final result."""

    result: CampaignResult
    fired: List[FaultEvent]
    restarts: int
    respawned: int
    duplicates_acknowledged: int
    coordinator_stats: Dict[str, int]
    events_log: List[str] = field(default_factory=list)


class FakeClock:
    """A manually advanced monotonic clock shared by coordinator and scheduler."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance_to(self, moment: float) -> None:
        self.now = max(self.now, moment)


class _Injector:
    """Counts trigger points per fault kind and fires matching events."""

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self.counters: Dict[str, int] = {}
        self.fired: List[FaultEvent] = []

    def fires(self, kind: str, worker: Optional[str] = None) -> bool:
        count = self.counters.get(kind, 0) + 1
        self.counters[kind] = count
        for event in self.schedule.events:
            if (
                event.kind == kind
                and event.at == count
                and (event.worker is None or event.worker == worker)
                and event not in self.fired
            ):
                self.fired.append(event)
                return True
        return False


class _BoxClient:
    """Client bound to a mutable coordinator slot (survives restarts).

    Mirrors :class:`~repro.campaign.service.LocalClient`'s JSON round-trip
    so the harness exercises exactly the wire encoding.
    """

    def __init__(self, box: Dict[str, Coordinator]) -> None:
        self.box = box

    def call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        wire = json.loads(json.dumps(request))
        return json.loads(json.dumps(dispatch_op(self.box["coordinator"], wire)))


class _SimWorker:
    """One simulated worker site, stepped synchronously by the harness."""

    def __init__(
        self,
        worker_id: str,
        harness: "_Harness",
    ) -> None:
        self.worker_id = worker_id
        self.harness = harness
        self.client = _BoxClient(harness.box)
        self.alive = True
        self.heartbeats = True
        self.lease_id: Optional[str] = None
        self.outcome: Optional[ScenarioOutcome] = None
        self.ready_at = 0.0
        self.next_poll_at = 0.0

    # Each step performs at most one protocol interaction and reports
    # whether the worker advanced; False means it is blocked on time.
    def step(self) -> bool:
        if not self.alive:
            return False
        clock = self.harness.clock
        if self.lease_id is None:
            if clock.now < self.next_poll_at:
                return False
            return self._try_lease()
        if clock.now < self.ready_at:
            if self.heartbeats:
                self.client.call(
                    {
                        "op": "heartbeat",
                        "worker": self.worker_id,
                        "leases": [self.lease_id],
                    }
                )
            return False
        return self._complete()

    def _try_lease(self) -> bool:
        response = self.client.call({"op": "lease", "worker": self.worker_id})
        state = response.get("state")
        if state == STATE_DRAINED:
            self.alive = False
            self.harness.log(f"{self.worker_id}: drained, retiring")
            return True
        if state == STATE_WAIT:
            self.next_poll_at = self.harness.clock.now + float(
                response.get("retry_after_s", 0.1)
            )
            return False
        assert state == STATE_GRANTED, f"unexpected lease state {state!r}"
        lease = response["leases"][0]
        self.lease_id = lease["lease_id"]
        scenario = ScenarioSpec.from_dict(lease["scenario"])
        if self.harness.injector.fires("lose-heartbeats", self.worker_id):
            self.heartbeats = False
            self.harness.log(f"{self.worker_id}: heartbeats lost")
        # The simulation itself is deterministic, so computing the outcome
        # eagerly does not depend on fault timing — only on the spec.
        self.outcome = run_scenario_safely(scenario, retry=self.harness.worker_retry)
        self.ready_at = self.harness.clock.now + self.harness.work_time_s
        return True

    def _complete(self) -> bool:
        injector = self.harness.injector
        if injector.fires("crash-worker", self.worker_id):
            self.harness.log(
                f"{self.worker_id}: crashed before submitting "
                f"{self.outcome.label!r}"
            )
            self.alive = False
            self.lease_id = None
            self.outcome = None
            return True
        # At-least-once delivery: swallowed submits are retried until one
        # gets through (each swallow consumes a drop-response trigger).
        while injector.fires("drop-response", self.worker_id):
            self.harness.log(
                f"{self.worker_id}: submit of {self.outcome.label!r} dropped"
            )
        request = {
            "op": "submit",
            "worker": self.worker_id,
            "lease_id": self.lease_id,
            "outcome": self.outcome.to_dict(),
        }
        response = self.client.call(request)
        assert response.get("ok"), response
        if response.get("accepted"):
            self.harness.on_accepted_submit()
        if injector.fires("duplicate-response", self.worker_id):
            echo = self.client.call(request)
            assert echo.get("ok"), echo
            assert echo.get("duplicate") is True, (
                "re-delivered response was not flagged as a duplicate"
            )
            self.harness.duplicates_acknowledged += 1
            self.harness.log(
                f"{self.worker_id}: duplicated submit of {self.outcome.label!r}"
            )
        self.lease_id = None
        self.outcome = None
        return True


class _Harness:
    """Round-robin scheduler over simulated workers and a fake clock."""

    def __init__(
        self,
        campaign: CampaignSpec,
        schedule: FaultSchedule,
        num_workers: int,
        retry: RetryPolicy,
        worker_retry: Optional[RetryPolicy],
        lease_timeout_s: float,
        work_time_s: float,
        journal_path: Optional[str],
    ) -> None:
        self.campaign = campaign
        self.injector = _Injector(schedule)
        self.retry = retry
        self.worker_retry = worker_retry
        self.lease_timeout_s = lease_timeout_s
        self.work_time_s = work_time_s
        self.journal_path = journal_path
        self.clock = FakeClock()
        self.box: Dict[str, Coordinator] = {
            "coordinator": self._make_coordinator()
        }
        self.workers = [
            _SimWorker(f"w{index}", self) for index in range(num_workers)
        ]
        self.restarts = 0
        self.respawned = 0
        self.duplicates_acknowledged = 0
        self.events_log: List[str] = []

    def _make_coordinator(self) -> Coordinator:
        return Coordinator(
            self.campaign,
            retry=self.retry,
            lease_timeout_s=self.lease_timeout_s,
            journal_path=self.journal_path,
            clock=self.clock,
        )

    @property
    def coordinator(self) -> Coordinator:
        return self.box["coordinator"]

    def log(self, message: str) -> None:
        self.events_log.append(f"t={self.clock.now:.2f} {message}")

    def on_accepted_submit(self) -> None:
        if self.injector.fires("restart-coordinator"):
            if self.journal_path is None:  # pragma: no cover - guarded by caller
                raise ConfigurationError(
                    "restart-coordinator faults need a journal_path"
                )
            self.restarts += 1
            self.log("coordinator restarted from journal")
            self.box["coordinator"] = self._make_coordinator()

    def _respawn(self) -> None:
        self.respawned += 1
        worker = _SimWorker(f"respawn{self.respawned}", self)
        self.workers.append(worker)
        self.log(f"{worker.worker_id}: spawned (elastic scale-up)")

    def _advance(self) -> None:
        """Jump the fake clock to the next moment anything can happen."""
        candidates: List[float] = []
        for worker in self.workers:
            if not worker.alive:
                continue
            if worker.lease_id is not None:
                candidates.append(worker.ready_at)
            else:
                candidates.append(worker.next_poll_at)
        deadline = self.coordinator.next_deadline()
        if deadline is not None:
            candidates.append(deadline)
        future = [moment for moment in candidates if moment > self.clock.now]
        if not future:
            raise ServiceError(
                "fault harness deadlocked: no worker can progress and no "
                "coordinator deadline is pending"
            )
        self.clock.advance_to(min(future))
        self.coordinator.tick()

    def run(self) -> FaultRunReport:
        while not self.coordinator.finished:
            progressed = False
            for worker in list(self.workers):
                progressed = worker.step() or progressed
            if self.coordinator.finished:
                break
            if not any(worker.alive for worker in self.workers):
                self._respawn()
                continue
            if not progressed:
                self._advance()
        return FaultRunReport(
            result=self.coordinator.result(),
            fired=list(self.injector.fired),
            restarts=self.restarts,
            respawned=self.respawned,
            duplicates_acknowledged=self.duplicates_acknowledged,
            coordinator_stats=dict(self.coordinator.stats),
            events_log=self.events_log,
        )


def run_with_faults(
    campaign: CampaignSpec,
    schedule: FaultSchedule,
    num_workers: int = 2,
    retry: Optional[RetryPolicy] = None,
    worker_retry: Optional[RetryPolicy] = None,
    lease_timeout_s: float = 5.0,
    work_time_s: float = 8.0,
    journal_path: Optional[str] = None,
) -> FaultRunReport:
    """Run ``campaign`` through the service under an adversarial schedule.

    Defaults make every fault kind observable: the simulated per-scenario
    work time exceeds the lease timeout, so a worker that stops
    heartbeating loses its lease mid-computation, while heartbeating
    workers keep theirs alive indefinitely.  The delivery policy defaults
    to a generous attempt budget so bounded fault schedules never exhaust
    a scenario (an exhausted scenario is *supposed* to differ from the
    serial run — it records a failure).

    When the schedule contains ``restart-coordinator`` events and no
    ``journal_path`` is given, a temporary journal is created (restarts
    resume from the journal; that is the point of the fault).
    """
    if num_workers < 1:
        raise ConfigurationError(f"num_workers must be >= 1, got {num_workers}")
    needs_journal = any(
        event.kind == "restart-coordinator" for event in schedule.events
    )
    if journal_path is None and needs_journal:
        handle = tempfile.NamedTemporaryFile(
            prefix="campaign-fault-journal-", suffix=".json", delete=False
        )
        handle.close()
        journal_path = handle.name
        # The journal must start absent so the first coordinator begins fresh.
        os.unlink(journal_path)
    harness = _Harness(
        campaign=campaign,
        schedule=schedule,
        num_workers=num_workers,
        retry=retry
        or RetryPolicy(max_attempts=10, backoff_s=0.5, backoff_cap_s=30.0),
        worker_retry=worker_retry,
        lease_timeout_s=lease_timeout_s,
        work_time_s=work_time_s,
        journal_path=journal_path,
    )
    return harness.run()
