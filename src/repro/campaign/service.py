"""Fault-tolerant distributed campaign service: coordinator + worker sites.

The campaign runtime shards across machines only by hand (``--shard I/N``
+ ``merge``); this module adds the long-running layer that survives worker
crashes, network partitions and ``kill -9``:

* :class:`Coordinator` — the server-side state machine.  It holds the
  queue of pending :class:`~repro.campaign.spec.ScenarioSpec` ids and
  hands scenarios out as **leases with deadlines**; workers extend their
  leases with **heartbeats**, and a reaper (run lazily on every operation
  and explicitly via :meth:`Coordinator.tick`) requeues work whose lease
  expired — a dead or partitioned worker therefore delays its scenarios,
  never loses them.  Requeues are bounded by a
  :class:`~repro.campaign.executor.RetryPolicy` whose capped exponential
  backoff + deterministic jitter sets each requeued scenario's
  not-before time.  Every state transition is journalled through the
  same atomic write-temp + ``os.replace`` path the checkpoint machinery
  uses, so the coordinator can crash and resume mid-campaign (corrupt
  journals are quarantined, not fatal).  Results are accepted
  *first-wins* by scenario id: duplicated or late responses (a partition
  healing after its lease was requeued) are acknowledged and dropped,
  which keeps the final store identical to an unsharded serial run —
  every scenario is fully determined by its spec.
* :class:`CoordinatorServer` / :class:`HTTPClient` — a minimal
  JSON-over-HTTP transport on the stdlib ``http.server`` /
  ``urllib.request`` (no new dependencies, mirroring the optional-dep
  pattern in :mod:`repro._compat`).  :class:`LocalClient` speaks the same
  protocol in-process (with a JSON round-trip, so wire behaviour and
  local behaviour cannot drift), which is what the fault-injection
  harness in :mod:`repro.campaign.faults` instruments.
* :class:`WorkerSite` — the pull-based worker loop.  It leases work,
  executes it through the *existing* campaign executor machinery (any
  registered executor backend: :class:`~repro.campaign.executor.SerialBackend`
  by default, the process pool via ``backend="process"``), heartbeats
  while computing, and submits outcomes.  A connection refused degrades
  gracefully: bounded reconnect with exponential backoff, then a local
  atomic checkpoint of in-flight results (``fallback_path``) that
  ``repro-campaign merge`` folds back in later.
* :func:`run_campaign_service` — one-call convenience that runs a
  coordinator plus N in-process worker threads and returns the ordered
  :class:`~repro.campaign.results.CampaignResult`, bit-identical to
  ``run_campaign(campaign, backend="serial")``.

Workers are elastic: a site can join (``repro-campaign work``) or vanish
at any point of a running campaign.  The protocol is four idempotent
operations (``lease`` / ``heartbeat`` / ``submit`` / ``status``) carried
as JSON objects, so third-party sites need nothing beyond an HTTP POST.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Tuple
from urllib import request as urllib_request

from repro.errors import ConfigurationError, ReproError, ServiceError
from repro.campaign import store as result_store
from repro.campaign.executor import RetryPolicy, make_backend
from repro.campaign.results import (
    CORRUPT_CHECKPOINT_ERRORS,
    CampaignResult,
    ScenarioOutcome,
    quarantine_corrupt_file,
)
from repro.campaign.spec import CampaignSpec, ScenarioSpec

#: Lease-grant response states.
STATE_GRANTED = "granted"
STATE_WAIT = "wait"
STATE_DRAINED = "drained"

#: Default seconds a lease lives without a heartbeat.
DEFAULT_LEASE_TIMEOUT_S = 60.0

#: Default delivery policy: how often a scenario may be re-leased after its
#: worker died, and on what backoff schedule.  Distinct from the *worker's*
#: in-process retry policy around genuinely crashing scenarios.
DEFAULT_DELIVERY_RETRY = RetryPolicy(
    max_attempts=5, backoff_s=0.5, backoff_cap_s=30.0
)


@dataclass
class _Lease:
    """One outstanding grant of a scenario to a worker."""

    lease_id: str
    scenario_id: str
    worker: str
    deadline: float  # coordinator-clock time after which the lease is dead


@dataclass
class ServiceEvent:
    """One coordinator state transition, for live progress streaming."""

    kind: str  # "done" | "failed" | "requeued" | "expired-failed"
    label: str
    worker: str
    done: int
    total: int


class Coordinator:
    """Server-side state machine of the distributed campaign service.

    All public methods are thread-safe (the HTTP transport serves from a
    thread pool) and take their timestamps from the injected ``clock``
    callable, which the fault-injection harness replaces with a fake
    clock to make lease expiry and backoff fully deterministic.

    Parameters
    ----------
    campaign:
        The campaign to serve.
    retry:
        Delivery policy: how many times a scenario may be *leased* (a
        worker that dies or partitions consumes one delivery attempt when
        its lease expires) and the backoff schedule of requeues.  A
        scenario whose deliveries are exhausted is recorded as ``failed``.
        Note this is separate from the workers' in-process retry policy —
        a worker-reported ``failed`` outcome (scenario code raised on
        every attempt) is a *successful delivery* and is final.
    lease_timeout_s:
        Seconds a lease survives without a heartbeat.
    journal_path:
        When given, every state transition persists the service state; an
        existing journal is resumed from on construction —
        ``done``/``failed`` outcomes carry over (failed ones with
        deliveries left are re-queued, mirroring the executor's resume
        semantics), so the coordinator survives its own crash or restart.
        A corrupt journal is quarantined with a warning and the campaign
        restarts from scratch.  The on-disk shape follows
        ``journal_store``: the legacy ``json`` mode atomically rewrites
        one JSON blob per transition (O(campaign) each time), while the
        columnar mode keeps outcomes in an append-only
        ``<journal_path>.outcomes`` store (O(1) per completion) next to a
        small atomically rewritten meta file at ``journal_path`` itself.
    journal_store:
        Requested journal format, resolved through
        :func:`repro.campaign.store.negotiate_store` (default ``auto``:
        columnar when pyarrow is available, the legacy JSON blob
        otherwise).
    resume:
        Optional result store whose outcomes seed the coordinator (e.g. a
        previous run's ``--output``); applied before the journal.
    clock:
        Monotonic time source (seconds).
    """

    def __init__(
        self,
        campaign: CampaignSpec,
        retry: Optional[RetryPolicy] = None,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        journal_path: Optional[str] = None,
        resume: Optional[CampaignResult] = None,
        clock: Callable[[], float] = time.monotonic,
        journal_store: str = result_store.STORE_AUTO,
    ) -> None:
        if lease_timeout_s <= 0:
            raise ConfigurationError(
                f"lease_timeout_s must be positive, got {lease_timeout_s}"
            )
        self.campaign = campaign
        self.retry = retry or DEFAULT_DELIVERY_RETRY
        self.lease_timeout_s = lease_timeout_s
        self.journal_path = journal_path
        self._journal_encoding = result_store.negotiate_store(journal_store)
        self._journal_writer: Optional[result_store.StoreWriter] = None
        self._journal_pending: List[ScenarioOutcome] = []
        self._clock = clock
        self._lock = threading.RLock()
        self._scenarios: Dict[str, ScenarioSpec] = {
            scenario.scenario_id: scenario for scenario in campaign.scenarios
        }
        self.store = CampaignResult(campaign_name=campaign.name)
        #: scenario_id -> delivery attempts consumed (leases granted).
        self._attempts: Dict[str, int] = {}
        #: scenario_id -> coordinator-clock time before which it may not lease.
        self._not_before: Dict[str, float] = {}
        self._leases: Dict[str, _Lease] = {}
        self._lease_by_scenario: Dict[str, str] = {}
        self._lease_counter = 0
        self._workers_seen: Dict[str, float] = {}
        self._events: Deque[ServiceEvent] = deque()
        self.stats = {
            "granted": 0,
            "requeued": 0,
            "duplicates": 0,
            "expired_failed": 0,
            "resumed": 0,
        }

        seeded: List[CampaignResult] = []
        if resume is not None:
            seeded.append(resume)
        if journal_path is not None:
            journalled = self._load_journal(journal_path)
            if journalled is not None:
                seeded.append(journalled)
        for store in seeded:
            for outcome in store:
                if outcome.scenario_id in self._scenarios:
                    self.store.add(outcome)
                    self.stats["resumed"] += 1
        # Failed outcomes with delivery budget left are re-run, like the
        # executor's resume; exhausted ones stay final.
        for outcome in list(self.store):
            if not outcome.ok and self._attempts.get(
                outcome.scenario_id, 0
            ) < self.retry.max_attempts:
                del self.store.outcomes[outcome.scenario_id]
        self._queue: Deque[str] = deque(
            scenario.scenario_id
            for scenario in campaign.scenarios
            if scenario.scenario_id not in self.store.outcomes
        )
        if (
            journal_path is not None
            and self._journal_encoding != result_store.STORE_JSON
        ):
            # Seed the append-only outcomes store once (atomic rewrite of
            # whatever survived resume + requeue pruning), then every
            # completed scenario is a single O(1) append.
            outcomes_path = self._outcomes_path()
            result_store.save_store(
                self.store, outcomes_path, self._journal_encoding
            )
            self._journal_writer = result_store.StoreWriter.open_append(
                outcomes_path
            )
            self._write_journal_meta()

    # -- persistence --------------------------------------------------------------
    def _outcomes_path(self) -> str:
        """The append-only outcomes store living next to the meta journal."""
        return f"{self.journal_path}.outcomes"

    def _load_journal(self, path: str) -> Optional[CampaignResult]:
        """Restore results + delivery-attempt counts from a journal file."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.loads(handle.read())
            if data.get("outcomes") == "store":
                # Columnar journal: outcomes live in the sidecar store
                # (a torn tail there is salvaged + quarantined).
                store = result_store.load_store_checkpoint(self._outcomes_path())
                if store is None:
                    store = CampaignResult(campaign_name=str(data["campaign_name"]))
            else:
                store = CampaignResult.from_dict(data["results"])
            attempts = {str(k): int(v) for k, v in data.get("attempts", {}).items()}
        except FileNotFoundError:
            return None
        except CORRUPT_CHECKPOINT_ERRORS as exc:
            quarantine_corrupt_file(path, exc)
            return None
        self._attempts.update(attempts)
        return store

    def _record_outcome(self, outcome: ScenarioOutcome) -> None:
        """Store an outcome and stage it for the append-only journal."""
        self.store.add(outcome)
        if self._journal_writer is not None:
            self._journal_pending.append(outcome)

    def _write_journal_meta(self) -> None:
        """Atomically rewrite the small meta file of a columnar journal."""
        data = {
            "campaign_name": self.campaign.name,
            "attempts": self._attempts,
            "outcomes": "store",
        }
        temp_path = f"{self.journal_path}.tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(data))
        os.replace(temp_path, self.journal_path)

    def _journal(self) -> None:
        """Persist the service state.

        Legacy mode atomically rewrites the whole JSON blob.  Columnar
        mode appends the outcomes staged since the last transition to the
        sidecar store (O(1) per completed scenario) and atomically
        rewrites only the small meta file (campaign name + delivery
        attempts).
        """
        if self.journal_path is None:
            return
        if self._journal_writer is not None:
            for outcome in self._journal_pending:
                self._journal_writer.append(outcome)
            self._journal_pending.clear()
            self._journal_writer.flush()
            self._write_journal_meta()
            return
        data = {
            "campaign_name": self.campaign.name,
            "attempts": self._attempts,
            "results": self.store.to_dict(),
        }
        temp_path = f"{self.journal_path}.tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(data))
        os.replace(temp_path, self.journal_path)

    def close_journal(self) -> None:
        """Flush staged outcomes and close the append-only writer (idempotent).

        Only meaningful for columnar journals; the legacy JSON journal
        has no long-lived handle.
        """
        with self._lock:
            if self._journal_writer is None:
                return
            for outcome in self._journal_pending:
                self._journal_writer.append(outcome)
            self._journal_pending.clear()
            self._journal_writer.close()
            self._journal_writer = None

    # -- bookkeeping --------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """Whether every campaign scenario has a final outcome."""
        with self._lock:
            return all(sid in self.store.outcomes for sid in self._scenarios)

    def _emit(self, kind: str, scenario_id: str, worker: str) -> None:
        self._events.append(
            ServiceEvent(
                kind=kind,
                label=self._scenarios[scenario_id].label,
                worker=worker,
                done=len(self.store),
                total=len(self.campaign),
            )
        )

    def drain_events(self) -> List[ServiceEvent]:
        """Return (and clear) the transitions since the previous drain."""
        with self._lock:
            events = list(self._events)
            self._events.clear()
            return events

    def _reap(self, now: float) -> None:
        """Requeue (or terminally fail) scenarios whose lease expired."""
        expired = [
            lease for lease in self._leases.values() if lease.deadline <= now
        ]
        for lease in expired:
            del self._leases[lease.lease_id]
            self._lease_by_scenario.pop(lease.scenario_id, None)
            sid = lease.scenario_id
            if sid in self.store.outcomes:
                continue  # a (late) result already landed
            used = self._attempts.get(sid, 0)
            if used >= self.retry.max_attempts:
                self._record_outcome(
                    ScenarioOutcome.failure(
                        self._scenarios[sid],
                        error=(
                            f"ServiceError: lease expired after {used} delivery "
                            f"attempt(s); worker {lease.worker!r} presumed dead"
                        ),
                        traceback_text="",
                        attempts=used,
                    )
                )
                self.stats["expired_failed"] += 1
                self._emit("expired-failed", sid, lease.worker)
            else:
                self._not_before[sid] = now + self.retry.delay_for(used, sid)
                self._queue.append(sid)
                self.stats["requeued"] += 1
                self._emit("requeued", sid, lease.worker)
            self._journal()

    def tick(self) -> None:
        """Reap expired leases now.

        The serving loop calls this on a timer so partitioned workers are
        detected even when no other operation arrives.
        """
        with self._lock:
            self._reap(self._clock())

    def next_deadline(self) -> Optional[float]:
        """Earliest clock time at which coordinator state changes by itself.

        The minimum over outstanding lease deadlines and backoff
        not-before times of queued scenarios — the fault harness's fake
        scheduler (and any event-driven serving loop) advances time to
        this point when every worker is blocked.  ``None`` when nothing
        is pending.
        """
        with self._lock:
            candidates = [lease.deadline for lease in self._leases.values()]
            candidates.extend(
                self._not_before[sid] for sid in self._queue if sid in self._not_before
            )
            return min(candidates) if candidates else None

    # -- protocol operations ------------------------------------------------------
    def lease(self, worker: str, count: int = 1) -> Dict[str, Any]:
        """Grant up to ``count`` scenario leases to ``worker``."""
        if count < 1:
            raise ConfigurationError(f"lease count must be >= 1, got {count}")
        with self._lock:
            now = self._clock()
            self._workers_seen[worker] = now
            self._reap(now)
            granted: List[Dict[str, Any]] = []
            delayed: List[str] = []
            while self._queue and len(granted) < count:
                sid = self._queue.popleft()
                if sid in self.store.outcomes or sid in self._lease_by_scenario:
                    continue  # stale queue entry
                if self._not_before.get(sid, 0.0) > now:
                    delayed.append(sid)
                    continue
                self._attempts[sid] = self._attempts.get(sid, 0) + 1
                self._lease_counter += 1
                lease = _Lease(
                    lease_id=f"L{self._lease_counter}",
                    scenario_id=sid,
                    worker=worker,
                    deadline=now + self.lease_timeout_s,
                )
                self._leases[lease.lease_id] = lease
                self._lease_by_scenario[sid] = lease.lease_id
                self.stats["granted"] += 1
                granted.append(
                    {
                        "lease_id": lease.lease_id,
                        "scenario": self._scenarios[sid].to_dict(),
                        "deadline_s": self.lease_timeout_s,
                    }
                )
            self._queue.extend(delayed)
            if granted:
                self._journal()
                return {
                    "ok": True,
                    "state": STATE_GRANTED,
                    "campaign": self.campaign.name,
                    "leases": granted,
                }
            if self.finished:
                return {"ok": True, "state": STATE_DRAINED}
            # Backoff-delayed work (or work leased to other workers): tell
            # the worker when it is worth asking again.
            wait_s = self.lease_timeout_s
            for sid in self._queue:
                wait_s = min(wait_s, max(self._not_before.get(sid, 0.0) - now, 0.0))
            for lease in self._leases.values():
                wait_s = min(wait_s, max(lease.deadline - now, 0.0))
            return {
                "ok": True,
                "state": STATE_WAIT,
                "retry_after_s": max(wait_s, 0.05),
            }

    def heartbeat(self, worker: str, lease_ids: List[str]) -> Dict[str, Any]:
        """Extend the deadlines of ``worker``'s live leases."""
        with self._lock:
            now = self._clock()
            self._workers_seen[worker] = now
            self._reap(now)
            unknown: List[str] = []
            for lease_id in lease_ids:
                lease = self._leases.get(lease_id)
                if lease is None or lease.worker != worker:
                    unknown.append(lease_id)
                else:
                    lease.deadline = now + self.lease_timeout_s
            return {"ok": True, "unknown": unknown, "drained": self.finished}

    def submit(
        self, worker: str, lease_id: Optional[str], outcome: Mapping[str, Any]
    ) -> Dict[str, Any]:
        """Record a scenario outcome (idempotent; first result wins).

        A duplicated response, or a late one arriving after the lease was
        reaped and the scenario re-leased, is acknowledged and dropped:
        scenarios are deterministic functions of their spec, so the first
        recorded outcome is *the* outcome.
        """
        parsed = ScenarioOutcome.from_dict(outcome)
        with self._lock:
            now = self._clock()
            self._workers_seen[worker] = now
            sid = parsed.scenario_id
            if sid not in self._scenarios:
                return {
                    "ok": False,
                    "error": f"unknown scenario id {sid!r} "
                    f"for campaign {self.campaign.name!r}",
                }
            if lease_id is not None:
                lease = self._leases.pop(lease_id, None)
                if lease is not None:
                    self._lease_by_scenario.pop(lease.scenario_id, None)
            duplicate = sid in self.store.outcomes
            if duplicate:
                self.stats["duplicates"] += 1
            else:
                # The scenario may sit requeued (its lease expired before
                # this late submit landed): drop the stale queue entry.
                if sid in self._queue:
                    self._queue = deque(x for x in self._queue if x != sid)
                self._not_before.pop(sid, None)
                stale_lease = self._lease_by_scenario.pop(sid, None)
                if stale_lease is not None:
                    self._leases.pop(stale_lease, None)
                self._record_outcome(parsed)
                self._journal()
                self._emit("done" if parsed.ok else "failed", sid, worker)
            self._reap(now)
            return {
                "ok": True,
                "accepted": not duplicate,
                "duplicate": duplicate,
                "drained": self.finished,
            }

    def status(self, include_summary: bool = False) -> Dict[str, Any]:
        """Counts, worker liveness and (optionally) the live summary table."""
        with self._lock:
            now = self._clock()
            self._reap(now)
            done = sum(1 for outcome in self.store if outcome.ok)
            failed = len(self.store) - done
            payload: Dict[str, Any] = {
                "ok": True,
                "campaign": self.campaign.name,
                "total": len(self.campaign),
                "done": done,
                "failed": failed,
                "leased": len(self._leases),
                "pending": len(self._queue),
                "drained": self.finished,
                "workers": {
                    worker: round(now - seen, 3)
                    for worker, seen in self._workers_seen.items()
                },
                "stats": dict(self.stats),
            }
            if include_summary and len(self.store):
                from repro.analysis.reporting import format_campaign_summary

                payload["summary"] = format_campaign_summary(self.store)
            return payload

    # -- results ------------------------------------------------------------------
    def result(self) -> CampaignResult:
        """The completed store in campaign order.

        Raises :class:`~repro.errors.ServiceError` while scenarios are
        still outstanding.
        """
        with self._lock:
            if not self.finished:
                missing = len(self.campaign) - len(self.store)
                raise ServiceError(
                    f"campaign {self.campaign.name!r} still has {missing} "
                    f"scenario(s) without a final outcome"
                )
            return self.store.ordered_for(self.campaign)


def dispatch_op(coordinator: Coordinator, request: Mapping[str, Any]) -> Dict[str, Any]:
    """Route one protocol request to the coordinator (shared by transports)."""
    op = request.get("op")
    worker = str(request.get("worker", "?"))
    try:
        if op == "lease":
            return coordinator.lease(worker, int(request.get("count", 1)))
        if op == "heartbeat":
            return coordinator.heartbeat(worker, list(request.get("leases", [])))
        if op == "submit":
            return coordinator.submit(
                worker, request.get("lease_id"), request["outcome"]
            )
        if op == "status":
            return coordinator.status(bool(request.get("summary", False)))
        return {"ok": False, "error": f"unknown op {op!r}"}
    except ReproError as exc:
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------


class LocalClient:
    """In-process client: direct dispatch against a live coordinator.

    Requests and responses take a JSON round-trip so in-process behaviour
    is byte-for-byte the wire behaviour — what the fault harness proves
    locally holds over HTTP.
    """

    def __init__(self, coordinator: Coordinator) -> None:
        self.coordinator = coordinator

    def call(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        wire_request = json.loads(json.dumps(dict(request)))
        response = dispatch_op(self.coordinator, wire_request)
        return json.loads(json.dumps(response))


class HTTPClient:
    """JSON-over-HTTP client for a :class:`CoordinatorServer`."""

    def __init__(self, address: str, timeout_s: float = 30.0) -> None:
        self.address = address.rstrip("/")
        self.timeout_s = timeout_s

    def call(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        body = json.dumps(dict(request)).encode("utf-8")
        http_request = urllib_request.Request(
            f"{self.address}/rpc",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib_request.urlopen(http_request, timeout=self.timeout_s) as response:
            return json.loads(response.read().decode("utf-8"))


class _ServiceHandler(BaseHTTPRequestHandler):
    """Single-endpoint JSON POST handler (``/rpc``)."""

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            length = int(self.headers.get("Content-Length", 0))
            request = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._respond(400, {"ok": False, "error": "malformed request body"})
            return
        response = dispatch_op(self.server.coordinator, request)  # type: ignore[attr-defined]
        self._respond(200, response)

    def _respond(self, code: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # progress is streamed by the serving loop, not per-request


class CoordinatorServer(ThreadingHTTPServer):
    """HTTP front end of a :class:`Coordinator` (binds loopback by default)."""

    daemon_threads = True

    def __init__(
        self, coordinator: Coordinator, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        super().__init__((host, port), _ServiceHandler)
        self.coordinator = coordinator
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        """The server's base URL (resolved port included)."""
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Serve requests on a background daemon thread."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="campaign-coordinator", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop serving and release the socket."""
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


# ---------------------------------------------------------------------------
# Worker site
# ---------------------------------------------------------------------------

#: Bounded reconnect schedule for client calls hitting a dead coordinator.
DEFAULT_RECONNECT = RetryPolicy(max_attempts=6, backoff_s=0.2, backoff_cap_s=5.0)


@dataclass
class WorkerStats:
    """What one :meth:`WorkerSite.run` invocation accomplished."""

    completed: int = 0
    stranded: int = 0
    fallback_path: Optional[str] = None
    drained: bool = False
    errors: List[str] = field(default_factory=list)


class WorkerSite:
    """Pull-based campaign worker: lease, execute, heartbeat, submit.

    Leased scenarios run through the existing campaign executor machinery
    — ``backend="serial"`` (default) executes in this process,
    ``backend="process"`` fans a multi-scenario lease out over a local
    :class:`~repro.campaign.executor.ProcessPoolBackend` — so a site is
    just the distribution shell around the same
    :func:`~repro.campaign.executor.run_scenario_safely` path a local
    campaign uses (identical retry, timeout and outcome semantics,
    therefore identical bytes).

    Degradation: every client call retries connection failures on the
    ``reconnect`` policy's capped exponential backoff.  When the
    coordinator stays unreachable with results in hand, the results are
    checkpointed atomically to ``fallback_path`` (when configured) for a
    later ``repro-campaign merge``, and the site exits instead of
    spinning.
    """

    def __init__(
        self,
        client: Any,
        worker_id: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        lease_count: int = 1,
        poll_interval_s: float = 0.5,
        heartbeat_interval_s: Optional[float] = 2.0,
        reconnect: Optional[RetryPolicy] = None,
        fallback_path: Optional[str] = None,
        max_scenarios: Optional[int] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if lease_count < 1:
            raise ConfigurationError(f"lease_count must be >= 1, got {lease_count}")
        self.client = client
        self.worker_id = worker_id or f"site-{uuid.uuid4().hex[:8]}"
        self.retry = retry or RetryPolicy()
        self.backend = make_backend(backend, max_workers)
        self.lease_count = lease_count
        self.poll_interval_s = poll_interval_s
        self.heartbeat_interval_s = heartbeat_interval_s or None
        self.reconnect = reconnect or DEFAULT_RECONNECT
        self.fallback_path = fallback_path
        self.max_scenarios = max_scenarios
        self._sleep = sleep
        #: Optional (kind, payload) observer for progress logging.
        self.on_event: Optional[Callable[[str, Dict[str, Any]], None]] = None

    # -- plumbing -----------------------------------------------------------------
    def _call(self, request: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """One protocol call with bounded reconnect; ``None`` = unreachable."""
        request.setdefault("worker", self.worker_id)
        for attempt in range(1, self.reconnect.max_attempts + 1):
            try:
                return self.client.call(request)
            except OSError as exc:
                if attempt >= self.reconnect.max_attempts:
                    self._notify("unreachable", {"error": str(exc)})
                    return None
                self._sleep(
                    self.reconnect.delay_for(attempt, self.worker_id)
                )
        return None  # pragma: no cover - loop always returns

    def _notify(self, kind: str, payload: Dict[str, Any]) -> None:
        if self.on_event is not None:
            self.on_event(kind, payload)

    def _strand(self, outcomes: List[ScenarioOutcome], campaign_name: str) -> int:
        """Checkpoint undeliverable outcomes locally for a later merge."""
        if self.fallback_path is None or not outcomes:
            return 0
        store = (
            CampaignResult.load_checkpoint(self.fallback_path)
            or CampaignResult(campaign_name=campaign_name)
        )
        for outcome in outcomes:
            store.add(outcome)
        store.save(self.fallback_path)
        self._notify(
            "stranded", {"path": self.fallback_path, "count": len(outcomes)}
        )
        return len(outcomes)

    def _execute_leases(
        self, leases: List[Dict[str, Any]]
    ) -> List[Tuple[str, ScenarioOutcome]]:
        """Run the granted scenarios under a heartbeat, via the executor backend."""
        entries = [
            (index, ScenarioSpec.from_dict(lease["scenario"]))
            for index, lease in enumerate(leases)
        ]
        lease_ids = [lease["lease_id"] for lease in leases]
        stop = threading.Event()
        beat: Optional[threading.Thread] = None
        if self.heartbeat_interval_s is not None:
            def heartbeat_loop() -> None:
                while not stop.wait(self.heartbeat_interval_s):
                    try:
                        self.client.call(
                            {
                                "op": "heartbeat",
                                "worker": self.worker_id,
                                "leases": lease_ids,
                            }
                        )
                    except OSError:
                        pass  # reconnect logic handles persistent failure

            beat = threading.Thread(
                target=heartbeat_loop,
                name=f"heartbeat-{self.worker_id}",
                daemon=True,
            )
            beat.start()
        try:
            units = [(False, [entry]) for entry in entries]
            indexed: Dict[int, ScenarioOutcome] = {}
            for index, outcome in self.backend.run_units(units, self.retry):
                indexed[index] = outcome
        finally:
            stop.set()
            if beat is not None:
                beat.join(timeout=5.0)
        return [
            (lease_ids[index], indexed[index]) for index in sorted(indexed)
        ]

    # -- main loop ----------------------------------------------------------------
    def run(self) -> WorkerStats:
        """Work until the campaign drains or the coordinator is unreachable."""
        stats = WorkerStats(fallback_path=self.fallback_path)
        campaign_name = ""
        while True:
            if (
                self.max_scenarios is not None
                and stats.completed >= self.max_scenarios
            ):
                break
            response = self._call({"op": "lease", "count": self.lease_count})
            if response is None:
                break
            if not response.get("ok", False):
                stats.errors.append(response.get("error", "unknown error"))
                break
            state = response.get("state")
            if state == STATE_DRAINED:
                stats.drained = True
                break
            if state == STATE_WAIT:
                self._sleep(
                    min(
                        float(response.get("retry_after_s", self.poll_interval_s)),
                        self.poll_interval_s,
                    )
                )
                continue
            campaign_name = response.get("campaign", campaign_name)
            completed = self._execute_leases(response["leases"])
            undelivered: List[ScenarioOutcome] = []
            coordinator_lost = False
            for lease_id, outcome in completed:
                submit = self._call(
                    {
                        "op": "submit",
                        "lease_id": lease_id,
                        "outcome": outcome.to_dict(),
                    }
                )
                if submit is None:
                    undelivered.append(outcome)
                    coordinator_lost = True
                    continue
                if not submit.get("ok", False):
                    stats.errors.append(submit.get("error", "submit rejected"))
                    undelivered.append(outcome)
                    continue
                stats.completed += 1
                self._notify(
                    "submitted",
                    {
                        "label": outcome.label,
                        "status": outcome.status,
                        "duplicate": submit.get("duplicate", False),
                    },
                )
                if submit.get("drained"):
                    stats.drained = True
            if undelivered:
                stats.stranded += self._strand(undelivered, campaign_name)
            if coordinator_lost or stats.drained:
                break
        return stats


def run_campaign_service(
    campaign: CampaignSpec,
    num_workers: int = 2,
    retry: Optional[RetryPolicy] = None,
    worker_retry: Optional[RetryPolicy] = None,
    lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
    journal_path: Optional[str] = None,
    resume: Optional[CampaignResult] = None,
    progress: Optional[Callable[[ServiceEvent], None]] = None,
) -> CampaignResult:
    """Run ``campaign`` through the service layer, entirely in-process.

    Starts a :class:`Coordinator` plus ``num_workers`` threaded
    :class:`WorkerSite`\\ s over :class:`LocalClient` transports, streams
    transitions to ``progress``, and returns the campaign-ordered result —
    bit-identical to ``run_campaign(campaign, backend="serial")``.
    """
    if num_workers < 1:
        raise ConfigurationError(f"num_workers must be >= 1, got {num_workers}")
    coordinator = Coordinator(
        campaign,
        retry=retry,
        lease_timeout_s=lease_timeout_s,
        journal_path=journal_path,
        resume=resume,
    )
    sites = [
        WorkerSite(
            LocalClient(coordinator),
            worker_id=f"local-{index}",
            retry=worker_retry,
            poll_interval_s=0.02,
        )
        for index in range(num_workers)
    ]
    threads = [
        threading.Thread(target=site.run, name=site.worker_id, daemon=True)
        for site in sites
    ]
    for thread in threads:
        thread.start()
    try:
        while not coordinator.finished:
            coordinator.tick()
            if progress is not None:
                for event in coordinator.drain_events():
                    progress(event)
            if not any(thread.is_alive() for thread in threads):
                if coordinator.finished:
                    break
                raise ServiceError(
                    f"all {num_workers} worker(s) exited with campaign "
                    f"{campaign.name!r} incomplete"
                )
            time.sleep(0.01)
    finally:
        for thread in threads:
            thread.join(timeout=10.0)
    if progress is not None:
        for event in coordinator.drain_events():
            progress(event)
    return coordinator.result()
