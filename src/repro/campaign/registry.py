"""Factory registries resolving the names used by scenario specs.

Scenario specs reference applications, governors, clusters and probes by
*name* so they stay pure data.  This module owns the four name -> factory
registries and pre-registers the library's built-ins.  Extensions register
their own factories at import time of an importable module, which keeps
them resolvable inside process-pool workers::

    from repro.campaign import register_application

    @register_application("my-workload")
    def my_workload(num_frames=300, seed=0):
        return ...  # build an Application

Probes run in the worker immediately after a scenario's simulation, with
the live governor still in hand, and return a JSON-serialisable payload —
the only way governor internals (predictor records, learnt policy) can
cross a process boundary back to the campaign result.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.governors.conservative import ConservativeGovernor
from repro.governors.multicore_dvfs import MultiCoreDVFSGovernor
from repro.governors.ondemand import OndemandGovernor
from repro.governors.oracle import OracleGovernor
from repro.governors.performance import PerformanceGovernor
from repro.governors.powersave import PowersaveGovernor
from repro.governors.shen_rl import ShenRLGovernor
from repro.governors.userspace import UserspaceGovernor
from repro.platform.cluster import Cluster
from repro.platform.odroid_xu3 import build_a15_cluster
from repro.rtm.governor import Governor
from repro.rtm.multicore import MultiCoreRLGovernor
from repro.rtm.rl_governor import RLGovernor, RLGovernorConfig
from repro.sim.results import SimulationResult
from repro.workload.application import Application
from repro.workload.fft import fft_application
from repro.workload.parsec import parsec_application
from repro.workload.splash2 import splash2_application
from repro.workload.video import (
    ffmpeg_decode_application,
    h264_application,
    h264_football_application,
    mpeg4_application,
)

ApplicationFactory = Callable[..., Application]
GovernorFactory = Callable[..., Governor]
ClusterFactory = Callable[..., Cluster]
#: Probes receive ``(governor, result, **params)`` and return a JSON payload.
ProbeFactory = Callable[..., Dict[str, Any]]

_APPLICATIONS: Dict[str, ApplicationFactory] = {}
_GOVERNORS: Dict[str, GovernorFactory] = {}
_CLUSTERS: Dict[str, ClusterFactory] = {}
_PROBES: Dict[str, ProbeFactory] = {}


def _register(registry: Dict[str, Callable], kind: str, name: str, factory: Optional[Callable]):
    if factory is None:  # decorator form
        def decorator(func: Callable) -> Callable:
            _register(registry, kind, name, func)
            return func

        return decorator
    if not name:
        raise ConfigurationError(f"{kind} registry names must be non-empty")
    registry[name] = factory
    return factory


def register_application(name: str, factory: Optional[ApplicationFactory] = None):
    """Register an application factory (usable as a decorator)."""
    return _register(_APPLICATIONS, "application", name, factory)


def register_governor(name: str, factory: Optional[GovernorFactory] = None):
    """Register a governor factory (usable as a decorator)."""
    return _register(_GOVERNORS, "governor", name, factory)


def register_cluster(name: str, factory: Optional[ClusterFactory] = None):
    """Register a cluster builder (usable as a decorator)."""
    return _register(_CLUSTERS, "cluster", name, factory)


def register_probe(name: str, factory: Optional[ProbeFactory] = None):
    """Register a post-run probe (usable as a decorator)."""
    return _register(_PROBES, "probe", name, factory)


def _resolve(registry: Dict[str, Callable], kind: str, name: str) -> Callable:
    try:
        return registry[name]
    except KeyError as exc:
        known = ", ".join(sorted(registry)) or "<none>"
        raise ConfigurationError(
            f"unknown {kind} {name!r}; registered {kind}s: {known}"
        ) from exc


def application_factory(name: str) -> ApplicationFactory:
    """The registered application factory called ``name``."""
    return _resolve(_APPLICATIONS, "application", name)


def governor_factory(name: str) -> GovernorFactory:
    """The registered governor factory called ``name``."""
    return _resolve(_GOVERNORS, "governor", name)


def cluster_factory(name: str) -> ClusterFactory:
    """The registered cluster builder called ``name``."""
    return _resolve(_CLUSTERS, "cluster", name)


def probe_factory(name: str) -> ProbeFactory:
    """The registered probe called ``name``."""
    return _resolve(_PROBES, "probe", name)


def registered_names() -> Dict[str, List[str]]:
    """All registered names per registry (for CLI / error reporting)."""
    return {
        "applications": sorted(_APPLICATIONS),
        "governors": sorted(_GOVERNORS),
        "clusters": sorted(_CLUSTERS),
        "probes": sorted(_PROBES),
    }


# ---------------------------------------------------------------------------
# Built-in applications: the paper's workloads.
# ---------------------------------------------------------------------------
register_application("mpeg4", mpeg4_application)
register_application("h264", h264_application)
register_application("h264-football", h264_football_application)
register_application("fft", fft_application)
register_application("ffmpeg-decode", ffmpeg_decode_application)
register_application("parsec", parsec_application)
register_application("splash2", splash2_application)


# ---------------------------------------------------------------------------
# Built-in governors.  The RL governors accept the flat RLGovernorConfig
# scalars (ewma_gamma, workload_levels, ...) as keyword parameters so specs
# can sweep them without embedding non-JSON config objects.
# ---------------------------------------------------------------------------
def _rl_factory(governor_cls: type) -> GovernorFactory:
    def build(**config_kwargs: Any) -> Governor:
        if config_kwargs:
            return governor_cls(RLGovernorConfig(**config_kwargs))
        return governor_cls()

    return build


register_governor("proposed", _rl_factory(MultiCoreRLGovernor))
register_governor("proposed-single", _rl_factory(RLGovernor))
register_governor("shen-upd", lambda **kw: ShenRLGovernor(RLGovernorConfig(**kw)) if kw else ShenRLGovernor())
register_governor("ondemand", OndemandGovernor)
register_governor("conservative", ConservativeGovernor)
register_governor("performance", PerformanceGovernor)
register_governor("powersave", PowersaveGovernor)
register_governor("userspace", UserspaceGovernor)
register_governor("multicore-dvfs", MultiCoreDVFSGovernor)
register_governor("oracle", OracleGovernor)


# ---------------------------------------------------------------------------
# Built-in clusters.
# ---------------------------------------------------------------------------
register_cluster("a15", build_a15_cluster)


# ---------------------------------------------------------------------------
# Built-in probes.
# ---------------------------------------------------------------------------
@register_probe("rl-prediction")
def rl_prediction_probe(
    governor: Governor,
    result: SimulationResult,
    core: int = 0,
    early_window: int = 100,
) -> Dict[str, Any]:
    """Workload-prediction internals of an RL governor (the Fig. 3 series).

    Returns the predicted/actual cycle series of ``core``'s predictor, the
    average-slack history, and the mean misprediction split at
    ``early_window`` frames.
    """
    if isinstance(governor, MultiCoreRLGovernor):
        predictor = governor.core_predictors[core]
    elif isinstance(governor, RLGovernor):
        predictor = governor.predictor
    else:
        raise ConfigurationError(
            f"rl-prediction probe requires an RL governor, got {governor.name!r}"
        )
    records = predictor.records
    early = predictor.misprediction_stats(0, early_window)
    late = predictor.misprediction_stats(early_window, None)
    return {
        "predicted_cycles": [r.predicted for r in records],
        "actual_cycles": [r.actual for r in records],
        "average_slack": list(governor.slack_tracker.history),
        "early_misprediction_percent": early.mean_percent,
        "late_misprediction_percent": late.mean_percent,
        "exploration_count": governor.exploration_count,
        "ewma_gamma": governor.config.ewma_gamma,
    }


@register_probe("rl-policy")
def rl_policy_probe(governor: Governor, result: SimulationResult) -> Dict[str, Any]:
    """The learnt greedy policy of an RL governor, per visited state."""
    if not isinstance(governor, RLGovernor):
        raise ConfigurationError(
            f"rl-policy probe requires an RL governor, got {governor.name!r}"
        )
    table = governor.agent.qtable
    state_space = governor.state_space
    vf_table = governor.platform.vf_table
    rows: List[Tuple[int, int, float]] = []
    for state in range(table.num_states):
        best = table.best_action(state)
        if table.visit_count(state, best) == 0:
            continue
        workload_level, slack_level = state_space.decompose(state)
        rows.append((workload_level, slack_level, vf_table[best].frequency_mhz))
    return {
        "greedy_policy": [
            {"workload_level": w, "slack_level": s, "frequency_mhz": f}
            for w, s, f in rows
        ],
        "exploration_count": governor.exploration_count,
        "converged_epoch": governor.converged_epoch,
    }
