"""``repro-campaign`` — run and merge campaign result stores from the shell.

Usage::

    repro-campaign spec.json --backend process --workers 4 --output results.json
    repro-campaign spec.json --resume results.json --output results.json
    repro-campaign spec.json --checkpoint ckpt.json --checkpoint-every 5 --retries 2
    repro-campaign spec.json --shard 0/2 --output shard0.json
    repro-campaign spec.json --engine scalar --output reference.json
    repro-campaign merge shard0.json shard1.json --spec spec.json --output merged.json
    repro-campaign --list

The spec file is a :class:`~repro.campaign.spec.CampaignSpec` JSON document
(``CampaignSpec.save`` writes one).  With ``--resume``, scenarios already
``done`` in the given results file are skipped (``failed`` ones re-run);
``--checkpoint`` additionally rewrites the store atomically every
``--checkpoint-every`` completions — and on Ctrl-C — so a crashed or killed
campaign resumes from its last checkpoint instead of starting over (an
existing checkpoint file is picked up automatically).  ``--shard I/N`` runs
the deterministic 1/N slice of the campaign; the ``merge`` subcommand
unions shard result files back into the store an unsharded run would
produce (pass ``--spec`` to verify completeness and restore campaign
order).
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_campaign_summary
from repro.campaign.executor import (
    BACKENDS,
    CampaignExecutor,
    CampaignInterrupted,
    RetryPolicy,
    table_cache_stats,
)
from repro.errors import ConfigurationError, ReproError
from repro.campaign.registry import registered_names
from repro.campaign.results import CampaignResult
from repro.campaign.spec import CampaignSpec
from repro.sim import backends as sim_backends

#: Everything spec/results parsing+validation can raise: I/O and JSON errors,
#: missing keys, spec validation, unexpected fields.
LOAD_ERRORS = (OSError, ValueError, KeyError, TypeError, ConfigurationError)

#: Exit codes: hard usage/configuration error vs completed-with-failures.
EXIT_USAGE = 2
EXIT_FAILED_SCENARIOS = 1
EXIT_INTERRUPTED = 130


def _print_registries() -> None:
    for kind, names in registered_names().items():
        print(f"{kind}:")
        for name in names:
            print(f"  {name}")


def _parse_shard(text: str) -> Tuple[int, int]:
    """Parse an ``I/N`` shard selector into ``(index, count)``."""
    try:
        index_text, count_text = text.split("/", 1)
        return int(index_text), int(count_text)
    except ValueError:
        raise ConfigurationError(
            f"--shard expects INDEX/COUNT (e.g. 0/2), got {text!r}"
        ) from None


def _load_resume_stores(
    resume_path: Optional[str], checkpoint_path: Optional[str]
) -> Optional[CampaignResult]:
    """Combine ``--resume`` and an existing ``--checkpoint`` file into one store."""
    stores: List[CampaignResult] = []
    if resume_path:
        stores.append(CampaignResult.load(resume_path))
    if checkpoint_path:
        try:
            stores.append(CampaignResult.load(checkpoint_path))
        except FileNotFoundError:
            pass  # first run: the checkpoint file does not exist yet
    if not stores:
        return None
    combined = CampaignResult(campaign_name=stores[0].campaign_name)
    for store in stores:
        for outcome in store:
            combined.add(outcome)
    return combined


def _run_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(prog="repro-campaign", description=__doc__)
    parser.add_argument("spec", nargs="?", help="path to a CampaignSpec JSON file")
    parser.add_argument(
        "--backend", choices=BACKENDS, default="serial", help="execution backend"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="worker count for the process backend"
    )
    parser.add_argument(
        "--output", default=None, help="write the campaign results to this JSON file"
    )
    parser.add_argument(
        "--resume",
        default=None,
        help="results JSON file whose done scenarios are skipped (failed ones re-run)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        help="atomically rewrite the (partial) store to this file as scenarios "
        "complete; an existing file is resumed from automatically",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=10,
        metavar="K",
        help="completions between checkpoint writes (default 10)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-run a crashing scenario up to this many extra times before "
        "recording it as failed",
    )
    parser.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="run only the deterministic 1/N slice I of the campaign "
        "(merge the shard outputs with the merge subcommand)",
    )
    parser.add_argument(
        "--engine",
        choices=[sim_backends.AUTO] + sim_backends.backend_names(),
        default=None,
        help="pin every scenario to this simulation engine backend "
        "(overrides the specs' engine field; 'auto' negotiates the fastest "
        "eligible backend per scenario; a scenario the named backend cannot "
        "run fails with a capability-mismatch error)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=16,
        metavar="S",
        help="group up to S compatible closed-loop scenarios (same "
        "application, cluster and config) into one batched-engine step "
        "(default 16; 0 disables the batch planner)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered factories and exit"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-scenario progress lines"
    )
    arguments = parser.parse_args(argv)

    if arguments.list:
        _print_registries()
        return 0
    if not arguments.spec:
        parser.error("a campaign spec file is required (or use --list)")

    try:
        campaign = CampaignSpec.load(arguments.spec)
    except LOAD_ERRORS as exc:
        print(f"repro-campaign: cannot load campaign spec {arguments.spec!r}: {exc}",
              file=sys.stderr)
        return EXIT_USAGE
    try:
        if arguments.engine:
            campaign = CampaignSpec(
                name=campaign.name,
                scenarios=tuple(
                    replace(scenario, engine=arguments.engine)
                    for scenario in campaign.scenarios
                ),
            )
        if arguments.shard:
            shard_index, shard_count = _parse_shard(arguments.shard)
            campaign = campaign.shard(shard_index, shard_count)
        resume = _load_resume_stores(arguments.resume, arguments.checkpoint)
    except LOAD_ERRORS as exc:
        print(f"repro-campaign: {exc}", file=sys.stderr)
        return EXIT_USAGE
    try:
        executor = CampaignExecutor(
            backend=arguments.backend,
            max_workers=arguments.workers,
            retry=RetryPolicy(max_attempts=arguments.retries + 1),
            batch_size=arguments.batch_size,
        )
    except ConfigurationError as exc:
        print(f"repro-campaign: {exc}", file=sys.stderr)
        return EXIT_USAGE

    def progress(label: str, done: int, total: int) -> None:
        if not arguments.quiet:
            print(f"[{done}/{total}] {label}", file=sys.stderr)

    started = time.perf_counter()
    try:
        store = executor.run(
            campaign,
            resume=resume,
            progress=progress,
            checkpoint_path=arguments.checkpoint,
            checkpoint_every=arguments.checkpoint_every,
        )
    except CampaignInterrupted as interrupted:
        # Never lose completed work on Ctrl-C: the executor already saved
        # the checkpoint (if one was configured); otherwise persist the
        # partial store to --output so the run can be resumed from it.
        print(f"repro-campaign: {interrupted}", file=sys.stderr)
        if interrupted.checkpoint_path is None and arguments.output:
            interrupted.partial.save(arguments.output)
            print(
                f"repro-campaign: partial results saved to {arguments.output}",
                file=sys.stderr,
            )
        return EXIT_INTERRUPTED
    except ConfigurationError as exc:
        print(f"repro-campaign: {exc}", file=sys.stderr)
        return EXIT_USAGE
    elapsed = time.perf_counter() - started

    # Persist before printing: a broken stdout pipe (e.g. `| head`) must not
    # lose the results of a long campaign.
    if arguments.output:
        store.save(arguments.output)
    # The table cache lives per process: only the serial backend's counters
    # describe this run (process-pool workers each kept their own).
    cache_stats = table_cache_stats() if arguments.backend == "serial" else None
    print(format_campaign_summary(store, cache_stats=cache_stats))
    print(f"completed in {elapsed:.1f} s on the {arguments.backend!r} backend")
    if arguments.output:
        print(f"results written to {arguments.output}")
    return EXIT_FAILED_SCENARIOS if store.failed() else 0


def _merge_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-campaign merge",
        description="Union shard result files by scenario id (conflict = error).",
    )
    parser.add_argument("stores", nargs="+", help="shard result JSON files to merge")
    parser.add_argument(
        "--output", required=True, help="write the merged store to this JSON file"
    )
    parser.add_argument(
        "--spec",
        default=None,
        help="campaign spec JSON; when given, the merged store is verified "
        "complete and re-ordered to campaign order (bit-identical to an "
        "unsharded run)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the merged-store summary"
    )
    arguments = parser.parse_args(argv)

    try:
        stores = [CampaignResult.load(path) for path in arguments.stores]
    except LOAD_ERRORS as exc:
        print(f"repro-campaign merge: cannot load result store: {exc}", file=sys.stderr)
        return EXIT_USAGE
    try:
        merged = CampaignResult.merge(stores)
        if arguments.spec:
            campaign = CampaignSpec.load(arguments.spec)
            merged = merged.ordered_for(campaign)
    except (ReproError,) + LOAD_ERRORS as exc:
        print(f"repro-campaign merge: {exc}", file=sys.stderr)
        return EXIT_USAGE

    merged.save(arguments.output)
    if not arguments.quiet:
        print(format_campaign_summary(merged))
    print(
        f"merged {len(arguments.stores)} store(s), {len(merged)} scenarios "
        f"-> {arguments.output}"
    )
    return EXIT_FAILED_SCENARIOS if merged.failed() else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "merge":
        return _merge_main(arguments[1:])
    return _run_main(arguments)


if __name__ == "__main__":
    raise SystemExit(main())
