"""``repro-campaign`` — run a campaign spec from JSON on any backend.

Usage::

    repro-campaign spec.json --backend process --workers 4 --output results.json
    repro-campaign spec.json --resume results.json --output results.json
    repro-campaign --list

The spec file is a :class:`~repro.campaign.spec.CampaignSpec` JSON document
(``CampaignSpec.save`` writes one).  With ``--resume``, scenarios already
present in the given results file are skipped; with ``--output``, the full
result store is written back as JSON for later analysis or further resume.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.campaign.executor import BACKENDS, CampaignExecutor
from repro.errors import ConfigurationError
from repro.campaign.registry import registered_names
from repro.campaign.results import CampaignResult
from repro.campaign.spec import CampaignSpec


def _print_registries() -> None:
    for kind, names in registered_names().items():
        print(f"{kind}:")
        for name in names:
            print(f"  {name}")


def _summarise(store: CampaignResult) -> str:
    lines = [f"campaign {store.campaign_name!r}: {len(store)} scenarios"]
    for outcome in store:
        result = outcome.result
        lines.append(
            f"  {outcome.label:32s} energy={result.total_energy_j:9.2f} J  "
            f"perf={result.normalized_performance:5.2f}  "
            f"miss={result.deadline_miss_ratio:6.1%}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-campaign", description=__doc__)
    parser.add_argument("spec", nargs="?", help="path to a CampaignSpec JSON file")
    parser.add_argument(
        "--backend", choices=BACKENDS, default="serial", help="execution backend"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="worker count for the process backend"
    )
    parser.add_argument(
        "--output", default=None, help="write the campaign results to this JSON file"
    )
    parser.add_argument(
        "--resume",
        default=None,
        help="results JSON file whose completed scenarios are skipped",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered factories and exit"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-scenario progress lines"
    )
    arguments = parser.parse_args(argv)

    if arguments.list:
        _print_registries()
        return 0
    if not arguments.spec:
        parser.error("a campaign spec file is required (or use --list)")

    #: Everything spec parsing/validation can raise: I/O and JSON errors,
    #: missing keys, CampaignSpec/ScenarioSpec validation, unexpected fields.
    load_errors = (OSError, ValueError, KeyError, TypeError, ConfigurationError)
    try:
        campaign = CampaignSpec.load(arguments.spec)
    except load_errors as exc:
        print(f"repro-campaign: cannot load campaign spec {arguments.spec!r}: {exc}",
              file=sys.stderr)
        return 2
    try:
        resume = CampaignResult.load(arguments.resume) if arguments.resume else None
    except load_errors as exc:
        print(f"repro-campaign: cannot load resume file {arguments.resume!r}: {exc}",
              file=sys.stderr)
        return 2
    try:
        executor = CampaignExecutor(backend=arguments.backend, max_workers=arguments.workers)
    except ConfigurationError as exc:
        print(f"repro-campaign: {exc}", file=sys.stderr)
        return 2

    def progress(label: str, done: int, total: int) -> None:
        if not arguments.quiet:
            print(f"[{done}/{total}] {label}", file=sys.stderr)

    started = time.perf_counter()
    try:
        store = executor.run(campaign, resume=resume, progress=progress)
    except ConfigurationError as exc:
        # Typically an unregistered application/governor/probe name in the
        # spec (possibly re-raised from a pool worker).
        print(f"repro-campaign: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started

    # Persist before printing: a broken stdout pipe (e.g. `| head`) must not
    # lose the results of a long campaign.
    if arguments.output:
        store.save(arguments.output)
    print(_summarise(store))
    print(f"completed in {elapsed:.1f} s on the {arguments.backend!r} backend")
    if arguments.output:
        print(f"results written to {arguments.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
