"""``repro-campaign`` — run, serve, and merge campaigns from the shell.

Usage::

    repro-campaign spec.json --backend process --workers 4 --output results.json
    repro-campaign spec.json --resume results.json --output results.json
    repro-campaign spec.json --checkpoint ckpt.json --checkpoint-every 5 --retries 2
    repro-campaign spec.json --shard 0/2 --output shard0.json
    repro-campaign spec.json --engine scalar --output reference.json
    repro-campaign spec.json --store arrow --checkpoint ckpt.bin --output results.bin
    repro-campaign merge shard0.json shard1.json --spec spec.json --output merged.json
    repro-campaign serve spec.json --port 8765 --journal journal.json --output results.json
    repro-campaign work --coordinator http://127.0.0.1:8765
    repro-campaign --list

The spec file is a :class:`~repro.campaign.spec.CampaignSpec` JSON document
(``CampaignSpec.save`` writes one).  With ``--resume``, scenarios already
``done`` in the given results file are skipped (``failed`` ones re-run);
``--checkpoint`` additionally rewrites the store atomically every
``--checkpoint-every`` completions — and on Ctrl-C — so a crashed or killed
campaign resumes from its last checkpoint instead of starting over (an
existing checkpoint file is picked up automatically; a truncated or
corrupt one is quarantined with a warning instead of aborting the run).
``--shard I/N`` runs the deterministic 1/N slice of the campaign; the
``merge`` subcommand streams shard result files back into the store an
unsharded run would produce — never holding more than one shard's batch
in memory (pass ``--spec`` to verify completeness and restore campaign
order).  ``--store`` picks the on-disk format (see
:mod:`repro.campaign.store`): ``json`` is the legacy monolithic document,
``arrow`` the columnar append-only store, ``auto`` (the default) uses
columnar when pyarrow is installed and json otherwise.  With a columnar
store, ``--checkpoint`` appends each outcome in O(1) instead of rewriting
the whole store every ``--checkpoint-every`` completions.

``serve`` starts the fault-tolerant coordinator of
:mod:`repro.campaign.service`: scenarios are handed to ``work`` sites as
leases with deadlines, heartbeats keep leases alive, and dead or
partitioned workers have their scenarios requeued on a capped
exponential backoff — the merged result is bit-identical to an unsharded
serial run.  ``work`` runs one pull-based worker site against a serving
coordinator (any number may join or leave mid-campaign).
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from typing import List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_campaign_summary
from repro.campaign.executor import (
    BACKENDS,
    CampaignExecutor,
    CampaignInterrupted,
    RetryPolicy,
    table_cache_stats,
)
from repro.errors import ConfigurationError, ReproError
from repro.campaign import store as result_store
from repro.campaign.registry import registered_names
from repro.campaign.results import CampaignResult
from repro.campaign.service import (
    DEFAULT_DELIVERY_RETRY,
    DEFAULT_LEASE_TIMEOUT_S,
    Coordinator,
    CoordinatorServer,
    HTTPClient,
    WorkerSite,
)
from repro.campaign.spec import CampaignSpec
from repro.sim import backends as sim_backends

#: Everything spec/results parsing+validation can raise: I/O and JSON errors,
#: missing keys, spec validation, unexpected fields.
LOAD_ERRORS = (OSError, ValueError, KeyError, TypeError, ConfigurationError)

#: Exit codes: hard usage/configuration error vs completed-with-failures.
EXIT_USAGE = 2
EXIT_FAILED_SCENARIOS = 1
EXIT_INTERRUPTED = 130


def _print_registries() -> None:
    for kind, names in registered_names().items():
        print(f"{kind}:")
        for name in names:
            print(f"  {name}")


def _parse_shard(text: str) -> Tuple[int, int]:
    """Parse an ``I/N`` shard selector into ``(index, count)``."""
    try:
        index_text, count_text = text.split("/", 1)
        return int(index_text), int(count_text)
    except ValueError:
        raise ConfigurationError(
            f"--shard expects INDEX/COUNT (e.g. 0/2), got {text!r}"
        ) from None


def _load_resume_stores(
    resume_path: Optional[str], checkpoint_path: Optional[str]
) -> Optional[CampaignResult]:
    """Combine ``--resume`` and an existing ``--checkpoint`` file into one store.

    An explicitly named ``--resume`` file must parse (garbage there is a
    user error worth stopping for); the automatic checkpoint is loaded
    through the quarantining path — a file truncated by a crash
    mid-write is moved aside with a warning and the campaign restarts,
    rather than dying on a ``JSONDecodeError``.
    """
    stores: List[CampaignResult] = []
    if resume_path:
        stores.append(CampaignResult.load(resume_path))
    if checkpoint_path:
        checkpoint = CampaignResult.load_checkpoint(checkpoint_path)
        if checkpoint is not None:
            stores.append(checkpoint)
    if not stores:
        return None
    combined = CampaignResult(campaign_name=stores[0].campaign_name)
    for store in stores:
        for outcome in store:
            combined.add(outcome)
    return combined


def _run_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(prog="repro-campaign", description=__doc__)
    parser.add_argument("spec", nargs="?", help="path to a CampaignSpec JSON file")
    parser.add_argument(
        "--backend", choices=BACKENDS, default="serial", help="execution backend"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="worker count for the process backend"
    )
    parser.add_argument(
        "--output", default=None, help="write the campaign results to this JSON file"
    )
    parser.add_argument(
        "--resume",
        default=None,
        help="results JSON file whose done scenarios are skipped (failed ones re-run)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        help="atomically rewrite the (partial) store to this file as scenarios "
        "complete; an existing file is resumed from automatically",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=10,
        metavar="K",
        help="completions between checkpoint writes (default 10)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-run a crashing scenario up to this many extra times before "
        "recording it as failed",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.0,
        metavar="S",
        help="base seconds between retry attempts; grows exponentially per "
        "attempt (capped, with deterministic jitter)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-scenario wall-clock budget; a scenario still running after "
        "S seconds is recorded as failed with a timeout error",
    )
    parser.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="run only the deterministic 1/N slice I of the campaign "
        "(merge the shard outputs with the merge subcommand)",
    )
    parser.add_argument(
        "--engine",
        choices=[sim_backends.AUTO] + sim_backends.backend_names(),
        default=None,
        help="pin every scenario to this simulation engine backend "
        "(overrides the specs' engine field; 'auto' negotiates the fastest "
        "eligible backend per scenario; a scenario the named backend cannot "
        "run fails with a capability-mismatch error)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=16,
        metavar="S",
        help="group up to S compatible closed-loop scenarios (same "
        "application, cluster and config) into one batched-engine step "
        "(default 16; 0 disables the batch planner)",
    )
    parser.add_argument(
        "--store",
        choices=result_store.STORE_CHOICES,
        default=result_store.STORE_AUTO,
        help="result/checkpoint file format: 'json' is the legacy "
        "monolithic blob, 'arrow' the append-only columnar store "
        "(jsonl-encoded when pyarrow is missing), 'auto' negotiates "
        "arrow when available and falls back to json (default)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered factories and exit"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-scenario progress lines"
    )
    arguments = parser.parse_args(argv)

    if arguments.list:
        _print_registries()
        return 0
    if not arguments.spec:
        parser.error("a campaign spec file is required (or use --list)")

    try:
        campaign = CampaignSpec.load(arguments.spec)
    except LOAD_ERRORS as exc:
        print(f"repro-campaign: cannot load campaign spec {arguments.spec!r}: {exc}",
              file=sys.stderr)
        return EXIT_USAGE
    try:
        if arguments.engine:
            campaign = CampaignSpec(
                name=campaign.name,
                scenarios=tuple(
                    replace(scenario, engine=arguments.engine)
                    for scenario in campaign.scenarios
                ),
            )
        if arguments.shard:
            shard_index, shard_count = _parse_shard(arguments.shard)
            campaign = campaign.shard(shard_index, shard_count)
        resume = _load_resume_stores(arguments.resume, arguments.checkpoint)
    except LOAD_ERRORS as exc:
        print(f"repro-campaign: {exc}", file=sys.stderr)
        return EXIT_USAGE
    try:
        executor = CampaignExecutor(
            backend=arguments.backend,
            max_workers=arguments.workers,
            retry=RetryPolicy(
                max_attempts=arguments.retries + 1,
                backoff_s=arguments.retry_backoff,
                timeout_s=arguments.timeout,
            ),
            batch_size=arguments.batch_size,
            store=arguments.store,
        )
    except ConfigurationError as exc:
        print(f"repro-campaign: {exc}", file=sys.stderr)
        return EXIT_USAGE

    def progress(label: str, done: int, total: int) -> None:
        if not arguments.quiet:
            print(f"[{done}/{total}] {label}", file=sys.stderr)

    started = time.perf_counter()
    try:
        store = executor.run(
            campaign,
            resume=resume,
            progress=progress,
            checkpoint_path=arguments.checkpoint,
            checkpoint_every=arguments.checkpoint_every,
        )
    except CampaignInterrupted as interrupted:
        # Never lose completed work on Ctrl-C: the executor already saved
        # the checkpoint (if one was configured); otherwise persist the
        # partial store to --output so the run can be resumed from it.
        print(f"repro-campaign: {interrupted}", file=sys.stderr)
        if interrupted.checkpoint_path is None and arguments.output:
            interrupted.partial.save(arguments.output, store=arguments.store)
            print(
                f"repro-campaign: partial results saved to {arguments.output}",
                file=sys.stderr,
            )
        return EXIT_INTERRUPTED
    except ConfigurationError as exc:
        print(f"repro-campaign: {exc}", file=sys.stderr)
        return EXIT_USAGE
    elapsed = time.perf_counter() - started

    # Persist before printing: a broken stdout pipe (e.g. `| head`) must not
    # lose the results of a long campaign.
    if arguments.output:
        store.save(arguments.output, store=arguments.store)
    # The table cache lives per process: only the serial backend's counters
    # describe this run (process-pool workers each kept their own).
    cache_stats = table_cache_stats() if arguments.backend == "serial" else None
    print(format_campaign_summary(store, cache_stats=cache_stats))
    print(f"completed in {elapsed:.1f} s on the {arguments.backend!r} backend")
    if arguments.output:
        print(f"results written to {arguments.output}")
    return EXIT_FAILED_SCENARIOS if store.failed() else 0


def _merge_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-campaign merge",
        description="Streaming union of shard result files by scenario id "
        "(conflict = error); never holds more than one shard in memory.",
    )
    parser.add_argument(
        "stores", nargs="+", help="shard result files to merge (either format)"
    )
    parser.add_argument(
        "--output", required=True, help="write the merged store to this file"
    )
    parser.add_argument(
        "--spec",
        default=None,
        help="campaign spec JSON; when given, the merged store is verified "
        "complete and re-ordered to campaign order (bit-identical to an "
        "unsharded run)",
    )
    parser.add_argument(
        "--store",
        choices=result_store.STORE_CHOICES,
        default=result_store.STORE_AUTO,
        help="output format (input formats are auto-detected per shard)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the merged-store summary"
    )
    arguments = parser.parse_args(argv)

    try:
        campaign = CampaignSpec.load(arguments.spec) if arguments.spec else None
        stats = result_store.merge_store_files(
            arguments.stores,
            arguments.output,
            spec=campaign,
            store=arguments.store,
        )
    except (ReproError,) + LOAD_ERRORS as exc:
        print(f"repro-campaign merge: {exc}", file=sys.stderr)
        return EXIT_USAGE

    # Lazy reload for the summary + exit code: columnar outputs answer
    # from cached metrics without touching any frames.
    merged = CampaignResult.load(arguments.output, lazy=True)
    if not arguments.quiet:
        print(format_campaign_summary(merged))
    print(
        f"merged {stats.stores} store(s), {stats.scenarios} scenarios "
        f"({stats.duplicates} duplicate(s)) -> {arguments.output}"
    )
    return EXIT_FAILED_SCENARIOS if merged.failed() else 0


def _serve_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-campaign serve",
        description="Serve a campaign to pull-based worker sites "
        "(leases + heartbeats + journalled state; see repro.campaign.service).",
    )
    parser.add_argument("spec", help="path to a CampaignSpec JSON file")
    parser.add_argument(
        "--host", default="127.0.0.1", help="interface to bind (default loopback)"
    )
    parser.add_argument(
        "--port", type=int, default=0, help="TCP port (default 0 = pick a free one)"
    )
    parser.add_argument(
        "--output", default=None, help="write the merged campaign results here"
    )
    parser.add_argument(
        "--journal",
        default=None,
        help="journal every state transition to this file; an existing "
        "journal is resumed from (a corrupt one is quarantined). With a "
        "columnar --store, outcomes append to <journal>.outcomes in O(1) "
        "per completion instead of rewriting the whole journal",
    )
    parser.add_argument(
        "--resume",
        default=None,
        help="results JSON file whose done scenarios are skipped "
        "(failed ones re-run, delivery budget permitting)",
    )
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=DEFAULT_LEASE_TIMEOUT_S,
        metavar="S",
        help="seconds a lease survives without a heartbeat "
        f"(default {DEFAULT_LEASE_TIMEOUT_S:g})",
    )
    parser.add_argument(
        "--delivery-retries",
        type=int,
        default=DEFAULT_DELIVERY_RETRY.max_attempts - 1,
        metavar="N",
        help="extra times a scenario is re-leased after its worker died "
        "before it is recorded as failed "
        f"(default {DEFAULT_DELIVERY_RETRY.max_attempts - 1})",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=DEFAULT_DELIVERY_RETRY.backoff_s,
        metavar="S",
        help="base seconds of the requeue backoff (capped exponential with "
        f"deterministic jitter; default {DEFAULT_DELIVERY_RETRY.backoff_s:g})",
    )
    parser.add_argument(
        "--summary-every",
        type=int,
        default=0,
        metavar="K",
        help="print the live campaign summary table every K completions "
        "(default 0 = only at the end)",
    )
    parser.add_argument(
        "--store",
        choices=result_store.STORE_CHOICES,
        default=result_store.STORE_AUTO,
        help="format for the journal and --output results: json (legacy "
        "monolithic), arrow (columnar, needs pyarrow), or auto (columnar "
        "when available)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-transition progress lines"
    )
    arguments = parser.parse_args(argv)

    try:
        campaign = CampaignSpec.load(arguments.spec)
        resume = (
            CampaignResult.load(arguments.resume) if arguments.resume else None
        )
        coordinator = Coordinator(
            campaign,
            retry=RetryPolicy(
                max_attempts=arguments.delivery_retries + 1,
                backoff_s=arguments.retry_backoff,
                backoff_cap_s=max(arguments.retry_backoff, 30.0),
            ),
            lease_timeout_s=arguments.lease_timeout,
            journal_path=arguments.journal,
            journal_store=arguments.store,
            resume=resume,
        )
    except (ReproError,) + LOAD_ERRORS as exc:
        print(f"repro-campaign serve: {exc}", file=sys.stderr)
        return EXIT_USAGE

    server = CoordinatorServer(coordinator, host=arguments.host, port=arguments.port)
    server.start()
    # Parsed by scripts (benchmarks/chaos_smoke.py): keep the format stable.
    print(f"serving campaign {campaign.name!r} at {server.address}", flush=True)
    last_summary_at = len(coordinator.store)
    try:
        while not coordinator.finished:
            coordinator.tick()
            for event in coordinator.drain_events():
                if not arguments.quiet:
                    print(
                        f"[{event.done}/{event.total}] {event.kind} "
                        f"{event.label} ({event.worker})",
                        file=sys.stderr,
                    )
            done = len(coordinator.store)
            if (
                arguments.summary_every > 0
                and done - last_summary_at >= arguments.summary_every
                and done
            ):
                last_summary_at = done
                print(format_campaign_summary(coordinator.store), flush=True)
            time.sleep(0.05)
        # Let in-flight workers observe the drained state before the socket
        # disappears (their next lease call returns "drained" cleanly).
        deadline = time.monotonic() + 1.0
        while time.monotonic() < deadline:
            time.sleep(0.05)
    except KeyboardInterrupt:
        print(
            "repro-campaign serve: interrupted; state is in the journal"
            if arguments.journal
            else "repro-campaign serve: interrupted (no --journal: progress lost)",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    finally:
        server.stop()
        coordinator.close_journal()

    store = coordinator.result()
    if arguments.output:
        store.save(arguments.output, store=arguments.store)
    print(format_campaign_summary(store))
    if arguments.output:
        print(f"results written to {arguments.output}")
    return EXIT_FAILED_SCENARIOS if store.failed() else 0


def _work_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-campaign work",
        description="Run one pull-based worker site against a serving coordinator.",
    )
    parser.add_argument(
        "--coordinator",
        required=True,
        metavar="URL",
        help="base URL printed by `repro-campaign serve` "
        "(e.g. http://127.0.0.1:8765)",
    )
    parser.add_argument(
        "--id", default=None, help="stable worker id (default: random site-XXXX)"
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="serial",
        help="executor backend for leased scenarios",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="worker count for the process backend"
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="in-process re-runs of a crashing scenario before reporting failed",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.0,
        metavar="S",
        help="base seconds between in-process retry attempts",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-scenario wall-clock budget (timeout -> failed outcome)",
    )
    parser.add_argument(
        "--lease-count",
        type=int,
        default=1,
        metavar="N",
        help="scenarios to lease per request (default 1)",
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="S",
        help="seconds between lease attempts while the queue is empty",
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=2.0,
        metavar="S",
        help="seconds between heartbeats while computing (0 disables)",
    )
    parser.add_argument(
        "--fallback",
        default=None,
        metavar="PATH",
        help="checkpoint undeliverable results to this JSON file when the "
        "coordinator becomes unreachable (merge them back later)",
    )
    parser.add_argument(
        "--max-scenarios",
        type=int,
        default=None,
        metavar="N",
        help="exit after completing N scenarios (default: run until drained)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-scenario progress lines"
    )
    arguments = parser.parse_args(argv)

    try:
        site = WorkerSite(
            HTTPClient(arguments.coordinator),
            worker_id=arguments.id,
            retry=RetryPolicy(
                max_attempts=arguments.retries + 1,
                backoff_s=arguments.retry_backoff,
                timeout_s=arguments.timeout,
            ),
            backend=arguments.backend,
            max_workers=arguments.workers,
            lease_count=arguments.lease_count,
            poll_interval_s=arguments.poll,
            heartbeat_interval_s=arguments.heartbeat or None,
            fallback_path=arguments.fallback,
            max_scenarios=arguments.max_scenarios,
        )
    except ConfigurationError as exc:
        print(f"repro-campaign work: {exc}", file=sys.stderr)
        return EXIT_USAGE

    def on_event(kind: str, payload: dict) -> None:
        if arguments.quiet:
            return
        if kind == "submitted":
            print(
                f"{site.worker_id}: {payload['status']} {payload['label']}",
                file=sys.stderr,
            )
        else:
            print(f"{site.worker_id}: {kind} {payload}", file=sys.stderr)

    site.on_event = on_event
    try:
        stats = site.run()
    except KeyboardInterrupt:
        print(f"repro-campaign work: {site.worker_id} interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    print(
        f"{site.worker_id}: completed {stats.completed} scenario(s), "
        f"stranded {stats.stranded}, drained={stats.drained}"
    )
    for error in stats.errors:
        print(f"repro-campaign work: {error}", file=sys.stderr)
    return 0 if stats.drained else EXIT_FAILED_SCENARIOS


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "merge":
        return _merge_main(arguments[1:])
    if arguments and arguments[0] == "serve":
        return _serve_main(arguments[1:])
    if arguments and arguments[0] == "work":
        return _work_main(arguments[1:])
    return _run_main(arguments)


if __name__ == "__main__":
    raise SystemExit(main())
