"""Declarative scenario and campaign specifications.

A *scenario* is one complete simulation run described by data instead of
code: the application to generate, the governor to run it under, the
cluster to run it on, the engine configuration and the workload seed.
Every component is named — the names resolve against the factory
registries in :mod:`repro.campaign.registry` — so a scenario is hashable,
JSON-serialisable, and can be shipped to a worker process or a results
file unchanged.

A *campaign* is an ordered collection of scenarios with unique labels,
typically produced by :meth:`CampaignSpec.from_grid` as the cross product
application × governor × seed that the paper's tables sweep over.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.sim.engine import SimulationConfig

#: JSON-representable parameter values accepted by factory specs.
ParamValue = Union[None, bool, int, float, str, Tuple["ParamValue", ...]]


def _freeze(value: Any) -> ParamValue:
    """Canonicalise a parameter value into a hashable, JSON-stable form."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigurationError(
        f"factory parameters must be JSON scalars or sequences, got {type(value).__name__}"
    )


def _thaw(value: Any) -> Any:
    """Inverse of :func:`_freeze` for JSON emission (tuples back to lists)."""
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    return value


@dataclass(frozen=True)
class FactorySpec:
    """A named factory call: registry name plus keyword arguments.

    ``params`` is stored as a sorted tuple of ``(key, value)`` pairs so the
    spec is hashable and two specs with the same arguments in different
    order compare equal.
    """

    name: str
    params: Tuple[Tuple[str, ParamValue], ...] = ()

    @classmethod
    def of(cls, name: str, **params: Any) -> "FactorySpec":
        """Build a spec from keyword arguments (the usual constructor)."""
        frozen = tuple(sorted((key, _freeze(value)) for key, value in params.items()))
        return cls(name=name, params=frozen)

    @property
    def kwargs(self) -> Dict[str, Any]:
        """The parameters as a plain keyword dict (tuples thawed to lists)."""
        return {key: _thaw(value) for key, value in self.params}

    def with_params(self, **overrides: Any) -> "FactorySpec":
        """A copy with ``overrides`` merged over the existing parameters."""
        merged = dict(self.kwargs)
        merged.update(overrides)
        return FactorySpec.of(self.name, **merged)

    # -- JSON -----------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": {k: _thaw(v) for k, v in self.params}}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FactorySpec":
        return cls.of(data["name"], **dict(data.get("params", {})))

    def __str__(self) -> str:
        if not self.params:
            return self.name
        rendered = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.name}({rendered})"


#: Cluster used when a scenario does not name one: the paper's A15 cluster.
DEFAULT_CLUSTER = FactorySpec.of("a15")


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully described simulation run.

    Attributes
    ----------
    label:
        Unique key of the scenario inside its campaign; also the key under
        which its result is reported (e.g. ``"ondemand"`` in a Table-I
        style campaign).
    application / governor / cluster:
        Named factories resolved against the campaign registry.
    config:
        Engine configuration of the run.
    seed:
        Workload seed.  When not ``None`` it is passed to the application
        factory as its ``seed`` keyword (overriding any ``seed`` in the
        application params); leave ``None`` for factories without a seed.
    probe:
        Optional named probe executed after the run with access to the
        live governor, returning a JSON payload of governor internals
        (predictor records, learnt policy, ...) that an out-of-process
        worker could otherwise not report back.
    application_key / governor_key:
        Grid coordinates filled in by :meth:`CampaignSpec.from_grid`, used
        to select/aggregate results along grid axes.
    engine:
        Engine backend request for the run: ``"auto"`` (default) negotiates
        the fastest eligible backend; a backend name (``"scalar"``,
        ``"fastpath"``, ``"tablepath"``, ``"thermalpath"``, or a registered
        third-party backend) pins the run to that backend.  Validated
        against the backend's declared capabilities when the scenario runs
        — a scenario the named backend cannot execute fails with a clear
        capability-mismatch error instead of silently falling back.
    """

    label: str
    application: FactorySpec
    governor: FactorySpec
    cluster: FactorySpec = DEFAULT_CLUSTER
    config: SimulationConfig = field(default_factory=SimulationConfig)
    seed: Optional[int] = None
    probe: Optional[FactorySpec] = None
    application_key: str = ""
    governor_key: str = ""
    engine: str = "auto"

    def __post_init__(self) -> None:
        if not isinstance(self.engine, str) or not self.engine:
            raise ConfigurationError(
                f"scenario {self.label!r}: engine must be a non-empty backend "
                f"name or 'auto', got {self.engine!r}"
            )

    @property
    def scenario_id(self) -> str:
        """Stable content hash identifying the scenario (used for resume/merge).

        The ``engine`` request is deliberately excluded from the hash:
        every backend reproduces the same numbers (the registry's
        equivalence contract), so pinning an engine does not change *what*
        is simulated — shard outputs produced under ``--engine`` still
        merge against the original spec, and a resume matches outcomes
        recorded under a different engine pin.
        """
        canonical_dict = self.to_dict()
        canonical_dict.pop("engine", None)
        canonical = json.dumps(canonical_dict, sort_keys=True, separators=(",", ":"))
        return hashlib.sha1(canonical.encode("utf-8")).hexdigest()[:12]

    # -- JSON -----------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "label": self.label,
            "application": self.application.to_dict(),
            "governor": self.governor.to_dict(),
            "cluster": self.cluster.to_dict(),
            "config": asdict(self.config),
            "seed": self.seed,
            "application_key": self.application_key,
            "governor_key": self.governor_key,
        }
        if self.probe is not None:
            data["probe"] = self.probe.to_dict()
        # Serialised only when non-default so pre-existing scenario ids (the
        # content hashes resume/merge key on) are unchanged for auto runs.
        if self.engine != "auto":
            data["engine"] = self.engine
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        probe = data.get("probe")
        return cls(
            label=data["label"],
            application=FactorySpec.from_dict(data["application"]),
            governor=FactorySpec.from_dict(data["governor"]),
            cluster=FactorySpec.from_dict(data.get("cluster", DEFAULT_CLUSTER.to_dict())),
            config=SimulationConfig(**data.get("config", {})),
            seed=data.get("seed"),
            probe=FactorySpec.from_dict(probe) if probe else None,
            application_key=data.get("application_key", ""),
            governor_key=data.get("governor_key", ""),
            engine=data.get("engine", "auto"),
        )


def _as_spec_mapping(
    components: Union[Mapping[str, FactorySpec], Iterable[FactorySpec]],
) -> "Dict[str, FactorySpec]":
    """Normalise a grid axis into an ordered ``label -> FactorySpec`` mapping."""
    if isinstance(components, Mapping):
        return dict(components)
    mapping: Dict[str, FactorySpec] = {}
    for spec in components:
        if spec.name in mapping:
            raise ConfigurationError(
                f"duplicate grid label {spec.name!r}; pass a mapping to disambiguate"
            )
        mapping[spec.name] = spec
    return mapping


@dataclass(frozen=True)
class CampaignSpec:
    """An ordered, uniquely labelled collection of scenarios."""

    name: str
    scenarios: Tuple[ScenarioSpec, ...]

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ConfigurationError("a campaign needs at least one scenario")
        labels = [scenario.label for scenario in self.scenarios]
        duplicates = {label for label in labels if labels.count(label) > 1}
        if duplicates:
            raise ConfigurationError(
                f"campaign {self.name!r} has duplicate scenario labels: {sorted(duplicates)}"
            )

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self):
        return iter(self.scenarios)

    @property
    def labels(self) -> List[str]:
        """Scenario labels in campaign order."""
        return [scenario.label for scenario in self.scenarios]

    def scenario(self, label: str) -> ScenarioSpec:
        """The scenario with the given label."""
        for candidate in self.scenarios:
            if candidate.label == label:
                return candidate
        raise KeyError(f"campaign {self.name!r} has no scenario labelled {label!r}")

    # -- sharding -------------------------------------------------------------
    def shard(self, index: int, count: int) -> "CampaignSpec":
        """Deterministic ``1/count`` slice of the campaign by scenario index.

        Shard ``index`` keeps the scenarios whose position in the campaign
        is congruent to ``index`` modulo ``count`` — an interleaved split,
        so grid axes (which vary fastest by seed) spread evenly across
        shards.  The shards of one campaign are disjoint, cover every
        scenario, and keep the campaign's name, so their result stores
        recombine with :meth:`CampaignResult.merge
        <repro.campaign.results.CampaignResult.merge>` into exactly the
        store an unsharded run would produce.

        Raises
        ------
        ConfigurationError
            If ``index``/``count`` are out of range, or the slice is empty
            (more shards than scenarios).
        """
        if count < 1:
            raise ConfigurationError(f"shard count must be >= 1, got {count}")
        if not 0 <= index < count:
            raise ConfigurationError(
                f"shard index must be in [0, {count}), got {index}"
            )
        selected = tuple(
            scenario
            for position, scenario in enumerate(self.scenarios)
            if position % count == index
        )
        if not selected:
            raise ConfigurationError(
                f"shard {index}/{count} of campaign {self.name!r} is empty "
                f"({len(self.scenarios)} scenarios)"
            )
        return CampaignSpec(name=self.name, scenarios=selected)

    # -- grid expansion -------------------------------------------------------
    @classmethod
    def from_grid(
        cls,
        name: str,
        applications: Union[Mapping[str, FactorySpec], Iterable[FactorySpec]],
        governors: Union[Mapping[str, FactorySpec], Iterable[FactorySpec]],
        cluster: FactorySpec = DEFAULT_CLUSTER,
        config: Optional[SimulationConfig] = None,
        seeds: Sequence[Optional[int]] = (None,),
        probe: Optional[FactorySpec] = None,
        engine: str = "auto",
    ) -> "CampaignSpec":
        """Expand the cross product application × governor × seed.

        ``applications`` and ``governors`` may be mappings (label -> spec)
        or plain iterables of specs (labelled by their registry name).
        Labels are ``app/gov`` joined with ``/seed=N`` when more than one
        seed is given; with a single application the ``app/`` prefix is
        dropped so a Table-I style campaign is keyed purely by governor.
        """
        app_map = _as_spec_mapping(applications)
        gov_map = _as_spec_mapping(governors)
        if not app_map or not gov_map:
            raise ConfigurationError("from_grid needs at least one application and one governor")
        scenarios: List[ScenarioSpec] = []
        multi_app = len(app_map) > 1
        multi_seed = len(seeds) > 1
        for app_key, app_spec in app_map.items():
            for gov_key, gov_spec in gov_map.items():
                for seed in seeds:
                    parts = []
                    if multi_app:
                        parts.append(app_key)
                    parts.append(gov_key)
                    label = "/".join(parts)
                    if multi_seed:
                        label = f"{label}/seed={seed}"
                    scenarios.append(
                        ScenarioSpec(
                            label=label,
                            application=app_spec,
                            governor=gov_spec,
                            cluster=cluster,
                            config=config or SimulationConfig(),
                            seed=seed,
                            probe=probe,
                            application_key=app_key,
                            governor_key=gov_key,
                            engine=engine,
                        )
                    )
        return cls(name=name, scenarios=tuple(scenarios))

    # -- JSON -----------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "scenarios": [scenario.to_dict() for scenario in self.scenarios],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        return cls(
            name=data["name"],
            scenarios=tuple(ScenarioSpec.from_dict(item) for item in data["scenarios"]),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "CampaignSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


# Keep `fields` imported for introspection helpers used by the CLI.
_SCENARIO_FIELDS = tuple(f.name for f in fields(ScenarioSpec))
