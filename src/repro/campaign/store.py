"""Columnar on-disk campaign result store with append-only writes.

This module extends the in-memory :class:`~repro.sim.epoch.FrameColumns`
design to persistence.  A store file is::

    #repro-campaign-store {"campaign_name": ..., "encoding": ..., "version": 1}\n
    <one outcome record per line or per Arrow IPC segment>

Two encodings share that framing:

``jsonl``
    One JSON object per line.  Frames are stored *columnar* inside the
    record (``result.frames`` maps each
    :data:`~repro.sim.epoch.FRAME_COLUMN_NAMES` name to its column), so a
    record never materialises per-frame dicts.  Pure stdlib — this is the
    fallback encoding on pyarrow-less installs, mirroring the
    numpy-optional pattern in :mod:`repro._compat`.

``arrow``
    Repeated ``[8-byte little-endian length][self-contained Arrow IPC
    stream]`` segments.  Each segment holds one record batch with a
    ``meta`` JSON string column (everything except frames) plus one
    list-typed Arrow column per frame field.  Requires the ``[arrow]``
    extra (``pip install repro-biswas-date17[arrow]``); the
    ``REPRO_DISABLE_ARROW`` kill-switch turns the encoding off per
    process without reinstalling (existing Arrow files stay *readable*
    whenever pyarrow is importable — the switch gates negotiation, not
    decoding).

Both encodings are **append-only**: the executor and the distributed
service's journal append each :class:`ScenarioOutcome` as it completes
(O(1) checkpoint cost), instead of rewriting the whole campaign.  Records
carry a content ``digest`` (frames + spec + status, *excluding* the
derived ``metrics`` summary) so :func:`merge_store_files` can detect
conflicting duplicates while holding only one record in memory, and a
cached ``metrics`` summary so reporting answers summary queries without
touching frames at all.

Corruption handling carries over from the JSON checkpoints: an unreadable
store is quarantined to ``<path>.corrupt`` with a ``RuntimeWarning``
(:func:`repro.campaign.results.quarantine_corrupt_file`), and — because
records are independent — :func:`load_store_checkpoint` additionally
salvages the valid prefix of a torn file before quarantining it.

Format selection is capability-negotiated like the engine backends:
:func:`negotiate_store` maps the CLI's ``--store {auto,json,arrow}`` onto
``json`` (the legacy monolithic blob), ``jsonl`` or ``arrow``, and
:meth:`CampaignResult.load` auto-detects the format from the magic header
so readers never need to be told what they are looking at.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro._compat import HAVE_PYARROW, arrow_disabled
from repro.errors import ConfigurationError, SimulationError
from repro.campaign.results import (
    CORRUPT_CHECKPOINT_ERRORS,
    CampaignResult,
    ScenarioOutcome,
    quarantine_corrupt_file,
)
from repro.campaign.spec import CampaignSpec, ScenarioSpec
from repro.sim.epoch import FRAME_COLUMN_NAMES, FrameColumns
from repro.sim.metrics import summarize_result
from repro.sim.results import SimulationResult

#: First bytes of every columnar store file (followed by the JSON header).
MAGIC = b"#repro-campaign-store"
#: Store format version stamped into (and required from) the header.
FORMAT_VERSION = 1

#: Requested-format names (the CLI's ``--store`` choices).
STORE_AUTO = "auto"
STORE_JSON = "json"
STORE_ARROW = "arrow"
STORE_CHOICES = (STORE_AUTO, STORE_JSON, STORE_ARROW)

#: Resolved on-disk encodings of the columnar store.
ENCODING_JSONL = "jsonl"
ENCODING_ARROW = "arrow"
ENCODINGS = (ENCODING_JSONL, ENCODING_ARROW)

#: Rows per Arrow segment (and per jsonl writelines batch) in bulk saves;
#: appends write one record per segment so each completion is one flush.
STORE_CHUNK_ROWS = 256


def arrow_available() -> bool:
    """Whether the Arrow encoding may be *written* in this process."""
    return HAVE_PYARROW and not arrow_disabled()


def negotiate_store(requested: str = STORE_AUTO) -> str:
    """Resolve a requested ``--store`` format to a concrete one.

    Returns ``"json"`` (the legacy monolithic blob) or a columnar
    encoding (``"jsonl"`` / ``"arrow"``):

    * ``json`` — always the legacy blob; never columnar.
    * ``arrow`` — the columnar store, Arrow-encoded when pyarrow is
      importable and not disabled, jsonl-encoded otherwise (the columnar
      machinery is identical; only the byte encoding degrades).
    * ``auto`` — Arrow when available, otherwise the legacy ``json``
      blob, so a pyarrow-less install behaves byte-identically to one
      that predates this module (mirroring jitpath's negotiation
      fall-through).
    """
    if requested == STORE_JSON:
        return STORE_JSON
    if requested == STORE_ARROW:
        return ENCODING_ARROW if arrow_available() else ENCODING_JSONL
    if requested == STORE_AUTO:
        return ENCODING_ARROW if arrow_available() else STORE_JSON
    raise ConfigurationError(
        f"unknown result store format {requested!r}; expected one of {STORE_CHOICES}"
    )


def is_store_file(path: str) -> bool:
    """Whether ``path`` exists and starts with the columnar store magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def _pyarrow():
    """Import pyarrow or explain how to get it (never quarantines good data)."""
    if not HAVE_PYARROW:
        raise ConfigurationError(
            "this result store is Arrow-encoded but pyarrow is not installed; "
            "install the extra (pip install 'repro-biswas-date17[arrow]') to read it"
        )
    import pyarrow  # noqa: PLC0415 - deliberate lazy import (native modules)

    return pyarrow


# ---------------------------------------------------------------------------
# Record encoding: ScenarioOutcome <-> store record dict.
# ---------------------------------------------------------------------------


def _frame_columns_of(result: SimulationResult) -> Dict[str, list]:
    """The result's frames as columns, without materialising records.

    Columnar results hand out their live column lists (callers must not
    mutate them); record-backed results are scattered into fresh columns.
    """
    columns = result.columns
    if columns is not None:
        return {name: getattr(columns, name) for name in FRAME_COLUMN_NAMES}
    data: Dict[str, list] = {name: [] for name in FRAME_COLUMN_NAMES}
    for record in result.records:
        for name in FRAME_COLUMN_NAMES:
            data[name].append(getattr(record, name))
    return data


def _columns_from_lists(frames: Dict[str, Any]) -> FrameColumns:
    """Validating inverse of :func:`_frame_columns_of` (decode path)."""
    kwargs = {name: frames[name] for name in FRAME_COLUMN_NAMES}
    kwargs["cycles_per_core"] = [tuple(row) for row in kwargs["cycles_per_core"]]
    try:
        return FrameColumns(**kwargs)
    except SimulationError as exc:
        # Unify corrupt-shape detection on the checkpoint-quarantine errors.
        raise ValueError(str(exc)) from exc


def _frames_for_deferred(frames: Dict[str, Any]) -> Dict[str, list]:
    """Shape raw decoded frames for :meth:`FrameColumns.from_deferred`."""
    return {
        name: (
            [tuple(row) for row in frames[name]]
            if name == "cycles_per_core"
            else list(frames[name])
        )
        for name in FRAME_COLUMN_NAMES
    }


def record_digest(record: Dict[str, Any]) -> str:
    """Content hash of a store record, for streaming-merge conflict checks.

    Canonical JSON (sorted keys, compact separators) over everything
    except ``digest`` itself and the derived ``metrics`` summary —
    metrics are excluded because NumPy's pairwise summation and the pure
    Python fallback produce different float dust for the same frames, and
    a derived cache must never make identical outcomes look conflicting.
    """
    payload = {
        key: value
        for key, value in record.items()
        if key not in ("digest", "metrics")
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def encode_record(outcome: ScenarioOutcome) -> Dict[str, Any]:
    """Serialise one outcome to a store record (columnar frames + digest).

    The cached ``metrics`` summary is carried over from the outcome when
    present and computed once here otherwise, so every record on disk can
    answer summary queries without its frames.
    """
    record: Dict[str, Any] = {
        "scenario": outcome.scenario.to_dict(),
        "status": outcome.status,
        "attempts": outcome.attempts,
    }
    result = outcome.result
    if result is not None:
        result_data: Dict[str, Any] = {
            "governor_name": result.governor_name,
            "application_name": result.application_name,
            "reference_time_s": result.reference_time_s,
            "exploration_count": result.exploration_count,
            "converged_epoch": result.converged_epoch,
        }
        if result.engine_used:
            result_data["engine_used"] = result.engine_used
        result_data["frames"] = _frame_columns_of(result)
        record["result"] = result_data
    if outcome.probe is not None:
        record["probe"] = outcome.probe
    if outcome.error is not None:
        record["error"] = outcome.error
    if outcome.traceback is not None:
        record["traceback"] = outcome.traceback
    metrics = outcome.metrics
    if metrics is None and result is not None:
        metrics = asdict(summarize_result(result))
    if metrics is not None:
        record["metrics"] = dict(metrics)
    record["digest"] = record_digest(record)
    return record


def decode_record(
    record: Dict[str, Any],
    frames_loader: Optional[Callable[[], Dict[str, list]]] = None,
) -> ScenarioOutcome:
    """Rebuild a :class:`ScenarioOutcome` from a store record.

    With ``frames_loader`` the result's columns are deferred
    (:meth:`FrameColumns.from_deferred`): the loader re-reads the frames
    from disk on first column access, so a lazily loaded store holds only
    outcome metadata and cached metrics in memory.
    """
    result_data = record.get("result")
    result = None
    if result_data is not None:
        if frames_loader is not None:
            columns = FrameColumns.from_deferred(frames_loader)
        else:
            columns = _columns_from_lists(result_data["frames"])
        result = SimulationResult(
            governor_name=result_data["governor_name"],
            application_name=result_data["application_name"],
            reference_time_s=result_data["reference_time_s"],
            columns=columns,
            exploration_count=result_data.get("exploration_count", 0),
            converged_epoch=result_data.get("converged_epoch"),
            engine_used=result_data.get("engine_used", ""),
        )
    return ScenarioOutcome(
        scenario=ScenarioSpec.from_dict(record["scenario"]),
        result=result,
        probe=record.get("probe"),
        status=record["status"],
        error=record.get("error"),
        traceback=record.get("traceback"),
        attempts=record.get("attempts", 1),
        metrics=record.get("metrics"),
    )


# ---------------------------------------------------------------------------
# File framing: header line + jsonl lines / length-prefixed Arrow segments.
# ---------------------------------------------------------------------------


def _header_line(campaign_name: str, encoding: str) -> bytes:
    meta = {
        "campaign_name": campaign_name,
        "encoding": encoding,
        "version": FORMAT_VERSION,
    }
    return MAGIC + b" " + json.dumps(meta, sort_keys=True).encode("utf-8") + b"\n"


def _read_header(handle) -> Dict[str, Any]:
    """Parse the header line; the handle is left at the first record."""
    line = handle.readline()
    if not line.startswith(MAGIC + b" "):
        raise ValueError("not a repro campaign store file (missing magic header)")
    meta = json.loads(line[len(MAGIC) + 1 :].decode("utf-8"))
    if not isinstance(meta, dict):
        raise ValueError("store header is not a JSON object")
    version = meta.get("version")
    if version != FORMAT_VERSION:
        # A future format is a setup problem, not corruption: never
        # quarantine a file a newer build wrote deliberately.
        raise ConfigurationError(
            f"result store {getattr(handle, 'name', '?')!r} has format version "
            f"{version!r}; this build reads version {FORMAT_VERSION}"
        )
    if meta.get("encoding") not in ENCODINGS:
        raise ValueError(f"unknown store encoding {meta.get('encoding')!r}")
    if "campaign_name" not in meta:
        raise ValueError("store header has no campaign_name")
    return meta


_ARROW_META_COLUMN = "meta"


def _arrow_schema(pa):
    fields = [pa.field(_ARROW_META_COLUMN, pa.string())]
    for name in FRAME_COLUMN_NAMES:
        if name in ("index", "operating_index"):
            value_type = pa.int64()
        elif name == "explored":
            value_type = pa.bool_()
        elif name == "cycles_per_core":
            value_type = pa.list_(pa.float64())
        else:
            value_type = pa.float64()
        fields.append(pa.field(name, pa.list_(value_type)))
    return pa.schema(fields)


def _arrow_segment(records: Sequence[Dict[str, Any]]) -> bytes:
    """Encode records as one length-prefixed, self-contained IPC segment."""
    pa = _pyarrow()
    schema = _arrow_schema(pa)
    metas: List[str] = []
    frame_columns: Dict[str, List[Optional[list]]] = {
        name: [] for name in FRAME_COLUMN_NAMES
    }
    for record in records:
        result_data = record.get("result")
        meta = dict(record)
        if result_data is not None:
            meta["result"] = {
                key: value for key, value in result_data.items() if key != "frames"
            }
            frames = result_data["frames"]
            for name in FRAME_COLUMN_NAMES:
                frame_columns[name].append(list(frames[name]))
        else:
            for name in FRAME_COLUMN_NAMES:
                frame_columns[name].append(None)
        metas.append(json.dumps(meta))
    arrays = [pa.array(metas, type=pa.string())]
    for field in schema[1:]:
        arrays.append(pa.array(frame_columns[field.name], type=field.type))
    batch = pa.record_batch(arrays, schema=schema)
    sink = io.BytesIO()
    with pa.ipc.new_stream(sink, schema) as writer:
        writer.write_batch(batch)
    payload = sink.getvalue()
    return len(payload).to_bytes(8, "little") + payload


def _arrow_segment_table(payload: bytes):
    pa = _pyarrow()
    with pa.ipc.open_stream(io.BytesIO(payload)) as reader:
        return reader.read_all()


def _arrow_segment_records(
    payload: bytes, include_frames: bool
) -> List[Dict[str, Any]]:
    """Decode one segment back to store records (optionally with frames)."""
    table = _arrow_segment_table(payload)
    metas = table.column(_ARROW_META_COLUMN).to_pylist()
    records: List[Dict[str, Any]] = []
    frames_by_name = (
        {name: table.column(name).to_pylist() for name in FRAME_COLUMN_NAMES}
        if include_frames
        else None
    )
    for row, meta_json in enumerate(metas):
        record = json.loads(meta_json)
        if not isinstance(record, dict):
            raise ValueError("arrow segment meta row is not a JSON object")
        if include_frames and record.get("result") is not None:
            record["result"]["frames"] = {
                name: frames_by_name[name][row] for name in FRAME_COLUMN_NAMES
            }
        records.append(record)
    return records


def _arrow_segment_frames(payload: bytes, row: int) -> Dict[str, list]:
    """Extract one row's frame columns from a segment (lazy loaders)."""
    table = _arrow_segment_table(payload)
    return {name: table.column(name)[row].as_py() for name in FRAME_COLUMN_NAMES}


# ---------------------------------------------------------------------------
# Writer: create / append / flush.
# ---------------------------------------------------------------------------


class StoreWriter:
    """Append-only writer for one columnar store file.

    ``create`` starts a fresh file (header included); ``open_append``
    reopens an existing one and keeps appending in its encoding.  Each
    :meth:`append` call writes exactly one record — a single
    ``handle.write`` of a whole line/segment followed by
    :meth:`flush` on the executor's checkpoint cadence — so checkpoint
    cost is O(1) per completion instead of O(campaign).
    """

    def __init__(self, path: str, campaign_name: str, encoding: str, handle) -> None:
        self.path = path
        self.campaign_name = campaign_name
        self.encoding = encoding
        self._handle = handle

    @classmethod
    def create(cls, path: str, campaign_name: str, encoding: str) -> "StoreWriter":
        if encoding not in ENCODINGS:
            raise ConfigurationError(
                f"unknown store encoding {encoding!r}; expected one of {ENCODINGS}"
            )
        if encoding == ENCODING_ARROW:
            _pyarrow()  # fail before creating the file, not on first append
        handle = open(path, "wb")
        handle.write(_header_line(campaign_name, encoding))
        handle.flush()
        return cls(path, campaign_name, encoding, handle)

    @classmethod
    def open_append(cls, path: str) -> "StoreWriter":
        with open(path, "rb") as probe:
            meta = _read_header(probe)
        if meta["encoding"] == ENCODING_ARROW:
            _pyarrow()
        return cls(path, meta["campaign_name"], meta["encoding"], open(path, "ab"))

    def append(self, outcome: ScenarioOutcome) -> None:
        """Append one outcome (O(1) in the number already stored)."""
        self.append_records([encode_record(outcome)])

    def append_records(self, records: Sequence[Dict[str, Any]]) -> None:
        """Append pre-encoded records (bulk saves chunk through this)."""
        if not records:
            return
        if self.encoding == ENCODING_JSONL:
            lines = b"".join(
                json.dumps(record, separators=(",", ":")).encode("utf-8") + b"\n"
                for record in records
            )
            self._handle.write(lines)
        else:
            self._handle.write(_arrow_segment(records))

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Reader: streaming iteration with per-record disk offsets for lazy loads.
# ---------------------------------------------------------------------------


class StoreReader:
    """Streaming reader over one columnar store file."""

    def __init__(self, path: str) -> None:
        self.path = path
        with open(path, "rb") as handle:
            meta = _read_header(handle)
        self.campaign_name: str = meta["campaign_name"]
        self.encoding: str = meta["encoding"]
        if self.encoding == ENCODING_ARROW:
            _pyarrow()

    def iter_records(
        self, include_frames: bool = True
    ) -> Iterator[Tuple[Dict[str, Any], Tuple]]:
        """Yield ``(record, location)`` pairs in file order.

        ``location`` is ``("jsonl", offset, length)`` or
        ``("arrow", offset, length, row)`` — enough for a lazy loader to
        re-read exactly one record's frames later.  A truncated or
        garbled tail raises ``ValueError`` at the first bad record, after
        every preceding good record has been yielded (which is what lets
        :func:`load_store_checkpoint` salvage the prefix).
        """
        with open(self.path, "rb") as handle:
            _read_header(handle)
            if self.encoding == ENCODING_JSONL:
                yield from self._iter_jsonl(handle)
            else:
                yield from self._iter_arrow(handle, include_frames)

    def _iter_jsonl(self, handle) -> Iterator[Tuple[Dict[str, Any], Tuple]]:
        while True:
            offset = handle.tell()
            line = handle.readline()
            if not line:
                return
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("store record line is not a JSON object")
            yield record, (ENCODING_JSONL, offset, len(line))

    def _iter_arrow(
        self, handle, include_frames: bool
    ) -> Iterator[Tuple[Dict[str, Any], Tuple]]:
        size = os.fstat(handle.fileno()).st_size
        while True:
            prefix = handle.read(8)
            if not prefix:
                return
            if len(prefix) < 8:
                raise ValueError("truncated arrow segment length prefix")
            length = int.from_bytes(prefix, "little")
            offset = handle.tell()
            if length <= 0 or offset + length > size:
                raise ValueError(
                    f"arrow segment at offset {offset} claims {length} bytes "
                    f"but the file holds {size}"
                )
            payload = handle.read(length)
            for row, record in enumerate(
                _arrow_segment_records(payload, include_frames)
            ):
                yield record, (ENCODING_ARROW, offset, length, row)

    def _frames_loader(self, location: Tuple) -> Callable[[], Dict[str, list]]:
        path = self.path
        if location[0] == ENCODING_JSONL:
            _, offset, length = location

            def load_jsonl() -> Dict[str, list]:
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    record = json.loads(handle.read(length))
                return _frames_for_deferred(record["result"]["frames"])

            return load_jsonl
        _, offset, length, row = location

        def load_arrow() -> Dict[str, list]:
            with open(path, "rb") as handle:
                handle.seek(offset)
                payload = handle.read(length)
            return _frames_for_deferred(_arrow_segment_frames(payload, row))

        return load_arrow

    def iter_outcomes(self, lazy: bool = False) -> Iterator[ScenarioOutcome]:
        """Decode every stored outcome, optionally with disk-backed frames."""
        for record, location in self.iter_records(include_frames=not lazy):
            loader = None
            if lazy and record.get("result") is not None:
                record["result"].pop("frames", None)
                loader = self._frames_loader(location)
            yield decode_record(record, frames_loader=loader)


# ---------------------------------------------------------------------------
# Whole-store operations: atomic save, load, checkpoint salvage, merge.
# ---------------------------------------------------------------------------


def save_store(
    store: CampaignResult,
    path: str,
    encoding: str,
    chunk_rows: int = STORE_CHUNK_ROWS,
) -> None:
    """Atomically (re)write a whole store columnar (write-temp + ``os.replace``)."""
    temp_path = f"{path}.tmp"
    writer = StoreWriter.create(temp_path, store.campaign_name, encoding)
    try:
        batch: List[Dict[str, Any]] = []
        for outcome in store:
            batch.append(encode_record(outcome))
            if len(batch) >= chunk_rows:
                writer.append_records(batch)
                batch = []
        writer.append_records(batch)
        writer.close()
    except BaseException:
        writer.close()
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    os.replace(temp_path, path)


def load_store(path: str, lazy: bool = False) -> CampaignResult:
    """Load a columnar store file (format already detected by the caller)."""
    reader = StoreReader(path)
    store = CampaignResult(campaign_name=reader.campaign_name)
    for outcome in reader.iter_outcomes(lazy=lazy):
        store.add(outcome)
    return store


def load_store_checkpoint(path: str) -> Optional[CampaignResult]:
    """Checkpoint-load a columnar store, salvaging the prefix of a torn file.

    Records are independent, so everything before the first corrupt byte
    is recovered; the damaged file is then quarantined (``<path>.corrupt``
    + ``RuntimeWarning``) exactly like a corrupt JSON checkpoint, and the
    campaign resumes from the salvaged outcomes.  ``None`` only when the
    header itself is unreadable (nothing to salvage).
    """
    try:
        reader = StoreReader(path)
    except FileNotFoundError:
        return None
    except CORRUPT_CHECKPOINT_ERRORS as exc:
        quarantine_corrupt_file(path, exc)
        return None
    store = CampaignResult(campaign_name=reader.campaign_name)
    try:
        for outcome in reader.iter_outcomes(lazy=False):
            store.add(outcome)
    except CORRUPT_CHECKPOINT_ERRORS as exc:
        quarantine_corrupt_file(path, exc)
    return store


@dataclass(frozen=True)
class MergeStats:
    """What a streaming merge did: inputs, distinct scenarios, duplicates."""

    stores: int
    scenarios: int
    duplicates: int


def _iter_shard(path: str) -> Iterator[Tuple[str, Dict[str, Any]]]:
    """Yield ``(campaign_name, record)`` from one shard file of any format.

    Columnar shards stream record by record; legacy monolithic JSON
    shards are parsed whole (unavoidably) but one shard at a time, so
    merge memory is bounded by the largest single shard, not their sum.
    """
    if is_store_file(path):
        reader = StoreReader(path)
        for record, _ in reader.iter_records(include_frames=True):
            yield reader.campaign_name, record
        return
    legacy = CampaignResult.load(path)
    for outcome in legacy:
        yield legacy.campaign_name, encode_record(outcome)


def _shard_campaign_name(path: str) -> str:
    if is_store_file(path):
        return StoreReader(path).campaign_name
    return CampaignResult.load(path).campaign_name


def merge_store_files(
    paths: Sequence[str],
    output_path: str,
    spec: Optional[CampaignSpec] = None,
    store: str = STORE_AUTO,
) -> MergeStats:
    """Streaming union of shard result files into ``output_path``.

    Pass 1 streams every shard into a jsonl spill file next to the
    output, deduplicating by scenario id with the per-record content
    digests — identical duplicates are unioned silently, conflicting ones
    raise :class:`SimulationError`, and at no point is more than one
    record (plus one legacy shard, if any input is monolithic JSON) held
    in memory.  Pass 2 re-reads the spill by offset in final order
    (``spec`` order when given, else first occurrence) and writes the
    negotiated output format atomically; the monolithic JSON output is
    streamed byte-identically to ``CampaignResult.save``.
    """
    if not paths:
        raise ConfigurationError("merge needs at least one result store")
    resolved = negotiate_store(store)
    spill_path = f"{output_path}.merge-spill"
    campaign_name: Optional[str] = None
    #: scenario_id -> (digest, spill offset, spill length, label)
    entries: Dict[str, Tuple[str, int, int, str]] = {}
    duplicates = 0
    spill = open(spill_path, "w+b")
    try:
        for path in paths:
            for shard_name, record in _iter_shard(path):
                if campaign_name is None:
                    campaign_name = shard_name
                elif shard_name != campaign_name:
                    raise ConfigurationError(
                        "cannot merge result stores of different campaigns: "
                        f"{sorted({campaign_name, shard_name})}"
                    )
                scenario = record["scenario"]
                sid = ScenarioSpec.from_dict(scenario).scenario_id
                digest = record.get("digest") or record_digest(record)
                existing = entries.get(sid)
                if existing is not None:
                    if existing[0] != digest:
                        raise SimulationError(
                            f"conflicting outcomes for scenario "
                            f"{scenario.get('label')!r} (id {sid}) while merging "
                            f"campaign {campaign_name!r}"
                        )
                    duplicates += 1
                    continue
                offset = spill.tell()
                line = json.dumps(record, separators=(",", ":")).encode("utf-8")
                spill.write(line + b"\n")
                entries[sid] = (digest, offset, len(line), scenario.get("label", ""))

        if campaign_name is None:
            # Every shard was empty; name the merge after the first one.
            campaign_name = _shard_campaign_name(paths[0])

        ordered_ids: List[str] = list(entries)
        if spec is not None:
            ordered_ids = [s.scenario_id for s in spec.scenarios]
            for scenario in spec.scenarios:
                if scenario.scenario_id not in entries:
                    raise SimulationError(
                        f"campaign {spec.name!r} has no outcome for scenario "
                        f"{scenario.label!r} (id {scenario.scenario_id})"
                    )
            campaign_name = spec.name

        def read_spill(sid: str) -> Dict[str, Any]:
            _, offset, length, _ = entries[sid]
            spill.seek(offset)
            return json.loads(spill.read(length))

        spill.flush()
        temp_path = f"{output_path}.tmp"
        if resolved == STORE_JSON:
            with open(temp_path, "w", encoding="utf-8") as out:
                out.write(
                    '{"campaign_name": ' + json.dumps(campaign_name) + ', "outcomes": ['
                )
                for position, sid in enumerate(ordered_ids):
                    if position:
                        out.write(", ")
                    out.write(json.dumps(decode_record(read_spill(sid)).to_dict()))
                out.write("]}")
        else:
            writer = StoreWriter.create(temp_path, campaign_name, resolved)
            try:
                batch: List[Dict[str, Any]] = []
                for sid in ordered_ids:
                    batch.append(read_spill(sid))
                    if len(batch) >= STORE_CHUNK_ROWS:
                        writer.append_records(batch)
                        batch = []
                writer.append_records(batch)
            finally:
                writer.close()
        os.replace(temp_path, output_path)
    finally:
        spill.close()
        try:
            os.unlink(spill_path)
        except OSError:
            pass
    return MergeStats(
        stores=len(paths), scenarios=len(entries), duplicates=duplicates
    )
