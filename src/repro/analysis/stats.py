"""Small statistics helpers used by the experiments and the analysis examples.

Only plain-Python statistics are needed (means, deviations, percentiles,
windowed summaries); keeping them here avoids a hard dependency on numpy in
the reporting path and keeps the formulas explicit and testable.
"""

from __future__ import annotations

from typing import List, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def population_std(values: Sequence[float]) -> float:
    """Population standard deviation; 0 for sequences shorter than 2."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return (sum((v - mu) ** 2 for v in values) / len(values)) ** 0.5


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Population standard deviation divided by the mean (0 if the mean is 0)."""
    mu = mean(values)
    if mu == 0:
        return 0.0
    return population_std(values) / mu


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) using linear interpolation.

    Raises
    ------
    ValueError
        If ``values`` is empty or ``q`` is outside [0, 100].
    """
    if not values:
        raise ValueError("percentile of an empty sequence is undefined")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must lie in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def windowed_mean(values: Sequence[float], window: int) -> List[float]:
    """Trailing-window running mean (window clipped at the start of the sequence)."""
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    output: List[float] = []
    for index in range(len(values)):
        start = max(0, index - window + 1)
        output.append(mean(values[start:index + 1]))
    return output


def misprediction_percent(predicted: Sequence[float], actual: Sequence[float]) -> float:
    """Mean absolute relative prediction error, as a percentage of the actual values.

    This is the Fig. 3 headline statistic (the "~8% average misprediction
    with respect to the average workload" in the first 100 frames).
    """
    if len(predicted) != len(actual):
        raise ValueError("predicted and actual sequences must have equal length")
    if not predicted:
        return 0.0
    errors = []
    for p, a in zip(predicted, actual):
        if a == 0:
            errors.append(0.0)
        else:
            errors.append(abs(a - p) / abs(a))
    return 100.0 * mean(errors)
