"""Plain-text table formatting for experiment output.

The experiment drivers print their results as ASCII tables shaped like the
paper's tables, so a user can eyeball paper-vs-reproduction side by side.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.sim.comparison import ComparisonRow


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table."""
    rendered_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for column, cell in enumerate(row):
            if column < len(widths):
                widths[column] = max(widths[column], len(cell))
            else:
                widths.append(len(cell))

    def render_line(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[i]) for i, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(render_line(list(headers)))
    lines.append(separator)
    for row in rendered_rows:
        lines.append(render_line(row))
    lines.append(separator)
    return "\n".join(lines)


def format_comparison_rows(rows: Sequence[ComparisonRow], title: str = "") -> str:
    """Render Table-I-style comparison rows as an ASCII table."""
    return format_table(
        headers=["Methodology", "Normalized energy", "Normalized performance"],
        rows=[
            (row.methodology, f"{row.normalized_energy:.2f}", f"{row.normalized_performance:.2f}")
            for row in rows
        ],
        title=title,
    )
