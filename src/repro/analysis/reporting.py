"""Plain-text table formatting for experiment output.

The experiment drivers print their results as ASCII tables shaped like the
paper's tables, so a user can eyeball paper-vs-reproduction side by side.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from repro.sim.comparison import ComparisonRow

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (campaign -> analysis)
    from repro.campaign.results import CampaignResult


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table."""
    rendered_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for column, cell in enumerate(row):
            if column < len(widths):
                widths[column] = max(widths[column], len(cell))
            else:
                widths.append(len(cell))

    def render_line(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[i]) for i, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(render_line(list(headers)))
    lines.append(separator)
    for row in rendered_rows:
        lines.append(render_line(row))
    lines.append(separator)
    return "\n".join(lines)


def format_comparison_rows(rows: Sequence[ComparisonRow], title: str = "") -> str:
    """Render Table-I-style comparison rows as an ASCII table."""
    return format_table(
        headers=["Methodology", "Normalized energy", "Normalized performance"],
        rows=[
            (row.methodology, f"{row.normalized_energy:.2f}", f"{row.normalized_performance:.2f}")
            for row in rows
        ],
        title=title,
    )


def format_campaign_summary(
    store: "CampaignResult", title: str = "", cache_stats: Optional[dict] = None
) -> str:
    """Render a campaign result store as a failure-aware ASCII table.

    ``done`` scenarios show their headline metrics and the engine backend
    that produced them (``result.engine_used``); ``failed`` ones show the
    captured error (first line, truncated) in place of numbers, plus the
    attempt count — so a partially failed campaign reads at a glance.
    A done/failed tally follows the table.

    ``cache_stats`` (the executor's ``table_cache_stats()`` dict, keys
    ``hits``/``misses``/``evictions``) appends a physics-table cache line:
    the hit rate is a direct readout of how well the campaign grid — and
    the batch planner's compatibility grouping — lines up with the shared
    precomputed tables.
    """
    rows: List[Sequence[str]] = []
    for outcome in store:
        if outcome.ok and outcome.result is not None:
            result = outcome.result
            # Summaries without materialising per-frame records: the
            # metrics cached by the columnar store when present (no frame
            # access at all — a lazily loaded store stays on metadata),
            # one array reduction per metric otherwise.
            summary = outcome.metrics_summary()
            normalized_performance = (
                summary.average_frame_time_s / result.reference_time_s
            )
            rows.append(
                (
                    outcome.label,
                    outcome.status,
                    result.engine_used or "-",
                    f"{summary.total_energy_j:.2f}",
                    f"{normalized_performance:.2f}",
                    f"{summary.deadline_miss_ratio:.1%}",
                    str(outcome.attempts),
                    "",
                )
            )
        else:
            error = (outcome.error or "unknown error").splitlines()[0]
            if len(error) > 60:
                error = error[:57] + "..."
            rows.append(
                (
                    outcome.label,
                    outcome.status,
                    "-",
                    "-",
                    "-",
                    "-",
                    str(outcome.attempts),
                    error,
                )
            )
    table = format_table(
        headers=[
            "Scenario",
            "Status",
            "Engine",
            "Energy (J)",
            "Norm. perf",
            "Miss",
            "Attempts",
            "Error",
        ],
        rows=rows,
        title=title or f"campaign {store.campaign_name!r}",
    )
    done, failed = len(store.done()), len(store.failed())
    tally = f"{done} done, {failed} failed of {len(store)} scenarios"
    if cache_stats is not None:
        hits = cache_stats.get("hits", 0)
        misses = cache_stats.get("misses", 0)
        evictions = cache_stats.get("evictions", 0)
        lookups = hits + misses
        rate = f" ({hits / lookups:.0%} hit rate)" if lookups else ""
        tally += (
            f"\nphysics-table cache: {hits} hits, {misses} misses, "
            f"{evictions} evictions{rate}"
        )
    return f"{table}\n{tally}"
