"""Analysis helpers: statistics and plain-text reporting."""

from repro.analysis.stats import (
    mean,
    population_std,
    coefficient_of_variation,
    percentile,
    windowed_mean,
    misprediction_percent,
)
from repro.analysis.reporting import (
    format_table,
    format_comparison_rows,
    format_campaign_summary,
)

__all__ = [
    "mean",
    "population_std",
    "coefficient_of_variation",
    "percentile",
    "windowed_mean",
    "misprediction_percent",
    "format_table",
    "format_comparison_rows",
    "format_campaign_summary",
]
