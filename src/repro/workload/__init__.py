"""Workload substrate: frame-based applications and synthetic workload models.

The paper transforms every application (MPEG-4/H.264 decode, FFT, PARSEC,
SPLASH-2) into a *periodic* structure: a sequence of frames, each with a
deadline derived from the target frame rate, where each frame spawns
multiple threads performing the work.  This subpackage provides

* the frame/application abstractions (:mod:`repro.workload.task`,
  :mod:`repro.workload.application`),
* stochastic generators reproducing the workload *statistics* the paper's
  applications exhibit (:mod:`repro.workload.video`,
  :mod:`repro.workload.fft`, :mod:`repro.workload.parsec`,
  :mod:`repro.workload.splash2`),
* thread-split models (:mod:`repro.workload.threads`) and
* trace containers with CSV/JSON round-trip (:mod:`repro.workload.trace`).
"""

from repro.workload.task import Frame
from repro.workload.application import Application, PerformanceRequirement
from repro.workload.generators import (
    WorkloadGenerator,
    PhaseSpec,
    PhasedWorkloadGenerator,
)
from repro.workload.threads import ThreadSplitModel, EvenSplit, ImbalancedSplit
from repro.workload.video import (
    VideoWorkloadModel,
    mpeg4_application,
    h264_application,
    h264_football_application,
    ffmpeg_decode_application,
)
from repro.workload.fft import FFTWorkloadModel, fft_application
from repro.workload.parsec import parsec_application, PARSEC_BENCHMARKS
from repro.workload.splash2 import splash2_application, SPLASH2_BENCHMARKS
from repro.workload.trace import FrameTrace, TraceSummary

__all__ = [
    "Frame",
    "Application",
    "PerformanceRequirement",
    "WorkloadGenerator",
    "PhaseSpec",
    "PhasedWorkloadGenerator",
    "ThreadSplitModel",
    "EvenSplit",
    "ImbalancedSplit",
    "VideoWorkloadModel",
    "mpeg4_application",
    "h264_application",
    "h264_football_application",
    "ffmpeg_decode_application",
    "FFTWorkloadModel",
    "fft_application",
    "parsec_application",
    "PARSEC_BENCHMARKS",
    "splash2_application",
    "SPLASH2_BENCHMARKS",
    "FrameTrace",
    "TraceSummary",
]
