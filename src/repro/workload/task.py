"""Frame/task abstraction.

A *frame* is one iteration of the paper's periodic application structure:
a unit of work with a deadline, split into per-thread cycle demands that the
platform maps onto cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro._compat import SLOTS
from repro.errors import WorkloadError


@dataclass(frozen=True, **SLOTS)
class Frame:
    """One periodic iteration of an application.

    Attributes
    ----------
    index:
        Zero-based frame number within the application.
    thread_cycles:
        Cycle demand of each thread spawned for this frame.  Thread *k* is
        mapped to core *k mod C* by the simulator.
    deadline_s:
        Time budget for the frame (the application's per-frame performance
        requirement, ``Tref``).
    kind:
        Optional tag describing the frame type (e.g. ``"I"``, ``"P"``,
        ``"B"`` for video frames, or a benchmark phase name).
    """

    index: int
    thread_cycles: Tuple[float, ...]
    deadline_s: float
    kind: str = ""

    def __post_init__(self) -> None:
        if self.index < 0:
            raise WorkloadError(f"frame index must be non-negative, got {self.index}")
        if not self.thread_cycles:
            raise WorkloadError("a frame must have at least one thread")
        if any(c < 0 for c in self.thread_cycles):
            raise WorkloadError("thread cycle demands must be non-negative")
        if self.deadline_s <= 0:
            raise WorkloadError(f"frame deadline must be positive, got {self.deadline_s}")

    @property
    def total_cycles(self) -> float:
        """Sum of all thread cycle demands."""
        return sum(self.thread_cycles)

    @property
    def max_thread_cycles(self) -> float:
        """Largest single-thread cycle demand (the critical path of the frame)."""
        return max(self.thread_cycles)

    @property
    def num_threads(self) -> int:
        """Number of threads spawned for this frame."""
        return len(self.thread_cycles)

    def cycles_per_core(self, num_cores: int) -> Tuple[float, ...]:
        """Map thread demands onto ``num_cores`` cores (thread *k* → core *k mod C*).

        Returns a tuple of length ``num_cores`` with the aggregated cycle
        demand per core.
        """
        if num_cores <= 0:
            raise WorkloadError(f"num_cores must be positive, got {num_cores}")
        if len(self.thread_cycles) == num_cores:
            # Identity mapping (the common case: one thread per core) — the
            # stored tuple already is the per-core demand vector.  This runs
            # once or twice per frame in the simulator's hot loop.
            return self.thread_cycles
        per_core = [0.0] * num_cores
        for thread_index, cycles in enumerate(self.thread_cycles):
            per_core[thread_index % num_cores] += cycles
        return tuple(per_core)

    def required_frequency_hz(self, num_cores: int) -> float:
        """Minimum cluster frequency that meets the deadline on ``num_cores`` cores."""
        per_core = self.cycles_per_core(num_cores)
        return max(per_core) / self.deadline_s

    def scaled(self, factor: float) -> "Frame":
        """Return a copy with every thread demand multiplied by ``factor``."""
        if factor < 0:
            raise WorkloadError(f"scale factor must be non-negative, got {factor}")
        return Frame(
            index=self.index,
            thread_cycles=tuple(c * factor for c in self.thread_cycles),
            deadline_s=self.deadline_s,
            kind=self.kind,
        )
