"""SPLASH-2-like benchmark workload models.

As with :mod:`repro.workload.parsec`, the SPLASH-2 programs the paper runs
are modelled as phase-structured stochastic workloads wrapped into the
periodic frame structure.  Phase shapes follow the published
characterisation (Woo et al., ISCA 1995): the kernels (fft, lu, radix) have
very regular per-iteration work, whereas the applications (barnes, ocean,
raytrace) alternate phases of differing intensity.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import WorkloadError
from repro.workload.application import Application
from repro.workload.generators import PhaseSpec, PhasedWorkloadGenerator
from repro.workload.threads import ImbalancedSplit

#: Catalogue of SPLASH-2-like benchmark models.
_SPLASH2_CATALOGUE: Dict[str, Sequence[PhaseSpec]] = {
    "fft": (
        PhaseSpec(name="transpose", length_frames=10, mean_cycles=8.5e7, cv=0.03),
        PhaseSpec(name="butterfly", length_frames=20, mean_cycles=7.5e7, cv=0.02),
    ),
    "lu": (
        PhaseSpec(name="factor-diagonal", length_frames=8, mean_cycles=9.0e7, cv=0.04),
        PhaseSpec(name="update-trailing", length_frames=22, mean_cycles=1.1e8, cv=0.05),
    ),
    "radix": (
        PhaseSpec(name="histogram", length_frames=12, mean_cycles=6.5e7, cv=0.03),
        PhaseSpec(name="permute", length_frames=12, mean_cycles=8.0e7, cv=0.04),
    ),
    "barnes": (
        PhaseSpec(name="tree-build", length_frames=6, mean_cycles=7.0e7, cv=0.08),
        PhaseSpec(name="force-compute", length_frames=18, mean_cycles=1.4e8, cv=0.09),
        PhaseSpec(name="advance", length_frames=6, mean_cycles=5.5e7, cv=0.06),
    ),
    "ocean": (
        PhaseSpec(name="relaxation", length_frames=16, mean_cycles=1.2e8, cv=0.07),
        PhaseSpec(name="multigrid", length_frames=14, mean_cycles=9.0e7, cv=0.08),
    ),
    "raytrace": (
        PhaseSpec(name="primary-rays", length_frames=10, mean_cycles=1.0e8, cv=0.12),
        PhaseSpec(name="secondary-rays", length_frames=15, mean_cycles=1.3e8, cv=0.15),
    ),
}

#: Names of the available SPLASH-2-like benchmarks.
SPLASH2_BENCHMARKS = tuple(sorted(_SPLASH2_CATALOGUE))

#: Default frame rate at which the periodic transformation runs each benchmark.
_DEFAULT_FPS = 25.0


def splash2_application(
    benchmark: str,
    num_frames: int = 300,
    frames_per_second: float = _DEFAULT_FPS,
    seed: int = 31,
    num_threads: int = 4,
    scale: float = 1.0,
) -> Application:
    """Build a SPLASH-2-like periodic application.

    Parameters mirror :func:`repro.workload.parsec.parsec_application`.
    """
    if benchmark not in _SPLASH2_CATALOGUE:
        raise WorkloadError(
            f"unknown SPLASH-2 benchmark {benchmark!r}; available: {SPLASH2_BENCHMARKS}"
        )
    if scale <= 0:
        raise WorkloadError("scale must be positive")
    phases = [
        PhaseSpec(
            name=p.name,
            length_frames=p.length_frames,
            mean_cycles=p.mean_cycles * scale,
            cv=p.cv,
        )
        for p in _SPLASH2_CATALOGUE[benchmark]
    ]
    generator = PhasedWorkloadGenerator(
        name=f"splash2-{benchmark}",
        frames_per_second=frames_per_second,
        phases=phases,
        num_threads=num_threads,
        split_model=ImbalancedSplit(0.15),
        seed=seed,
    )
    return generator.generate(num_frames)
