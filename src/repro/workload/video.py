"""Video-decoder workload models (MPEG-4 and H.264).

The paper's main evaluation decodes an H.264 "football" sequence of roughly
3000 frames, and its Fig. 3 analysis decodes MPEG-4 at 24 SVGA fps.  Video
decoding has a very characteristic workload structure:

* frames belong to a group-of-pictures (GOP) pattern — I frames are the most
  expensive to decode, P frames cheaper, B frames cheapest;
* scene changes and high-motion passages (frequent in sports footage) raise
  the demand of whole stretches of frames;
* frame-to-frame jitter is substantial.

This model reproduces that structure with a GOP pattern, a slowly varying
motion/complexity process (a bounded random walk with occasional scene-change
jumps) and per-frame jitter, which yields the high workload variability the
paper reports for MPEG-4/H.264 (many Q-table states visited → long
exploration) in contrast to the FFT's low variability.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import WorkloadError
from repro.workload.application import Application
from repro.workload.generators import WorkloadGenerator, truncated_gauss
from repro.workload.threads import DominantThreadSplit, ThreadSplitModel

#: Relative decode cost of each frame type (P frame = 1.0).  The ratios are
#: deliberately mild: the paper's periodic transformation spreads a frame's
#: decode work over several worker threads, which smooths the classic
#: I/P/B cost gap, and its Fig. 3 reports per-frame workload mispredictions
#: of only 3-8% — i.e. the per-frame demand seen by the RTM is dominated by
#: the slowly varying motion/complexity level rather than by frame type.
_FRAME_TYPE_COST = {"I": 1.22, "P": 1.0, "B": 0.90}

#: Default GOP pattern (IBBPBBPBBPBB, GOP length 12) typical of broadcast content.
DEFAULT_GOP_PATTERN = "IBBPBBPBBPBB"


class VideoWorkloadModel(WorkloadGenerator):
    """GOP-structured stochastic video-decode workload.

    Parameters
    ----------
    name:
        Application name.
    frames_per_second:
        Target decode rate (the performance requirement).
    mean_frame_cycles:
        Mean total cycle demand per frame (summed over threads), averaged
        over the GOP.
    gop_pattern:
        String of ``I``/``P``/``B`` characters repeated over the sequence.
    motion_sigma:
        Step size of the motion/complexity random walk (relative).
    scene_change_probability:
        Per-frame probability of a scene change, which re-randomises the
        complexity level and forces an I-frame-like cost spike.
    jitter_cv:
        Coefficient of variation of the per-frame noise.
    frame_type_costs:
        Optional override of the relative I/P/B decode costs (defaults to
        :data:`_FRAME_TYPE_COST`).
    forced_scene_change_frames:
        Frame indices at which a scene change is forced regardless of the
        random draw.  Used to model content with a known structure (e.g. the
        cut-heavy opening of a sports clip) so that prediction-error studies
        see the transient the paper's Fig. 3 reports.
    """

    def __init__(
        self,
        name: str,
        frames_per_second: float,
        mean_frame_cycles: float,
        gop_pattern: str = DEFAULT_GOP_PATTERN,
        motion_sigma: float = 0.03,
        scene_change_probability: float = 0.01,
        jitter_cv: float = 0.08,
        num_threads: int = 4,
        split_model: Optional[ThreadSplitModel] = None,
        seed: int = 0,
        reference_time_s: Optional[float] = None,
        frame_type_costs: Optional[dict] = None,
        forced_scene_change_frames: tuple = (),
    ) -> None:
        super().__init__(
            name=name,
            frames_per_second=frames_per_second,
            num_threads=num_threads,
            split_model=split_model or DominantThreadSplit(dominant_share=0.3, jitter=0.15),
            seed=seed,
            reference_time_s=reference_time_s,
        )
        if mean_frame_cycles <= 0:
            raise WorkloadError("mean_frame_cycles must be positive")
        self.frame_type_costs = dict(_FRAME_TYPE_COST if frame_type_costs is None else frame_type_costs)
        if not gop_pattern or any(ch not in self.frame_type_costs for ch in gop_pattern):
            raise WorkloadError(
                f"gop_pattern must be a non-empty string of I/P/B characters, got {gop_pattern!r}"
            )
        if not 0.0 <= scene_change_probability <= 1.0:
            raise WorkloadError("scene_change_probability must lie in [0, 1]")
        self.mean_frame_cycles = mean_frame_cycles
        self.gop_pattern = gop_pattern
        self.motion_sigma = motion_sigma
        self.scene_change_probability = scene_change_probability
        self.jitter_cv = jitter_cv
        self.forced_scene_change_frames = tuple(forced_scene_change_frames)
        # Normalise the GOP costs so the long-run mean equals mean_frame_cycles.
        mean_cost = sum(self.frame_type_costs[ch] for ch in gop_pattern) / len(gop_pattern)
        self._base_cycles = mean_frame_cycles / mean_cost
        # Complexity random-walk state; reset whenever a fresh generate() starts
        # because frame_cycles() is always called with increasing indices from 0.
        self._complexity = 1.0

    def frame_kind(self, frame_index: int) -> str:
        return self.gop_pattern[frame_index % len(self.gop_pattern)]

    def frame_cycles(self, frame_index: int, rng: random.Random) -> float:
        if frame_index == 0:
            self._complexity = 1.0
        frame_type = self.frame_kind(frame_index)
        type_cost = self.frame_type_costs[frame_type]

        # Slowly varying motion/complexity process, bounded to [0.8, 1.25].
        self._complexity += rng.gauss(0.0, self.motion_sigma)
        scene_change = (
            rng.random() < self.scene_change_probability
            or frame_index in self.forced_scene_change_frames
        )
        if scene_change:
            # A scene change re-randomises complexity and costs an I-frame.
            self._complexity = rng.uniform(0.9, 1.25)
            type_cost = max(type_cost, self.frame_type_costs["I"])
        self._complexity = min(1.25, max(0.8, self._complexity))

        mean = self._base_cycles * type_cost * self._complexity
        return truncated_gauss(rng, mean, mean * self.jitter_cv, minimum=0.1 * mean)


def mpeg4_application(
    num_frames: int = 300,
    frames_per_second: float = 24.0,
    mean_frame_cycles: float = 7.5e7,
    seed: int = 7,
    num_threads: int = 4,
) -> Application:
    """MPEG-4 SVGA decode at 24 fps, as analysed in the paper's Fig. 3.

    The default mean demand of 7.5e7 cycles/frame keeps the heaviest frames
    (I-frames during high-motion passages) just inside the A15 cluster's
    capacity at 2 GHz for a 41.7 ms frame period, leaving the DVFS headroom
    that makes the control problem interesting.
    """
    model = VideoWorkloadModel(
        name="mpeg4",
        frames_per_second=frames_per_second,
        mean_frame_cycles=mean_frame_cycles,
        motion_sigma=0.015,
        scene_change_probability=0.006,
        jitter_cv=0.015,
        num_threads=num_threads,
        seed=seed,
        # The decode work of an SVGA-resolution stream is spread over worker
        # threads, which largely evens out the I/P/B cost gap; what remains
        # is the scene structure below.
        frame_type_costs={"I": 1.05, "P": 1.0, "B": 0.97},
        # A cut-heavy opening (typical of broadcast content) concentrates
        # scene changes in the first ~90 frames — the source of the larger
        # mispredictions the paper reports for the early/exploration frames.
        forced_scene_change_frames=(5, 12, 20, 30, 42, 55, 70, 85),
    )
    return model.generate(num_frames)


def h264_football_application(
    num_frames: int = 3000,
    frames_per_second: float = 25.0,
    mean_frame_cycles: float = 8.5e7,
    seed: int = 11,
    num_threads: int = 4,
) -> Application:
    """H.264 decode of a football sequence (~3000 frames), the paper's Table I workload.

    Sports footage has frequent high-motion passages and scene cuts, so this
    preset uses a larger motion step and scene-change probability than the
    generic MPEG-4 preset, giving the higher workload variability the paper
    attributes to it.
    """
    model = VideoWorkloadModel(
        name="h264-football",
        frames_per_second=frames_per_second,
        mean_frame_cycles=mean_frame_cycles,
        motion_sigma=0.035,
        scene_change_probability=0.016,
        jitter_cv=0.09,
        num_threads=num_threads,
        seed=seed,
    )
    return model.generate(num_frames)


def h264_application(
    num_frames: int = 300,
    frames_per_second: float = 15.0,
    mean_frame_cycles: float = 1.3e8,
    seed: int = 13,
    num_threads: int = 4,
) -> Application:
    """H.264 decode at 15 fps, the configuration used in the paper's Table II."""
    model = VideoWorkloadModel(
        name="h264",
        frames_per_second=frames_per_second,
        mean_frame_cycles=mean_frame_cycles,
        motion_sigma=0.035,
        scene_change_probability=0.014,
        jitter_cv=0.09,
        num_threads=num_threads,
        seed=seed,
    )
    return model.generate(num_frames)


def ffmpeg_decode_application(
    num_frames: int = 400,
    frames_per_second: float = 25.0,
    reference_time_s: float = 0.031,
    mean_frame_cycles: float = 6.5e7,
    seed: int = 5,
    num_threads: int = 4,
) -> Application:
    """The ffmpeg decode workload of the paper's Table III (Tref = 31 ms)."""
    model = VideoWorkloadModel(
        name="ffmpeg-decode",
        frames_per_second=frames_per_second,
        reference_time_s=reference_time_s,
        mean_frame_cycles=mean_frame_cycles,
        motion_sigma=0.03,
        scene_change_probability=0.012,
        jitter_cv=0.08,
        num_threads=num_threads,
        seed=seed,
    )
    return model.generate(num_frames)
