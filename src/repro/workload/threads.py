"""Thread-split models.

Each frame of the paper's periodic applications spawns multiple threads,
one per core of the A15 cluster.  Real decoders and benchmarks do not split
their work perfectly evenly, and that imbalance is what makes the per-core
workload normalisation of the paper's many-core formulation (eq. 7)
meaningful.  These models turn a frame's *total* cycle demand into
per-thread demands.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Sequence, Tuple

from repro.errors import WorkloadError


class ThreadSplitModel(ABC):
    """Strategy for splitting a frame's total cycles over its threads."""

    @abstractmethod
    def split(self, total_cycles: float, num_threads: int, rng: random.Random) -> Tuple[float, ...]:
        """Split ``total_cycles`` into ``num_threads`` non-negative demands summing to the total."""

    @staticmethod
    def _validate(total_cycles: float, num_threads: int) -> None:
        if total_cycles < 0:
            raise WorkloadError("total_cycles must be non-negative")
        if num_threads <= 0:
            raise WorkloadError("num_threads must be positive")


class EvenSplit(ThreadSplitModel):
    """Perfectly balanced split (each thread receives ``total / n`` cycles)."""

    def split(self, total_cycles: float, num_threads: int, rng: random.Random) -> Tuple[float, ...]:
        self._validate(total_cycles, num_threads)
        share = total_cycles / num_threads
        return tuple(share for _ in range(num_threads))


class ImbalancedSplit(ThreadSplitModel):
    """Randomly imbalanced split with a bounded imbalance factor.

    Each thread draws a weight uniformly from ``[1 - imbalance, 1 + imbalance]``
    and receives the corresponding share of the total.  ``imbalance = 0``
    degenerates to :class:`EvenSplit`.
    """

    def __init__(self, imbalance: float = 0.25) -> None:
        if not 0.0 <= imbalance < 1.0:
            raise WorkloadError(f"imbalance must lie in [0, 1), got {imbalance}")
        self.imbalance = imbalance

    def split(self, total_cycles: float, num_threads: int, rng: random.Random) -> Tuple[float, ...]:
        self._validate(total_cycles, num_threads)
        if num_threads == 1 or self.imbalance == 0.0:
            return EvenSplit().split(total_cycles, num_threads, rng)
        weights = [rng.uniform(1.0 - self.imbalance, 1.0 + self.imbalance) for _ in range(num_threads)]
        weight_sum = sum(weights)
        return tuple(total_cycles * w / weight_sum for w in weights)


class DominantThreadSplit(ThreadSplitModel):
    """One dominant thread plus helpers (typical of pipelined decoders).

    The dominant thread receives ``dominant_share`` of the total; the
    remainder is split evenly (with small jitter) over the other threads.
    """

    def __init__(self, dominant_share: float = 0.4, jitter: float = 0.1) -> None:
        if not 0.0 < dominant_share < 1.0:
            raise WorkloadError("dominant_share must lie in (0, 1)")
        if not 0.0 <= jitter < 1.0:
            raise WorkloadError("jitter must lie in [0, 1)")
        self.dominant_share = dominant_share
        self.jitter = jitter

    def split(self, total_cycles: float, num_threads: int, rng: random.Random) -> Tuple[float, ...]:
        self._validate(total_cycles, num_threads)
        if num_threads == 1:
            return (total_cycles,)
        dominant = total_cycles * self.dominant_share
        rest = total_cycles - dominant
        helpers = ImbalancedSplit(self.jitter).split(rest, num_threads - 1, rng)
        return (dominant,) + helpers


def validate_split(split: Sequence[float], total_cycles: float, tolerance: float = 1e-6) -> bool:
    """Check that a split is non-negative and sums to ``total_cycles``."""
    if any(s < 0 for s in split):
        return False
    return abs(sum(split) - total_cycles) <= tolerance * max(1.0, total_cycles)
