"""PARSEC-like benchmark workload models.

The paper evaluates its governor on PARSEC benchmarks after transforming
them into the periodic frame structure (each frame = one region of interest
iteration with a deadline).  We cannot ship the PARSEC inputs, so each
benchmark here is a phase-structured stochastic model whose phase lengths,
relative intensities and variability follow the published characterisation
of the corresponding program (Bienia et al., PACT 2008): bodytrack
alternates particle-filter and image-processing phases, ferret is a
pipelined similarity search with fairly even stages, x264 behaves like the
video model, and blackscholes/swaptions are close to constant work per
iteration.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import WorkloadError
from repro.workload.application import Application
from repro.workload.generators import PhaseSpec, PhasedWorkloadGenerator
from repro.workload.threads import ImbalancedSplit

#: Catalogue of PARSEC-like benchmark models: name -> (fps, phases).
#: ``mean_cycles`` values are totals over four threads per frame, chosen so the
#: A15 cluster runs at 40-70% of its 2 GHz capacity — the regime where DVFS
#: has room to act.
_PARSEC_CATALOGUE: Dict[str, Sequence[PhaseSpec]] = {
    "blackscholes": (
        PhaseSpec(name="pricing", length_frames=50, mean_cycles=7.0e7, cv=0.03),
    ),
    "bodytrack": (
        PhaseSpec(name="particle-filter", length_frames=12, mean_cycles=1.3e8, cv=0.10),
        PhaseSpec(name="image-processing", length_frames=8, mean_cycles=8.0e7, cv=0.07),
        PhaseSpec(name="annealing", length_frames=5, mean_cycles=1.6e8, cv=0.12),
    ),
    "ferret": (
        PhaseSpec(name="segmentation", length_frames=10, mean_cycles=9.0e7, cv=0.06),
        PhaseSpec(name="extraction", length_frames=10, mean_cycles=1.1e8, cv=0.08),
        PhaseSpec(name="ranking", length_frames=10, mean_cycles=1.0e8, cv=0.07),
    ),
    "swaptions": (
        PhaseSpec(name="hjm-simulation", length_frames=40, mean_cycles=9.5e7, cv=0.04),
    ),
    "x264": (
        PhaseSpec(name="intra", length_frames=3, mean_cycles=1.6e8, cv=0.12),
        PhaseSpec(name="inter", length_frames=21, mean_cycles=1.0e8, cv=0.14),
    ),
    "streamcluster": (
        PhaseSpec(name="assign", length_frames=15, mean_cycles=1.2e8, cv=0.06),
        PhaseSpec(name="recentre", length_frames=10, mean_cycles=8.5e7, cv=0.05),
    ),
}

#: Names of the available PARSEC-like benchmarks.
PARSEC_BENCHMARKS = tuple(sorted(_PARSEC_CATALOGUE))

#: Default frame rate at which the periodic transformation runs each benchmark.
_DEFAULT_FPS = 25.0


def parsec_application(
    benchmark: str,
    num_frames: int = 300,
    frames_per_second: float = _DEFAULT_FPS,
    seed: int = 21,
    num_threads: int = 4,
    scale: float = 1.0,
) -> Application:
    """Build a PARSEC-like periodic application.

    Parameters
    ----------
    benchmark:
        One of :data:`PARSEC_BENCHMARKS`.
    num_frames:
        Number of periodic iterations to generate.
    frames_per_second:
        Frame rate of the periodic transformation (sets the deadline).
    seed:
        Generator seed.
    num_threads:
        Threads spawned per frame (one per A15 core by default).
    scale:
        Multiplier applied to every phase's mean demand, for sweeps.
    """
    if benchmark not in _PARSEC_CATALOGUE:
        raise WorkloadError(
            f"unknown PARSEC benchmark {benchmark!r}; available: {PARSEC_BENCHMARKS}"
        )
    if scale <= 0:
        raise WorkloadError("scale must be positive")
    phases = [
        PhaseSpec(
            name=p.name,
            length_frames=p.length_frames,
            mean_cycles=p.mean_cycles * scale,
            cv=p.cv,
        )
        for p in _PARSEC_CATALOGUE[benchmark]
    ]
    generator = PhasedWorkloadGenerator(
        name=f"parsec-{benchmark}",
        frames_per_second=frames_per_second,
        phases=phases,
        num_threads=num_threads,
        split_model=ImbalancedSplit(0.2),
        seed=seed,
    )
    return generator.generate(num_frames)
