"""Frame-based periodic application model and its performance-requirement API.

In the paper's cross-layer view the application layer specifies its
performance requirement (frames per second / per-frame deadline) to the
run-time layer through an API; the run-time manager then controls DVFS to
meet that requirement at minimum energy.  :class:`PerformanceRequirement`
is that API surface and :class:`Application` is the sequence of frames a
run executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.errors import WorkloadError
from repro.workload.task import Frame


@dataclass(frozen=True)
class PerformanceRequirement:
    """The application's declared performance requirement.

    Attributes
    ----------
    frames_per_second:
        Target frame rate.
    reference_time_s:
        Per-frame time budget ``Tref``; by default ``1 / fps`` but an
        application may declare a tighter budget (the paper's ffmpeg
        overhead experiment uses ``Tref = 31 ms``).
    """

    frames_per_second: float
    reference_time_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.frames_per_second <= 0:
            raise WorkloadError("frames_per_second must be positive")
        if self.reference_time_s is not None and self.reference_time_s <= 0:
            raise WorkloadError("reference_time_s must be positive when given")

    @property
    def tref_s(self) -> float:
        """The effective per-frame reference time ``Tref``."""
        if self.reference_time_s is not None:
            return self.reference_time_s
        return 1.0 / self.frames_per_second


class Application:
    """A named sequence of frames with a performance requirement."""

    def __init__(
        self,
        name: str,
        frames: Iterable[Frame],
        requirement: PerformanceRequirement,
        description: str = "",
    ) -> None:
        self.name = name
        self.requirement = requirement
        self.description = description
        self._frames: List[Frame] = list(frames)
        if not self._frames:
            raise WorkloadError(f"application {name!r} has no frames")
        for position, frame in enumerate(self._frames):
            if frame.index != position:
                raise WorkloadError(
                    f"frame at position {position} has index {frame.index}; "
                    "frames must be numbered consecutively from 0"
                )

    # -- container protocol -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._frames)

    def __iter__(self) -> Iterator[Frame]:
        return iter(self._frames)

    def __getitem__(self, index: int) -> Frame:
        return self._frames[index]

    def __repr__(self) -> str:
        return (
            f"Application(name={self.name!r}, frames={len(self)}, "
            f"fps={self.requirement.frames_per_second:g})"
        )

    # -- convenience accessors ----------------------------------------------------
    @property
    def frames(self) -> Sequence[Frame]:
        """All frames, in execution order."""
        return tuple(self._frames)

    @property
    def num_frames(self) -> int:
        """Number of frames in the application."""
        return len(self._frames)

    @property
    def reference_time_s(self) -> float:
        """The per-frame performance requirement ``Tref``."""
        return self.requirement.tref_s

    @property
    def total_cycles(self) -> float:
        """Total cycle demand summed over all frames and threads."""
        return sum(frame.total_cycles for frame in self._frames)

    @property
    def mean_frame_cycles(self) -> float:
        """Mean total cycle demand per frame."""
        return self.total_cycles / len(self._frames)

    def workload_variability(self) -> float:
        """Coefficient of variation of per-frame total cycles.

        The paper attributes the different exploration counts of Table II to
        the applications' inherent workload variability; this statistic is
        the quantitative handle on that property.
        """
        n = len(self._frames)
        mean = self.mean_frame_cycles
        if mean <= 0:
            return 0.0
        variance = sum((f.total_cycles - mean) ** 2 for f in self._frames) / n
        return (variance ** 0.5) / mean

    def truncated(self, num_frames: int, name: Optional[str] = None) -> "Application":
        """Return a copy containing only the first ``num_frames`` frames."""
        if num_frames <= 0:
            raise WorkloadError("num_frames must be positive")
        frames = self._frames[:num_frames]
        return Application(
            name=name or self.name,
            frames=frames,
            requirement=self.requirement,
            description=self.description,
        )
