"""Frame-trace container with CSV/JSON round-trip and summary statistics.

The paper's experimental data was published as a trace archive (DOI
10.5258/SOTON/404064).  We cannot fetch it offline, but the library keeps
the same workflow available: any generated :class:`~repro.workload.application.Application`
can be exported to a trace file, re-imported, summarised and replayed, so a
user who does obtain real per-frame cycle traces can feed them straight into
the simulator.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence, Union

from repro.errors import WorkloadError
from repro.workload.application import Application, PerformanceRequirement
from repro.workload.task import Frame

PathLike = Union[str, Path]


@dataclass(frozen=True)
class TraceSummary:
    """Summary statistics of a frame trace."""

    num_frames: int
    num_threads: int
    mean_total_cycles: float
    min_total_cycles: float
    max_total_cycles: float
    coefficient_of_variation: float
    reference_time_s: float


class FrameTrace:
    """A serialisable record of an application's per-frame cycle demands."""

    def __init__(self, application_name: str, frames: Sequence[Frame], frames_per_second: float,
                 reference_time_s: float) -> None:
        if not frames:
            raise WorkloadError("a trace requires at least one frame")
        self.application_name = application_name
        self.frames: List[Frame] = list(frames)
        self.frames_per_second = frames_per_second
        self.reference_time_s = reference_time_s

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_application(cls, application: Application) -> "FrameTrace":
        """Capture an application's frames into a trace."""
        return cls(
            application_name=application.name,
            frames=application.frames,
            frames_per_second=application.requirement.frames_per_second,
            reference_time_s=application.reference_time_s,
        )

    def to_application(self, name: str = "") -> Application:
        """Rebuild an :class:`Application` from the trace."""
        requirement = PerformanceRequirement(
            frames_per_second=self.frames_per_second,
            reference_time_s=self.reference_time_s,
        )
        return Application(
            name=name or self.application_name,
            frames=self.frames,
            requirement=requirement,
            description="replayed from trace",
        )

    # -- statistics ---------------------------------------------------------------
    def summary(self) -> TraceSummary:
        """Compute summary statistics over the trace."""
        totals = [f.total_cycles for f in self.frames]
        n = len(totals)
        mean = sum(totals) / n
        variance = sum((t - mean) ** 2 for t in totals) / n
        cv = (variance ** 0.5) / mean if mean > 0 else 0.0
        return TraceSummary(
            num_frames=n,
            num_threads=self.frames[0].num_threads,
            mean_total_cycles=mean,
            min_total_cycles=min(totals),
            max_total_cycles=max(totals),
            coefficient_of_variation=cv,
            reference_time_s=self.reference_time_s,
        )

    # -- CSV ------------------------------------------------------------------------
    def to_csv(self, path: PathLike) -> None:
        """Write the trace as CSV: one row per frame, one column per thread."""
        path = Path(path)
        num_threads = max(f.num_threads for f in self.frames)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            header = ["frame", "kind", "deadline_s"] + [
                f"thread_{i}_cycles" for i in range(num_threads)
            ]
            writer.writerow(header)
            for frame in self.frames:
                cycles = list(frame.thread_cycles) + [0.0] * (num_threads - frame.num_threads)
                writer.writerow([frame.index, frame.kind, repr(frame.deadline_s)] + [repr(c) for c in cycles])

    @classmethod
    def from_csv(
        cls,
        path: PathLike,
        application_name: str,
        frames_per_second: float,
        reference_time_s: float,
    ) -> "FrameTrace":
        """Read a trace written by :meth:`to_csv`."""
        path = Path(path)
        frames: List[Frame] = []
        with path.open("r", newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                raise WorkloadError(f"trace file {path} is empty")
            thread_columns = [c for c in header if c.startswith("thread_")]
            for row in reader:
                if not row:
                    continue
                index = int(row[0])
                kind = row[1]
                deadline = float(row[2])
                cycles = tuple(float(v) for v in row[3:3 + len(thread_columns)])
                frames.append(Frame(index=index, thread_cycles=cycles, deadline_s=deadline, kind=kind))
        return cls(
            application_name=application_name,
            frames=frames,
            frames_per_second=frames_per_second,
            reference_time_s=reference_time_s,
        )

    # -- JSON --------------------------------------------------------------------------
    def to_json(self, path: PathLike) -> None:
        """Write the trace (including metadata) as a JSON document."""
        document = {
            "application_name": self.application_name,
            "frames_per_second": self.frames_per_second,
            "reference_time_s": self.reference_time_s,
            "frames": [
                {
                    "index": frame.index,
                    "kind": frame.kind,
                    "deadline_s": frame.deadline_s,
                    "thread_cycles": list(frame.thread_cycles),
                }
                for frame in self.frames
            ],
        }
        Path(path).write_text(json.dumps(document, indent=2))

    @classmethod
    def from_json(cls, path: PathLike) -> "FrameTrace":
        """Read a trace written by :meth:`to_json`."""
        document = json.loads(Path(path).read_text())
        try:
            frames = [
                Frame(
                    index=entry["index"],
                    thread_cycles=tuple(entry["thread_cycles"]),
                    deadline_s=entry["deadline_s"],
                    kind=entry.get("kind", ""),
                )
                for entry in document["frames"]
            ]
            return cls(
                application_name=document["application_name"],
                frames=frames,
                frames_per_second=document["frames_per_second"],
                reference_time_s=document["reference_time_s"],
            )
        except KeyError as exc:
            raise WorkloadError(f"trace file {path} is missing field {exc}") from exc

    def __len__(self) -> int:
        return len(self.frames)

    def __repr__(self) -> str:
        return f"FrameTrace({self.application_name!r}, {len(self.frames)} frames)"
