"""FFT workload model.

An FFT of fixed size performs an almost identical amount of work every
invocation: the cycle demand varies only through cache and memory-system
noise.  The paper exploits exactly this property in Table II — the FFT's low
workload variability means the RL governor visits few states and converges
with the fewest explorations.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.errors import WorkloadError
from repro.workload.application import Application
from repro.workload.generators import WorkloadGenerator, truncated_gauss
from repro.workload.threads import EvenSplit, ThreadSplitModel


class FFTWorkloadModel(WorkloadGenerator):
    """Near-constant per-frame cycle demand with small jitter.

    Parameters
    ----------
    mean_frame_cycles:
        Mean total cycle demand per frame.
    jitter_cv:
        Coefficient of variation of the per-frame demand (a few percent,
        representing cache/memory noise).
    drift_amplitude:
        Amplitude of a very slow sinusoidal drift in the demand, modelling
        input-size or temperature-induced effects; zero by default.
    """

    def __init__(
        self,
        name: str,
        frames_per_second: float,
        mean_frame_cycles: float,
        jitter_cv: float = 0.02,
        drift_amplitude: float = 0.0,
        drift_period_frames: int = 500,
        num_threads: int = 4,
        split_model: Optional[ThreadSplitModel] = None,
        seed: int = 0,
        reference_time_s: Optional[float] = None,
    ) -> None:
        super().__init__(
            name=name,
            frames_per_second=frames_per_second,
            num_threads=num_threads,
            split_model=split_model or EvenSplit(),
            seed=seed,
            reference_time_s=reference_time_s,
        )
        if mean_frame_cycles <= 0:
            raise WorkloadError("mean_frame_cycles must be positive")
        if jitter_cv < 0 or drift_amplitude < 0:
            raise WorkloadError("jitter_cv and drift_amplitude must be non-negative")
        if drift_period_frames <= 0:
            raise WorkloadError("drift_period_frames must be positive")
        self.mean_frame_cycles = mean_frame_cycles
        self.jitter_cv = jitter_cv
        self.drift_amplitude = drift_amplitude
        self.drift_period_frames = drift_period_frames

    def frame_cycles(self, frame_index: int, rng: random.Random) -> float:
        drift = 1.0
        if self.drift_amplitude > 0:
            drift += self.drift_amplitude * math.sin(
                2.0 * math.pi * frame_index / self.drift_period_frames
            )
        mean = self.mean_frame_cycles * drift
        return truncated_gauss(rng, mean, mean * self.jitter_cv, minimum=0.5 * mean)

    def frame_kind(self, frame_index: int) -> str:
        return "fft"


def fft_application(
    num_frames: int = 300,
    frames_per_second: float = 32.0,
    mean_frame_cycles: float = 8.0e7,
    seed: int = 3,
    num_threads: int = 4,
) -> Application:
    """Periodic FFT at 32 fps, the configuration used in the paper's Table II."""
    model = FFTWorkloadModel(
        name="fft",
        frames_per_second=frames_per_second,
        mean_frame_cycles=mean_frame_cycles,
        jitter_cv=0.02,
        num_threads=num_threads,
        seed=seed,
    )
    return model.generate(num_frames)
