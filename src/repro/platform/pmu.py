"""Performance-monitoring unit (PMU) model.

The paper's state representation is driven by the CPU cycle count read from
the A15's PMU at each decision epoch.  This module models the counters a
governor actually reads: a free-running cycle counter plus instruction and
idle-cycle counters, with explicit sample/delta semantics so governors see
per-epoch deltas just as a real governor computes them from successive
register reads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._compat import SLOTS


@dataclass(frozen=True, **SLOTS)
class PMUSample:
    """A snapshot of the PMU counters at a point in time.

    Attributes
    ----------
    timestamp_s:
        Platform time at which the sample was taken.
    cycles:
        Busy (instruction-executing) cycles accumulated since reset.
    idle_cycles:
        Cycles during which the core was clocked but idle.
    instructions:
        Retired instructions since reset.
    """

    timestamp_s: float
    cycles: float
    idle_cycles: float
    instructions: float

    def delta(self, earlier: "PMUSample") -> "PMUSample":
        """Return the counter deltas between this sample and an earlier one."""
        if earlier.timestamp_s > self.timestamp_s:
            raise ValueError("delta requires the earlier sample first")
        return PMUSample(
            timestamp_s=self.timestamp_s - earlier.timestamp_s,
            cycles=self.cycles - earlier.cycles,
            idle_cycles=self.idle_cycles - earlier.idle_cycles,
            instructions=self.instructions - earlier.instructions,
        )

    @property
    def total_cycles(self) -> float:
        """Busy plus idle cycles."""
        return self.cycles + self.idle_cycles

    @property
    def utilisation(self) -> float:
        """Fraction of cycles spent busy; 0 if no cycles elapsed."""
        total = self.total_cycles
        if total <= 0:
            return 0.0
        return self.cycles / total


class PerformanceMonitoringUnit:
    """Accumulating cycle/instruction counters for a single core.

    The platform's execution model calls :meth:`account_busy` /
    :meth:`account_idle` as work is executed; governors call
    :meth:`sample` to take snapshots and compute deltas themselves (as the
    paper's RTM does at each decision epoch).
    """

    def __init__(self) -> None:
        self._cycles = 0.0
        self._idle_cycles = 0.0
        self._instructions = 0.0
        self._time_s = 0.0

    # -- accounting (called by the platform) ---------------------------------
    def account_busy(self, cycles: float, duration_s: float, instructions: float = 0.0) -> None:
        """Record ``cycles`` of busy execution taking ``duration_s`` seconds."""
        if cycles < 0 or duration_s < 0 or instructions < 0:
            raise ValueError("PMU accounting values must be non-negative")
        self._cycles += cycles
        self._instructions += instructions if instructions > 0 else cycles
        self._time_s += duration_s

    def account_idle(self, cycles: float, duration_s: float) -> None:
        """Record ``cycles`` of idle (clocked but not executing) time."""
        if cycles < 0 or duration_s < 0:
            raise ValueError("PMU accounting values must be non-negative")
        self._idle_cycles += cycles
        self._time_s += duration_s

    # -- reads (called by governors) ------------------------------------------
    def sample(self) -> PMUSample:
        """Take a snapshot of the current counter values."""
        return PMUSample(
            timestamp_s=self._time_s,
            cycles=self._cycles,
            idle_cycles=self._idle_cycles,
            instructions=self._instructions,
        )

    def reset(self) -> None:
        """Zero all counters (as on a PMU counter reset)."""
        self._cycles = 0.0
        self._idle_cycles = 0.0
        self._instructions = 0.0
        self._time_s = 0.0

    @property
    def busy_cycles(self) -> float:
        """Busy cycles accumulated since the last reset."""
        return self._cycles

    @property
    def idle_cycles(self) -> float:
        """Idle cycles accumulated since the last reset."""
        return self._idle_cycles

    @property
    def elapsed_time_s(self) -> float:
        """Wall-clock time accumulated since the last reset."""
        return self._time_s
