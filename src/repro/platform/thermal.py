"""First-order RC thermal model.

The XU3's A15 cluster heats up noticeably under sustained load, which both
raises leakage power and (on the real board) eventually triggers thermal
throttling.  The paper explicitly *disables* the thermal constraint of the
multi-core DVFS baseline "for equivalence of comparison", so the default
platform keeps temperature fixed; this model exists so that the
leakage-temperature coupling and a thermal-aware ablation can be exercised
(see DESIGN.md section 5).

The model is the usual lumped RC network:

    C * dT/dt = P - (T - T_amb) / R

integrated with an exponential step per interval, which is exact for a
constant power input over the interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ThermalParameters:
    """Constants of the lumped thermal model.

    Attributes
    ----------
    ambient_c:
        Ambient temperature in degrees Celsius.
    resistance_c_per_w:
        Junction-to-ambient thermal resistance.
    capacitance_j_per_c:
        Lumped thermal capacitance.
    initial_c:
        Junction temperature at the start of the simulation.
    throttle_c:
        Temperature at which a thermally-aware governor would throttle.
    """

    ambient_c: float = 30.0
    resistance_c_per_w: float = 7.0
    capacitance_j_per_c: float = 4.0
    initial_c: float = 45.0
    throttle_c: float = 95.0

    def __post_init__(self) -> None:
        if self.resistance_c_per_w <= 0 or self.capacitance_j_per_c <= 0:
            raise ConfigurationError("thermal resistance and capacitance must be positive")
        if self.initial_c < self.ambient_c:
            raise ConfigurationError("initial temperature cannot be below ambient")


@dataclass
class ThermalModel:
    """Lumped single-node thermal model for a cluster."""

    parameters: ThermalParameters = field(default_factory=ThermalParameters)
    enabled: bool = True
    _temperature_c: float = field(init=False)
    _throttle_events: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self._temperature_c = self.parameters.initial_c
        self._throttle_events = 0

    @property
    def temperature_c(self) -> float:
        """Current junction temperature in degrees Celsius."""
        return self._temperature_c

    @property
    def is_throttling(self) -> bool:
        """True when the junction temperature exceeds the throttle threshold."""
        return self._temperature_c >= self.parameters.throttle_c

    @property
    def throttle_events(self) -> int:
        """Number of :meth:`step` calls so far that ended at/above ``throttle_c``.

        A throttling decision taken mid-epoch (the junction crossing the
        threshold during an interval) ends that interval's RC step at or
        above ``throttle_c``, so counting threshold-reaching steps makes
        those events visible to per-epoch observers: engines report the
        per-epoch delta of this counter as
        :attr:`~repro.rtm.governor.EpochObservation.throttle_events`.
        """
        return self._throttle_events

    def steady_state_c(self, power_w: float) -> float:
        """Temperature the node would settle at under constant ``power_w``."""
        p = self.parameters
        return p.ambient_c + power_w * p.resistance_c_per_w

    def step(self, power_w: float, duration_s: float) -> float:
        """Advance the model by ``duration_s`` with constant ``power_w`` input.

        Returns the junction temperature at the end of the interval.  When
        the model is disabled the temperature is held at its initial value,
        which matches the paper's "thermal constraint neglected" setting.
        """
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        if power_w < 0:
            raise ValueError(f"power must be non-negative, got {power_w}")
        if not self.enabled or duration_s == 0:
            return self._temperature_c
        p = self.parameters
        tau = p.resistance_c_per_w * p.capacitance_j_per_c
        steady = self.steady_state_c(power_w)
        decay = math.exp(-duration_s / tau)
        self._temperature_c = steady + (self._temperature_c - steady) * decay
        if self._temperature_c >= p.throttle_c:
            self._throttle_events += 1
        return self._temperature_c

    def absorb_state(self, temperature_c: float, throttle_events: int = 0) -> None:
        """Adopt an externally simulated trajectory's final state.

        Used by the thermally-coupled fast engine, which integrates the RC
        recurrence itself (with the identical IEEE operations) and then
        hands the final junction temperature and the number of
        threshold-reaching steps back so the live model's public state
        matches a scalar run's.
        """
        if throttle_events < 0:
            raise ValueError(
                f"throttle_events must be non-negative, got {throttle_events}"
            )
        self._temperature_c = temperature_c
        self._throttle_events += throttle_events

    def reset(self) -> None:
        """Return the junction to its initial temperature."""
        self._temperature_c = self.parameters.initial_c
        self._throttle_events = 0
