"""CMOS power model.

Replaces the ODROID-XU3's on-board measurement path with an analytic model:

* dynamic power  ``P_dyn = C_eff * V^2 * f * u``  (``u`` = utilisation),
* static power   ``P_stat = V * (k1 * exp(k2 * V) * exp(k3 * T) + k4)``,

which is the standard form used by McPAT-style modelling and by the DVFS
literature the paper builds on.  The exact constants are calibrated so that
the A15 cluster spans roughly 0.25 W (idle, 200 MHz) to 5-6 W (four busy
cores at 2 GHz), matching published XU3 measurements closely enough that
energy *ratios* between governors are meaningful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Union

from repro._compat import SLOTS
from repro.errors import ConfigurationError
from repro.platform.vf_table import OperatingPoint


@dataclass(frozen=True)
class PowerModelParameters:
    """Constants of the per-core power model.

    Attributes
    ----------
    effective_capacitance_f:
        Switched capacitance per cycle (farads); multiplies ``V^2 * f``.
    leakage_k1_a:
        Leakage scale factor (amperes) before the exponential terms.
    leakage_k2_per_v:
        Voltage sensitivity of leakage (1/V).
    leakage_k3_per_c:
        Temperature sensitivity of leakage (1/degC).
    leakage_k4_a:
        Voltage-independent leakage floor (amperes).
    idle_activity_factor:
        Fraction of dynamic power drawn when a core is clocked but idle
        (clock tree and always-on structures).
    uncore_power_w:
        Constant cluster-level power (interconnect, L2) charged once per
        cluster, not per core.
    """

    effective_capacitance_f: float = 6.0e-10
    leakage_k1_a: float = 0.0110
    leakage_k2_per_v: float = 1.90
    leakage_k3_per_c: float = 0.016
    leakage_k4_a: float = 0.005
    idle_activity_factor: float = 0.08
    uncore_power_w: float = 0.12

    def __post_init__(self) -> None:
        if self.effective_capacitance_f <= 0:
            raise ConfigurationError("effective_capacitance_f must be positive")
        if not 0.0 <= self.idle_activity_factor <= 1.0:
            raise ConfigurationError("idle_activity_factor must lie in [0, 1]")
        for name in ("leakage_k1_a", "leakage_k4_a", "uncore_power_w"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


@dataclass(frozen=True, **SLOTS)
class PowerBreakdown:
    """Power split into its dynamic and static components (watts)."""

    dynamic_w: float
    static_w: float
    uncore_w: float = 0.0

    @property
    def total_w(self) -> float:
        """Total power in watts."""
        return self.dynamic_w + self.static_w + self.uncore_w

    def __add__(self, other: "PowerBreakdown") -> "PowerBreakdown":
        return PowerBreakdown(
            dynamic_w=self.dynamic_w + other.dynamic_w,
            static_w=self.static_w + other.static_w,
            uncore_w=self.uncore_w + other.uncore_w,
        )

    def scaled(self, factor: float) -> "PowerBreakdown":
        """Return a copy with every component multiplied by ``factor``."""
        return PowerBreakdown(
            dynamic_w=self.dynamic_w * factor,
            static_w=self.static_w * factor,
            uncore_w=self.uncore_w * factor,
        )


ZERO_POWER = PowerBreakdown(dynamic_w=0.0, static_w=0.0, uncore_w=0.0)


@dataclass
class PowerModel:
    """Per-core analytic power model.

    The model is intentionally stateless: callers pass the operating point,
    utilisation and temperature for the interval of interest and receive a
    :class:`PowerBreakdown`.
    """

    parameters: PowerModelParameters = field(default_factory=PowerModelParameters)

    # -- component models ----------------------------------------------------
    def dynamic_power_w(self, point: OperatingPoint, utilisation: float) -> float:
        """Dynamic power for one core at ``point`` with the given utilisation.

        ``utilisation`` is the fraction of the interval the core spent
        executing instructions (0 = fully idle, 1 = fully busy).  An idle but
        clocked core still burns ``idle_activity_factor`` of full activity.
        """
        utilisation = self._check_utilisation(utilisation)
        p = self.parameters
        activity = p.idle_activity_factor + (1.0 - p.idle_activity_factor) * utilisation
        return (
            p.effective_capacitance_f
            * point.voltage_v ** 2
            * point.frequency_hz
            * activity
        )

    def static_power_w(self, point: OperatingPoint, temperature_c: float = 55.0) -> float:
        """Leakage power for one core at ``point`` and junction temperature."""
        p = self.parameters
        leakage_current_a = (
            p.leakage_k1_a
            * math.exp(p.leakage_k2_per_v * point.voltage_v)
            * math.exp(p.leakage_k3_per_c * (temperature_c - 55.0))
            + p.leakage_k4_a
        )
        return point.voltage_v * leakage_current_a

    def core_power(
        self,
        point: OperatingPoint,
        utilisation: float,
        temperature_c: float = 55.0,
    ) -> PowerBreakdown:
        """Total power of a single core (no uncore share)."""
        return PowerBreakdown(
            dynamic_w=self.dynamic_power_w(point, utilisation),
            static_w=self.static_power_w(point, temperature_c),
        )

    def core_power_w(
        self,
        point: OperatingPoint,
        utilisation: float,
        temperature_c: float = 55.0,
    ) -> float:
        """Total single-core power as a plain float (no uncore share).

        Identical value to ``core_power(...).total_w`` without allocating a
        :class:`PowerBreakdown`; this is the entry point the simulator's
        per-frame loop and the cluster's power cache use.
        """
        return self.dynamic_power_w(point, utilisation) + self.static_power_w(
            point, temperature_c
        )

    def power_table(
        self,
        points: "Sequence[OperatingPoint]",
        temperature_c: "Union[float, Sequence[float]]" = 55.0,
    ) -> "Tuple[List, List]":
        """Batch-evaluate per-core busy and idle power over a table of points.

        Returns ``(busy_powers_w, idle_powers_w)`` with one entry per
        operating point: the single-core power at utilisation 1.0 (busy) and
        0.0 (clocked idle) at ``temperature_c``.  Each entry is exactly
        :meth:`core_power_w` for that point — the same IEEE operations, so
        table-driven engines that index these lists reproduce the scalar
        simulation loop bit for bit.  Evaluated once per trace, this replaces
        ``2 x num_frames`` leakage-model calls with ``2 x num_points``.

        ``temperature_c`` may also be a *sequence* of temperatures — the
        table then grows a temperature axis and each returned value is a
        nested list indexed ``[temperature][point]``.  This is the bulk
        form :meth:`ThermalWorkloadTable.prefill_power_slices
        <repro.platform.cluster.ThermalWorkloadTable.prefill_power_slices>`
        uses to warm a thermal table's quantised power slices up front
        (the per-frame loop fills the slices it visits lazily, one scalar
        temperature at a time).
        """
        if isinstance(temperature_c, (int, float)):
            busy = [self.core_power_w(point, 1.0, temperature_c) for point in points]
            idle = [self.core_power_w(point, 0.0, temperature_c) for point in points]
            return busy, idle
        busy_rows: List[List[float]] = []
        idle_rows: List[List[float]] = []
        for temperature in temperature_c:
            busy_row, idle_row = self.power_table(points, float(temperature))
            busy_rows.append(busy_row)
            idle_rows.append(idle_row)
        return busy_rows, idle_rows

    def cluster_power(
        self,
        point: OperatingPoint,
        utilisations: "list[float]",
        temperature_c: float = 55.0,
    ) -> PowerBreakdown:
        """Total power of a cluster of cores sharing one V-F domain.

        ``utilisations`` holds one entry per core in the cluster.
        """
        total = ZERO_POWER
        for utilisation in utilisations:
            total = total + self.core_power(point, utilisation, temperature_c)
        return total + PowerBreakdown(
            dynamic_w=0.0, static_w=0.0, uncore_w=self.parameters.uncore_power_w
        )

    # -- energy helpers ------------------------------------------------------
    def energy_j(
        self,
        point: OperatingPoint,
        utilisation: float,
        duration_s: float,
        temperature_c: float = 55.0,
    ) -> float:
        """Energy in joules drawn by one core over ``duration_s`` seconds."""
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        return self.core_power(point, utilisation, temperature_c).total_w * duration_s

    def energy_for_cycles_j(
        self,
        point: OperatingPoint,
        cycles: float,
        temperature_c: float = 55.0,
    ) -> float:
        """Energy to retire ``cycles`` busy cycles at ``point`` (utilisation 1)."""
        duration = point.time_for_cycles(cycles)
        return self.energy_j(point, 1.0, duration, temperature_c)

    # -- internals -----------------------------------------------------------
    @staticmethod
    def _check_utilisation(utilisation: float) -> float:
        if not 0.0 <= utilisation <= 1.0 + 1e-9:
            raise ValueError(f"utilisation must lie in [0, 1], got {utilisation}")
        return min(utilisation, 1.0)
