"""Pre-configured ODROID-XU3-class platform.

The paper's testbed is the ODROID-XU3 (Samsung Exynos 5422): four
Cortex-A15 cores and four Cortex-A7 cores, each cluster with its own DVFS
domain.  The experiments use only the A15 cluster, which exposes 19
operating points from 200 MHz to 2000 MHz in 100 MHz steps.

The voltage values below follow the shape of the Exynos 5422 ASV tables
(~0.91 V at 200 MHz rising to ~1.36 V at 2 GHz for the big cluster, and
~0.91-1.26 V for the LITTLE cluster).  Exact silicon bins differ per board;
what matters for the reproduction is that the voltage rises super-linearly
with frequency so that DVFS exhibits the familiar convex energy trade-off.
"""

from __future__ import annotations

from typing import Optional

from repro.platform.chip import Chip
from repro.platform.cluster import Cluster
from repro.platform.core import Core
from repro.platform.dvfs import DVFSActuator
from repro.platform.power import PowerModel, PowerModelParameters
from repro.platform.sensors import PowerSensor
from repro.platform.thermal import ThermalModel, ThermalParameters
from repro.platform.vf_table import OperatingPoint, VFTable

#: Frequency (MHz) -> voltage (V) for the A15 (big) cluster: 19 OPPs,
#: 200-2000 MHz in 100 MHz steps, as used by the paper's action space.
_A15_OPPS_MHZ_V = (
    (200, 0.9125),
    (300, 0.9125),
    (400, 0.9125),
    (500, 0.9200),
    (600, 0.9300),
    (700, 0.9400),
    (800, 0.9550),
    (900, 0.9700),
    (1000, 0.9875),
    (1100, 1.0075),
    (1200, 1.0275),
    (1300, 1.0500),
    (1400, 1.0750),
    (1500, 1.1075),
    (1600, 1.1400),
    (1700, 1.1800),
    (1800, 1.2275),
    (1900, 1.2875),
    (2000, 1.3625),
)

#: Frequency (MHz) -> voltage (V) for the A7 (LITTLE) cluster: 13 OPPs,
#: 200-1400 MHz in 100 MHz steps.
_A7_OPPS_MHZ_V = (
    (200, 0.9125),
    (300, 0.9125),
    (400, 0.9125),
    (500, 0.9200),
    (600, 0.9375),
    (700, 0.9625),
    (800, 0.9875),
    (900, 1.0175),
    (1000, 1.0500),
    (1100, 1.0875),
    (1200, 1.1325),
    (1300, 1.1850),
    (1400, 1.2600),
)

#: The A15 cluster's operating-point table (the paper's 19-entry action space).
A15_VF_TABLE = VFTable(
    OperatingPoint(frequency_hz=mhz * 1e6, voltage_v=volts)
    for mhz, volts in _A15_OPPS_MHZ_V
)

#: The A7 cluster's operating-point table.
A7_VF_TABLE = VFTable(
    OperatingPoint(frequency_hz=mhz * 1e6, voltage_v=volts)
    for mhz, volts in _A7_OPPS_MHZ_V
)

#: Power-model constants tuned for the A15 (big, out-of-order) core.
A15_POWER_PARAMETERS = PowerModelParameters(
    effective_capacitance_f=6.0e-10,
    leakage_k1_a=0.0110,
    leakage_k2_per_v=1.90,
    leakage_k3_per_c=0.016,
    leakage_k4_a=0.005,
    idle_activity_factor=0.08,
    uncore_power_w=0.15,
)

#: Power-model constants tuned for the A7 (small, in-order) core.
A7_POWER_PARAMETERS = PowerModelParameters(
    effective_capacitance_f=1.0e-10,
    leakage_k1_a=0.0030,
    leakage_k2_per_v=1.70,
    leakage_k3_per_c=0.014,
    leakage_k4_a=0.002,
    idle_activity_factor=0.06,
    uncore_power_w=0.05,
)

#: Name of the cluster the paper's experiments run on.
A15_CLUSTER_NAME = "a15"
A7_CLUSTER_NAME = "a7"

#: Number of cores per cluster on the Exynos 5422.
A15_CORE_COUNT = 4
A7_CORE_COUNT = 4


def build_a15_cluster(
    num_cores: int = A15_CORE_COUNT,
    enable_thermal: bool = False,
    sensor_noise_w: float = 0.0,
    seed: Optional[int] = 0,
    record_history: bool = False,
    power_cache_size: int = 1024,
    power_cache_bucket_c: float = 0.0,
) -> Cluster:
    """Build the A15 (big) cluster the paper's experiments run on.

    Parameters
    ----------
    num_cores:
        Number of A15 cores (the paper uses all four).
    enable_thermal:
        Whether the RC thermal model evolves temperature.  The paper
        neglects the thermal constraint for its comparison, so this defaults
        to False (temperature fixed at its initial value).
    sensor_noise_w:
        Standard deviation of the power-sensor noise in watts.
    seed:
        Seed for the sensor-noise generator.
    record_history:
        Opt into per-frame sensor/meter history recording (off by default:
        the history grows unbounded over a campaign).
    power_cache_size:
        Size of the cluster's per-operating-point core-power LRU cache;
        ``0`` disables caching (the benchmarks use this to measure the win).
    power_cache_bucket_c:
        Temperature quantisation of the cache key in degrees Celsius;
        ``0.0`` keeps exact keys (which bypass the cache when the thermal
        model is enabled).  Set a positive bucket to make thermally-enabled
        sweeps cache-friendly at the cost of approximated leakage.
    """
    cores = [Core(core_id=i, name=f"A15-{i}") for i in range(num_cores)]
    thermal = ThermalModel(
        parameters=ThermalParameters(
            ambient_c=30.0,
            resistance_c_per_w=7.0,
            capacitance_j_per_c=4.0,
            initial_c=50.0,
            throttle_c=95.0,
        ),
        enabled=enable_thermal,
    )
    return Cluster(
        name=A15_CLUSTER_NAME,
        cores=cores,
        vf_table=A15_VF_TABLE,
        power_model=PowerModel(parameters=A15_POWER_PARAMETERS),
        thermal_model=thermal,
        power_sensor=PowerSensor(
            sample_period_s=0.01,
            resolution_w=0.005,
            noise_stddev_w=sensor_noise_w,
            seed=seed,
            record_history=record_history,
        ),
        dvfs=DVFSActuator(table=A15_VF_TABLE),
        record_history=record_history,
        power_cache_size=power_cache_size,
        power_cache_bucket_c=power_cache_bucket_c,
    )


def build_a7_cluster(
    num_cores: int = A7_CORE_COUNT,
    enable_thermal: bool = False,
    sensor_noise_w: float = 0.0,
    seed: Optional[int] = 1,
    record_history: bool = False,
    power_cache_size: int = 1024,
    power_cache_bucket_c: float = 0.0,
) -> Cluster:
    """Build the A7 (LITTLE) cluster of the Exynos 5422."""
    cores = [Core(core_id=i, name=f"A7-{i}") for i in range(num_cores)]
    thermal = ThermalModel(
        parameters=ThermalParameters(
            ambient_c=30.0,
            resistance_c_per_w=11.0,
            capacitance_j_per_c=2.0,
            initial_c=45.0,
            throttle_c=95.0,
        ),
        enabled=enable_thermal,
    )
    return Cluster(
        name=A7_CLUSTER_NAME,
        cores=cores,
        vf_table=A7_VF_TABLE,
        power_model=PowerModel(parameters=A7_POWER_PARAMETERS),
        thermal_model=thermal,
        power_sensor=PowerSensor(
            sample_period_s=0.01,
            resolution_w=0.005,
            noise_stddev_w=sensor_noise_w,
            seed=seed,
            record_history=record_history,
        ),
        dvfs=DVFSActuator(table=A7_VF_TABLE),
        record_history=record_history,
        power_cache_size=power_cache_size,
        power_cache_bucket_c=power_cache_bucket_c,
    )


def build_odroid_xu3(
    enable_thermal: bool = False,
    sensor_noise_w: float = 0.0,
    seed: Optional[int] = 0,
) -> Chip:
    """Build the complete Exynos 5422 chip (A15 + A7 clusters).

    The paper's experiments use only the A15 cluster
    (``chip.cluster("a15")``); the A7 cluster is included for completeness
    and for heterogeneous extension scenarios.
    """
    return Chip(
        name="odroid-xu3",
        clusters=[
            build_a15_cluster(
                enable_thermal=enable_thermal, sensor_noise_w=sensor_noise_w, seed=seed
            ),
            build_a7_cluster(
                enable_thermal=enable_thermal,
                sensor_noise_w=sensor_noise_w,
                seed=None if seed is None else seed + 1,
            ),
        ],
    )
