"""Hardware-platform substrate.

This subpackage models the hardware the paper's run-time manager controls:
an ODROID-XU3-class big.LITTLE SoC with a cluster-level DVFS domain, a CMOS
power model, per-core performance-monitoring units, on-board power sensors
and a first-order thermal model.

The governor (see :mod:`repro.rtm` and :mod:`repro.governors`) interacts
with the platform only through the interfaces the real board exposes:

* reading cycle counts from the PMU,
* reading power/energy from the sensors,
* requesting a V-F operating point for a cluster.

Everything else (how many joules a frame costs at a given operating point)
is produced by the analytic models in :mod:`repro.platform.power` and
:mod:`repro.platform.thermal`.
"""

from repro.platform.vf_table import OperatingPoint, VFTable
from repro.platform.power import PowerModel, PowerModelParameters, PowerBreakdown
from repro.platform.pmu import PerformanceMonitoringUnit, PMUSample
from repro.platform.core import Core, CoreExecutionResult
from repro.platform.cluster import Cluster
from repro.platform.chip import Chip
from repro.platform.dvfs import DVFSActuator, DVFSTransition
from repro.platform.sensors import PowerSensor, EnergyMeter, SensorReading
from repro.platform.thermal import ThermalModel, ThermalParameters
from repro.platform.odroid_xu3 import (
    build_odroid_xu3,
    build_a15_cluster,
    build_a7_cluster,
    A15_VF_TABLE,
    A7_VF_TABLE,
)

__all__ = [
    "OperatingPoint",
    "VFTable",
    "PowerModel",
    "PowerModelParameters",
    "PowerBreakdown",
    "PerformanceMonitoringUnit",
    "PMUSample",
    "Core",
    "CoreExecutionResult",
    "Cluster",
    "Chip",
    "DVFSActuator",
    "DVFSTransition",
    "PowerSensor",
    "EnergyMeter",
    "SensorReading",
    "ThermalModel",
    "ThermalParameters",
    "build_odroid_xu3",
    "build_a15_cluster",
    "build_a7_cluster",
    "A15_VF_TABLE",
    "A7_VF_TABLE",
]
