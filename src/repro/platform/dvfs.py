"""DVFS actuator with transition-cost modelling.

Changing the operating point of a real cluster is not free: the PLL must
re-lock and the voltage regulator must slew, which costs both time and a
small amount of energy.  The paper accounts for this in its overhead term
``T_OVH`` (eq. 5) and in the "learning overhead" evaluation (Table III), so
the actuator records every transition along with its cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro._compat import SLOTS
from repro.errors import ConfigurationError, InvalidOperatingPointError
from repro.platform.vf_table import OperatingPoint, VFTable


@dataclass(frozen=True, **SLOTS)
class DVFSTransition:
    """A single recorded operating-point change."""

    timestamp_s: float
    from_index: int
    to_index: int
    latency_s: float
    energy_j: float

    @property
    def is_upscale(self) -> bool:
        """True if the transition increased frequency."""
        return self.to_index > self.from_index


@dataclass
class DVFSActuator:
    """Applies operating-point requests to a cluster's V-F domain.

    Parameters
    ----------
    table:
        The cluster's operating-point table.
    transition_latency_s:
        Time for which execution stalls while the PLL/regulator settle.
        The XU3's cpufreq driver reports ~100 microseconds; we default to
        that.
    transition_energy_j:
        Fixed energy cost per transition (regulator switching losses).
    initial_index:
        Operating-point index selected at construction time.
    """

    table: VFTable
    transition_latency_s: float = 100e-6
    transition_energy_j: float = 1.0e-4
    initial_index: Optional[int] = None
    _current_index: int = field(init=False)
    _transitions: List[DVFSTransition] = field(init=False, default_factory=list)
    #: Deferred transition columns (timestamps, from, to) absorbed in bulk;
    #: materialised into records on first read, like columnar frame records.
    _pending_columns: Optional[Tuple[List[float], List[int], List[int]]] = field(
        init=False, default=None
    )

    def __post_init__(self) -> None:
        if self.transition_latency_s < 0 or self.transition_energy_j < 0:
            raise ConfigurationError("DVFS transition costs must be non-negative")
        if self.initial_index is None:
            self._current_index = len(self.table) - 1
        else:
            if not 0 <= self.initial_index < len(self.table):
                raise InvalidOperatingPointError(
                    f"initial index {self.initial_index} out of range"
                )
            self._current_index = self.initial_index

    # -- state ----------------------------------------------------------------
    @property
    def current_index(self) -> int:
        """Index of the currently applied operating point."""
        return self._current_index

    @property
    def current_point(self) -> OperatingPoint:
        """The currently applied operating point."""
        return self.table[self._current_index]

    def _drain_pending(self) -> None:
        """Materialise deferred transition columns into record objects."""
        pending = self._pending_columns
        if pending is None:
            return
        self._pending_columns = None
        timestamps, from_indices, to_indices = pending
        latency = self.transition_latency_s
        energy = self.transition_energy_j
        make = DVFSTransition
        self._transitions.extend(
            make(timestamp, source, target, latency, energy)
            for timestamp, source, target in zip(timestamps, from_indices, to_indices)
        )

    @property
    def transitions(self) -> List[DVFSTransition]:
        """All transitions applied so far, in order."""
        self._drain_pending()
        return list(self._transitions)

    @property
    def transition_count(self) -> int:
        """Number of actual operating-point changes (same-point requests excluded)."""
        pending = self._pending_columns
        deferred = len(pending[0]) if pending is not None else 0
        return len(self._transitions) + deferred

    @property
    def total_transition_time_s(self) -> float:
        """Cumulative stall time spent in transitions."""
        self._drain_pending()
        return sum(t.latency_s for t in self._transitions)

    @property
    def total_transition_energy_j(self) -> float:
        """Cumulative energy spent in transitions."""
        self._drain_pending()
        return sum(t.energy_j for t in self._transitions)

    # -- actions ----------------------------------------------------------------
    def request(self, index: int, timestamp_s: float = 0.0) -> DVFSTransition:
        """Request operating point ``index``; returns the transition record.

        Requesting the already-active index is a no-op with zero cost (and is
        not recorded as a transition), matching cpufreq behaviour.
        """
        if not 0 <= index < len(self.table):
            raise InvalidOperatingPointError(
                f"operating-point index {index} out of range (0..{len(self.table) - 1})"
            )
        self._drain_pending()
        if index == self._current_index:
            return DVFSTransition(
                timestamp_s=timestamp_s,
                from_index=index,
                to_index=index,
                latency_s=0.0,
                energy_j=0.0,
            )
        transition = DVFSTransition(
            timestamp_s=timestamp_s,
            from_index=self._current_index,
            to_index=index,
            latency_s=self.transition_latency_s,
            energy_j=self.transition_energy_j,
        )
        self._transitions.append(transition)
        self._current_index = index
        return transition

    def request_frequency(self, frequency_hz: float, timestamp_s: float = 0.0) -> DVFSTransition:
        """Request the slowest operating point at least as fast as ``frequency_hz``."""
        index = self.table.nearest_index_for_frequency(frequency_hz)
        return self.request(index, timestamp_s)

    def absorb_transitions(
        self, transitions: List[DVFSTransition], final_index: int
    ) -> None:
        """Append externally computed transition records and set the final point.

        Used by the vectorised fast path, which derives the per-frame
        transitions of a pre-computed schedule in array form rather than
        through per-frame :meth:`request` calls, then hands the records over
        so ``transition_count`` / ``total_transition_*`` report the same
        values a scalar run would.
        """
        if not 0 <= final_index < len(self.table):
            raise InvalidOperatingPointError(f"index {final_index} out of range")
        self._drain_pending()
        self._transitions.extend(transitions)
        self._current_index = final_index

    def absorb_transition_columns(
        self,
        timestamps: List[float],
        from_indices: List[int],
        to_indices: List[int],
        final_index: int,
    ) -> None:
        """Append transitions in columnar form, deferring record creation.

        The batched engine derives every member's transition log as plain
        columns; building a :class:`DVFSTransition` per entry eagerly would
        dominate its finalisation cost, so the columns are adopted as-is and
        materialised lazily — exactly when :attr:`transitions` or a total is
        first read.  Each entry materialises with this actuator's
        ``transition_latency_s`` / ``transition_energy_j``, matching what
        per-frame :meth:`request` calls would have recorded.
        """
        if not 0 <= final_index < len(self.table):
            raise InvalidOperatingPointError(f"index {final_index} out of range")
        pending = self._pending_columns
        if pending is None:
            self._pending_columns = (timestamps, from_indices, to_indices)
        else:
            pending[0].extend(timestamps)
            pending[1].extend(from_indices)
            pending[2].extend(to_indices)
        self._current_index = final_index

    def reset(self, index: Optional[int] = None) -> None:
        """Clear transition history and optionally jump to ``index`` at no cost."""
        self._transitions.clear()
        self._pending_columns = None
        if index is not None:
            if not 0 <= index < len(self.table):
                raise InvalidOperatingPointError(f"index {index} out of range")
            self._current_index = index
