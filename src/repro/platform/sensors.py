"""Power-sensor and energy-meter models.

The ODROID-XU3 carries INA231 current/power monitors on the A15, A7, GPU and
DRAM rails; the paper reads the A15 rail each frame and multiplies average
power by execution time to obtain per-frame energy.  This module reproduces
that measurement path: a sampled, quantised, optionally noisy power sensor
and an integrating energy meter built on top of it.

Both components can keep a per-conversion history for debugging and
plotting.  Recording is gated behind an opt-in ``record_history`` flag
(default off): a campaign sweeps thousands of scenarios with thousands of
frames each, and an always-on history grows by one record per frame for the
lifetime of the run — unbounded memory for data almost no caller reads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

try:  # NumPy accelerates whole-trace measurement; optional.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None  # type: ignore[assignment]

from repro._compat import SLOTS
from repro.errors import ConfigurationError


@dataclass(frozen=True, **SLOTS)
class SensorReading:
    """One sample from a power sensor."""

    timestamp_s: float
    power_w: float


@dataclass
class PowerSensor:
    """INA231-like sampled power sensor.

    Parameters
    ----------
    sample_period_s:
        Conversion period of the sensor; readings requested more often than
        this return the previous conversion (the INA231 default conversion
        time is ~1 ms with averaging bringing the effective period to ~10 ms).
    resolution_w:
        Quantisation step of the reported power.
    noise_stddev_w:
        Standard deviation of additive Gaussian measurement noise.
    seed:
        Seed for the noise generator, so simulations stay reproducible.
    record_history:
        When True every fresh conversion is appended to :attr:`history`.
        Off by default — the history grows without bound (one entry per
        simulated frame), which campaign runs cannot afford.
    """

    sample_period_s: float = 0.01
    resolution_w: float = 0.005
    noise_stddev_w: float = 0.0
    seed: Optional[int] = 0
    record_history: bool = False
    _rng: random.Random = field(init=False, repr=False)
    _last_time_s: Optional[float] = field(init=False, default=None)
    _last_power_w: float = field(init=False, default=0.0)
    _history: List[SensorReading] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if self.sample_period_s <= 0:
            raise ConfigurationError("sample_period_s must be positive")
        if self.resolution_w < 0 or self.noise_stddev_w < 0:
            raise ConfigurationError("resolution and noise must be non-negative")
        self._rng = random.Random(self.seed)

    def measure_w(self, true_power_w: float, timestamp_s: float) -> float:
        """Measure ``true_power_w`` at ``timestamp_s`` and return the power alone.

        Identical semantics to :meth:`measure` — conversion-period holdover,
        noise, quantisation, state updates — without allocating a
        :class:`SensorReading` (unless history recording is on).  This is
        the entry point the simulators' per-frame loops use.
        """
        if true_power_w < 0:
            raise ValueError(f"power must be non-negative, got {true_power_w}")
        last_time = self._last_time_s
        if last_time is not None and timestamp_s - last_time < self.sample_period_s:
            return self._last_power_w
        measured = true_power_w
        if self.noise_stddev_w > 0:
            measured += self._rng.gauss(0.0, self.noise_stddev_w)
        if self.resolution_w > 0:
            measured = round(measured / self.resolution_w) * self.resolution_w
        measured = max(0.0, measured)
        self._last_time_s = timestamp_s
        self._last_power_w = measured
        if self.record_history:
            self._history.append(SensorReading(timestamp_s=timestamp_s, power_w=measured))
        return measured

    def measure(self, true_power_w: float, timestamp_s: float) -> SensorReading:
        """Measure ``true_power_w`` at ``timestamp_s``.

        If less than one sample period has elapsed since the previous
        conversion the previous reading is returned unchanged, modelling the
        sensor's conversion latency.
        """
        self.measure_w(true_power_w, timestamp_s)
        return SensorReading(timestamp_s=self._last_time_s, power_w=self._last_power_w)

    def measure_trace(
        self, true_powers_w: Sequence[float], timestamps_s: Sequence[float]
    ) -> List[float]:
        """Measure a whole trace of (power, timestamp) pairs, in order.

        Semantically identical to calling :meth:`measure` once per pair;
        the vectorised fast path uses it to step the sensor through a
        pre-computed trace.  When no noise is configured, no previous
        conversion is pending and every timestamp gap is at least one
        sample period (so holdover can never trigger), the whole trace is
        quantised in one NumPy pass — both NumPy and Python ``round`` use
        round-half-even, so the readings are bit-identical to the scalar
        loop.
        """
        if len(true_powers_w) != len(timestamps_s):
            raise ValueError("true_powers_w and timestamps_s must have equal length")
        if len(true_powers_w) == 0:  # len(), not truthiness: arrays are valid input
            return []
        if _np is not None and self.noise_stddev_w == 0 and self._last_time_s is None:
            powers = _np.asarray(true_powers_w, dtype=float)
            times = _np.asarray(timestamps_s, dtype=float)
            no_holdover = (
                times.size < 2 or float(_np.diff(times).min()) >= self.sample_period_s
            )
            if no_holdover and float(powers.min()) >= 0:
                measured = powers
                if self.resolution_w > 0:
                    measured = _np.round(measured / self.resolution_w) * self.resolution_w
                measured = _np.maximum(measured, 0.0)
                out = measured.tolist()
                self._last_time_s = float(times[-1])
                self._last_power_w = out[-1]
                if self.record_history:
                    self._history.extend(
                        SensorReading(timestamp_s=t, power_w=p)
                        for t, p in zip(times.tolist(), out)
                    )
                return out
        return [
            self.measure_w(power, timestamp)
            for power, timestamp in zip(true_powers_w, timestamps_s)
        ]

    @property
    def history(self) -> Tuple[SensorReading, ...]:
        """Recorded conversions (empty unless ``record_history`` is on)."""
        return tuple(self._history)

    @property
    def history_len(self) -> int:
        """Number of recorded conversions, without materialising a copy."""
        return len(self._history)

    @property
    def last_reading(self) -> Optional[SensorReading]:
        """The most recent conversion, or ``None`` before the first one."""
        if self._last_time_s is None:
            return None
        return SensorReading(timestamp_s=self._last_time_s, power_w=self._last_power_w)

    def reset(self) -> None:
        """Forget all previous conversions."""
        self._last_time_s = None
        self._last_power_w = 0.0
        self._history.clear()


class EnergyMeter:
    """Integrates power over time to produce energy totals.

    The meter accepts exact (model-truth) power/duration pairs; it is used
    both for the ground-truth energy accounting of the simulator and, via a
    :class:`PowerSensor`, for the governor-visible measured energy.

    Parameters
    ----------
    record_history:
        When True each ``add_interval`` call is recorded in
        :attr:`intervals`.  Off by default for the same unbounded-growth
        reason as :class:`PowerSensor`.
    """

    def __init__(self, record_history: bool = False) -> None:
        self.record_history = record_history
        self._energy_j = 0.0
        self._elapsed_s = 0.0
        self._intervals: List[SensorReading] = []

    def add_interval(self, power_w: float, duration_s: float) -> None:
        """Accumulate ``power_w`` drawn for ``duration_s`` seconds."""
        if power_w < 0 or duration_s < 0:
            raise ValueError("power and duration must be non-negative")
        self._energy_j += power_w * duration_s
        if self.record_history:
            self._intervals.append(
                SensorReading(timestamp_s=self._elapsed_s, power_w=power_w)
            )
        self._elapsed_s += duration_s

    def add_energy(self, energy_j: float) -> None:
        """Accumulate a lump of energy (e.g. a DVFS transition cost)."""
        if energy_j < 0:
            raise ValueError("energy must be non-negative")
        self._energy_j += energy_j

    @property
    def energy_j(self) -> float:
        """Total accumulated energy in joules."""
        return self._energy_j

    @property
    def elapsed_s(self) -> float:
        """Total accumulated interval time in seconds."""
        return self._elapsed_s

    @property
    def average_power_w(self) -> float:
        """Mean power over all accumulated intervals (0 if no time elapsed)."""
        if self._elapsed_s <= 0:
            return 0.0
        return self._energy_j / self._elapsed_s

    @property
    def intervals(self) -> Tuple[SensorReading, ...]:
        """Recorded intervals (empty unless ``record_history`` is on)."""
        return tuple(self._intervals)

    def reset(self) -> None:
        """Zero the meter."""
        self._energy_j = 0.0
        self._elapsed_s = 0.0
        self._intervals.clear()
