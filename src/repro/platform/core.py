"""Single-CPU-core execution model.

A core executes *cycle demands*: a frame's share of work expressed as the
number of CPU cycles it requires (which is exactly the quantity the paper's
RTM observes through the PMU).  At a given operating point the execution
time follows directly, and busy/idle accounting feeds the PMU and the power
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._compat import SLOTS
from repro.errors import PlatformError
from repro.platform.pmu import PerformanceMonitoringUnit
from repro.platform.vf_table import OperatingPoint


@dataclass(frozen=True, **SLOTS)
class CoreExecutionResult:
    """Outcome of running one piece of work on one core.

    Attributes
    ----------
    busy_time_s:
        Time the core spent executing the cycle demand.
    idle_time_s:
        Time the core then spent idle waiting for the rest of the cluster.
    cycles:
        Busy cycles executed.
    idle_cycles:
        Cycles elapsed while idle (at the cluster frequency).
    utilisation:
        ``busy_time / (busy_time + idle_time)``; 0 when no time elapsed.
    """

    busy_time_s: float
    idle_time_s: float
    cycles: float
    idle_cycles: float

    @property
    def total_time_s(self) -> float:
        """Busy plus idle time."""
        return self.busy_time_s + self.idle_time_s

    @property
    def utilisation(self) -> float:
        """Fraction of the interval spent busy."""
        total = self.total_time_s
        if total <= 0:
            return 0.0
        return self.busy_time_s / total


@dataclass
class Core:
    """A single CPU core belonging to a shared V-F cluster.

    Parameters
    ----------
    core_id:
        Identifier of the core within its cluster (0-based).
    name:
        Human-readable name, e.g. ``"A15-2"``.
    """

    core_id: int
    name: str = ""
    pmu: PerformanceMonitoringUnit = field(default_factory=PerformanceMonitoringUnit)

    def __post_init__(self) -> None:
        if self.core_id < 0:
            raise PlatformError(f"core_id must be non-negative, got {self.core_id}")
        if not self.name:
            self.name = f"core-{self.core_id}"

    def execute(
        self,
        cycles: float,
        point: OperatingPoint,
        interval_s: float = 0.0,
    ) -> CoreExecutionResult:
        """Execute ``cycles`` at ``point``, then idle until ``interval_s`` has elapsed.

        ``interval_s`` is the total interval the core must account for (for a
        cluster this is the time until the slowest core finishes, or the
        frame period).  If the busy time already exceeds ``interval_s`` the
        idle time is zero.
        """
        if cycles < 0:
            raise PlatformError(f"cycle demand must be non-negative, got {cycles}")
        busy_time = point.time_for_cycles(cycles)
        idle_time = max(0.0, interval_s - busy_time)
        idle_cycles = idle_time * point.frequency_hz
        self.pmu.account_busy(cycles, busy_time)
        if idle_time > 0:
            self.pmu.account_idle(idle_cycles, idle_time)
        return CoreExecutionResult(
            busy_time_s=busy_time,
            idle_time_s=idle_time,
            cycles=cycles,
            idle_cycles=idle_cycles,
        )

    def __repr__(self) -> str:
        return f"Core(id={self.core_id}, name={self.name!r})"
