"""Voltage-frequency operating-point tables.

The ODROID-XU3's A15 cluster exposes 19 operating performance points (OPPs)
from 200 MHz to 2000 MHz in 100 MHz steps, each with an associated supply
voltage.  The paper's RL action space is exactly this table, so the table is
a first-class object here: governors select *indices* into a
:class:`VFTable` and the platform maps them to frequency/voltage pairs.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro._compat import SLOTS
from repro.errors import ConfigurationError, InvalidOperatingPointError


@dataclass(frozen=True, **SLOTS)
class OperatingPoint:
    """A single DVFS operating performance point.

    Attributes
    ----------
    frequency_hz:
        Clock frequency of the cluster in hertz.
    voltage_v:
        Supply voltage in volts at this frequency.
    seconds_per_cycle:
        Precomputed ``1 / frequency_hz``.  Cycle-to-time conversion happens
        once per core per frame in the simulator's inner loop, so the
        reciprocal is hoisted here and :meth:`time_for_cycles` reduces to a
        single multiply; the vectorised fast path uses the same constant so
        both engines perform the identical IEEE operation.
    """

    frequency_hz: float
    voltage_v: float
    seconds_per_cycle: float = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError(
                f"operating point frequency must be positive, got {self.frequency_hz}"
            )
        if self.voltage_v <= 0:
            raise ConfigurationError(
                f"operating point voltage must be positive, got {self.voltage_v}"
            )
        object.__setattr__(self, "seconds_per_cycle", 1.0 / self.frequency_hz)

    @property
    def frequency_mhz(self) -> float:
        """Frequency in megahertz (convenience for reporting)."""
        return self.frequency_hz / 1e6

    def cycles_per_second(self) -> float:
        """Number of CPU cycles executed per second at this operating point."""
        return self.frequency_hz

    def time_for_cycles(self, cycles: float) -> float:
        """Time in seconds to execute ``cycles`` CPU cycles at this frequency."""
        if cycles < 0:
            raise ValueError(f"cycle count must be non-negative, got {cycles}")
        return cycles * self.seconds_per_cycle


class VFTable:
    """An ordered collection of :class:`OperatingPoint` objects.

    Points are stored sorted by ascending frequency.  Governors address
    points by index (0 = slowest, ``len(table) - 1`` = fastest), mirroring
    how cpufreq exposes the frequency table to userspace.
    """

    def __init__(self, points: Iterable[OperatingPoint]):
        pts = sorted(points, key=lambda p: p.frequency_hz)
        if not pts:
            raise ConfigurationError("a VFTable requires at least one operating point")
        frequencies = [p.frequency_hz for p in pts]
        if len(set(frequencies)) != len(frequencies):
            raise ConfigurationError("VFTable operating points must have distinct frequencies")
        for lower, upper in zip(pts, pts[1:]):
            if upper.voltage_v < lower.voltage_v:
                raise ConfigurationError(
                    "VFTable voltages must be non-decreasing with frequency "
                    f"({lower} -> {upper})"
                )
        self._points: Tuple[OperatingPoint, ...] = tuple(pts)
        self._frequencies: List[float] = frequencies

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[OperatingPoint]:
        return iter(self._points)

    def __getitem__(self, index: int) -> OperatingPoint:
        try:
            return self._points[index]
        except IndexError as exc:
            raise InvalidOperatingPointError(
                f"operating-point index {index} out of range (table has {len(self)})"
            ) from exc

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VFTable):
            return NotImplemented
        return self._points == other._points

    def __repr__(self) -> str:
        lo = self._points[0].frequency_mhz
        hi = self._points[-1].frequency_mhz
        return f"VFTable({len(self)} points, {lo:.0f}-{hi:.0f} MHz)"

    # -- lookups ------------------------------------------------------------
    @property
    def points(self) -> Tuple[OperatingPoint, ...]:
        """All operating points, sorted by ascending frequency."""
        return self._points

    @property
    def frequencies_hz(self) -> List[float]:
        """All frequencies in the table, ascending, in hertz."""
        return list(self._frequencies)

    @property
    def min_point(self) -> OperatingPoint:
        """Slowest operating point."""
        return self._points[0]

    @property
    def max_point(self) -> OperatingPoint:
        """Fastest operating point."""
        return self._points[-1]

    def index_of_frequency(self, frequency_hz: float, tolerance_hz: float = 1e3) -> int:
        """Return the index of the point whose frequency matches ``frequency_hz``.

        Raises
        ------
        InvalidOperatingPointError
            If no point matches within ``tolerance_hz``.
        """
        for index, point in enumerate(self._points):
            if abs(point.frequency_hz - frequency_hz) <= tolerance_hz:
                return index
        raise InvalidOperatingPointError(
            f"frequency {frequency_hz / 1e6:.1f} MHz is not in the table"
        )

    def clamp_index(self, index: int) -> int:
        """Clamp ``index`` into the valid range of the table."""
        return max(0, min(len(self) - 1, index))

    def lowest_index_meeting(self, cycles: float, deadline_s: float) -> int:
        """Lowest-frequency index that can retire ``cycles`` within ``deadline_s``.

        This is the per-frame "oracle" decision: the slowest (hence most
        energy-frugal, given the convex power/frequency curve) operating
        point that still meets the deadline.  If even the fastest point
        cannot meet the deadline the fastest index is returned.
        """
        if deadline_s <= 0:
            raise ValueError(f"deadline must be positive, got {deadline_s}")
        required_hz = cycles / deadline_s
        # First point with frequency >= required, by binary search (the
        # table is sorted ascending); this runs once per frame per
        # operating-point evaluation in the Oracle's schedule computation.
        return min(bisect_left(self._frequencies, required_hz), len(self._points) - 1)

    def lowest_indices_meeting(
        self, cycles: Sequence[float], deadlines_s: Sequence[float]
    ) -> List[int]:
        """Vectorised :meth:`lowest_index_meeting` over parallel sequences.

        Requires NumPy (raises ImportError without it); ``searchsorted`` with
        ``side='left'`` performs the identical binary search per element, so
        the returned indices are bit-identical to per-frame scalar calls.
        """
        import numpy as np

        cycle_array = np.asarray(cycles, dtype=float)
        deadline_array = np.asarray(deadlines_s, dtype=float)
        if deadline_array.size and float(deadline_array.min()) <= 0:
            raise ValueError("deadlines must be positive")
        required_hz = cycle_array / deadline_array
        indices = np.searchsorted(self._frequencies, required_hz, side="left")
        return np.minimum(indices, len(self._points) - 1).tolist()

    def nearest_index_for_frequency(self, frequency_hz: float) -> int:
        """Index of the slowest point at least as fast as ``frequency_hz``.

        If ``frequency_hz`` exceeds the fastest point, the fastest index is
        returned; this mirrors cpufreq's ``CPUFREQ_RELATION_L`` rounding used
        by the ondemand governor.
        """
        return min(
            bisect_left(self._frequencies, frequency_hz - 1e-6),
            len(self._points) - 1,
        )

    def subset(self, indices: Sequence[int]) -> "VFTable":
        """Return a new table containing only the points at ``indices``."""
        return VFTable(self[i] for i in indices)


def make_linear_vf_table(
    f_min_hz: float,
    f_max_hz: float,
    steps: int,
    v_min: float,
    v_max: float,
    exponent: float = 1.0,
) -> VFTable:
    """Build a synthetic V-F table with evenly spaced frequencies.

    Voltage is interpolated between ``v_min`` and ``v_max``; an ``exponent``
    greater than 1 makes voltage rise super-linearly with frequency, which is
    the typical silicon behaviour and what gives DVFS its cubic power win.
    """
    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1, got {steps}")
    if f_max_hz < f_min_hz:
        raise ConfigurationError("f_max_hz must be >= f_min_hz")
    if steps == 1:
        return VFTable([OperatingPoint(f_min_hz, v_min)])
    points = []
    for i in range(steps):
        fraction = i / (steps - 1)
        frequency = f_min_hz + fraction * (f_max_hz - f_min_hz)
        voltage = v_min + (fraction ** exponent) * (v_max - v_min)
        points.append(OperatingPoint(frequency, voltage))
    return VFTable(points)
