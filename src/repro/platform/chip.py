"""Chip model: a package containing one or more DVFS clusters.

The ODROID-XU3's Exynos 5422 is a big.LITTLE part with an A15 cluster and an
A7 cluster.  The paper uses only the A15 cluster, but the chip abstraction
keeps the door open for the heterogeneous experiments the platform supports
and gives a single place to aggregate whole-package energy.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.errors import PlatformError
from repro.platform.cluster import Cluster


class Chip:
    """A package of named clusters."""

    def __init__(self, name: str, clusters: Iterable[Cluster]):
        cluster_list = list(clusters)
        if not cluster_list:
            raise PlatformError("a chip requires at least one cluster")
        names = [c.name for c in cluster_list]
        if len(set(names)) != len(names):
            raise PlatformError(f"cluster names must be unique, got {names}")
        self.name = name
        self._clusters: Dict[str, Cluster] = {c.name: c for c in cluster_list}

    @property
    def clusters(self) -> List[Cluster]:
        """All clusters on the chip."""
        return list(self._clusters.values())

    @property
    def cluster_names(self) -> List[str]:
        """Names of all clusters on the chip."""
        return list(self._clusters.keys())

    def cluster(self, name: str) -> Cluster:
        """Return the cluster called ``name``.

        Raises
        ------
        PlatformError
            If no cluster with that name exists.
        """
        try:
            return self._clusters[name]
        except KeyError as exc:
            raise PlatformError(
                f"chip {self.name!r} has no cluster {name!r}; available: {self.cluster_names}"
            ) from exc

    @property
    def num_cores(self) -> int:
        """Total number of cores across all clusters."""
        return sum(c.num_cores for c in self._clusters.values())

    @property
    def total_energy_j(self) -> float:
        """Total energy consumed by all clusters so far."""
        return sum(c.total_energy_j for c in self._clusters.values())

    def reset(self) -> None:
        """Reset every cluster on the chip."""
        for cluster in self._clusters.values():
            cluster.reset()

    def __repr__(self) -> str:
        return f"Chip(name={self.name!r}, clusters={self.cluster_names})"
