"""Energy accounting helpers shared by the simulator and the experiments.

These helpers compute the normalisations used throughout the paper's
evaluation: energy normalised to the Oracle governor and performance
normalised to the reference execution time (``Tref``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class EnergyAccount:
    """Per-run energy/performance summary used for normalisation.

    Attributes
    ----------
    total_energy_j:
        Total energy consumed over the run.
    total_time_s:
        Total wall-clock time of the run.
    frame_times_s:
        Execution time of each frame.
    reference_time_s:
        The per-frame performance requirement (``Tref``).
    """

    total_energy_j: float
    total_time_s: float
    frame_times_s: Sequence[float]
    reference_time_s: float

    @property
    def average_power_w(self) -> float:
        """Mean power over the run (0 for an empty run)."""
        if self.total_time_s <= 0:
            return 0.0
        return self.total_energy_j / self.total_time_s

    @property
    def average_frame_time_s(self) -> float:
        """Mean per-frame execution time (0 for an empty run)."""
        if not self.frame_times_s:
            return 0.0
        return sum(self.frame_times_s) / len(self.frame_times_s)

    @property
    def normalized_performance(self) -> float:
        """Average frame time divided by the reference time.

        Matches the paper's Table I definition: values above 1 mean the
        application under-performed (frames took longer than allowed), values
        below 1 mean it over-performed.
        """
        if self.reference_time_s <= 0:
            return 0.0
        return self.average_frame_time_s / self.reference_time_s

    def normalized_energy(self, oracle_energy_j: float) -> float:
        """Energy divided by the Oracle's energy for the same workload."""
        if oracle_energy_j <= 0:
            raise ValueError("oracle energy must be positive for normalisation")
        return self.total_energy_j / oracle_energy_j

    def deadline_miss_ratio(self, tolerance: float = 0.0) -> float:
        """Fraction of frames whose time exceeded ``Tref * (1 + tolerance)``."""
        if not self.frame_times_s:
            return 0.0
        limit = self.reference_time_s * (1.0 + tolerance)
        misses = sum(1 for t in self.frame_times_s if t > limit)
        return misses / len(self.frame_times_s)


def energy_saving_percent(candidate_energy_j: float, baseline_energy_j: float) -> float:
    """Percentage energy saving of ``candidate`` relative to ``baseline``.

    Positive values mean the candidate used less energy.  This is the
    quantity behind the paper's headline "up to 16% energy savings".
    """
    if baseline_energy_j <= 0:
        raise ValueError("baseline energy must be positive")
    return 100.0 * (baseline_energy_j - candidate_energy_j) / baseline_energy_j
